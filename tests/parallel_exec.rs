//! Parallel execution semantics: sequential (1 thread) and fan-out (4
//! threads) execution must return identical results and identical profiles
//! modulo timing; TinkerPop corner cases (self-loops under `both()`,
//! duplicate frontier vertices) are pinned under both modes; and the
//! bucketed IN-list templates keep the prepared cache O(log frontier).

use std::sync::Arc;

use db2graph::core::{Db2Graph, ETableConfig, GraphOptions, OverlayConfig, VTableConfig};
use db2graph::gremlin::GValue;
use db2graph::reldb::Database;

/// A social graph with a self-loop: Ann knows herself.
fn social_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Person (pid BIGINT PRIMARY KEY, name VARCHAR, age BIGINT);
         CREATE TABLE Company (cid BIGINT PRIMARY KEY, cname VARCHAR);
         CREATE TABLE WorksAt (pid BIGINT, cid BIGINT, since BIGINT,
            FOREIGN KEY (pid) REFERENCES Person(pid),
            FOREIGN KEY (cid) REFERENCES Company(cid));
         CREATE TABLE Knows (a BIGINT, b BIGINT, metIn VARCHAR,
            FOREIGN KEY (a) REFERENCES Person(pid),
            FOREIGN KEY (b) REFERENCES Person(pid));
         CREATE INDEX ix_knows_a ON Knows (a);
         CREATE INDEX ix_knows_b ON Knows (b);
         INSERT INTO Person VALUES (1, 'Ann', 34), (2, 'Bo', 28), (3, 'Cy', 45), (4, 'Di', 31);
         INSERT INTO Company VALUES (1, 'Initech'), (2, 'Globex');
         INSERT INTO WorksAt VALUES (1, 1, 2015), (2, 1, 2020), (3, 2, 2010);
         INSERT INTO Knows VALUES (1, 1, 'XX'), (1, 2, 'US'), (2, 3, 'DE'), (1, 3, 'US'), (3, 4, 'FR');",
    )
    .unwrap();
    db
}

fn social_overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![
            VTableConfig {
                table_name: "Person".into(),
                prefixed_id: true,
                id: "'person'::pid".into(),
                fix_label: true,
                label: "'person'".into(),
                properties: Some(vec!["name".into(), "age".into()]),
            },
            VTableConfig {
                table_name: "Company".into(),
                prefixed_id: true,
                id: "'company'::cid".into(),
                fix_label: true,
                label: "'company'".into(),
                properties: Some(vec!["cname".into()]),
            },
        ],
        e_tables: vec![
            ETableConfig {
                table_name: "WorksAt".into(),
                src_v_table: Some("Person".into()),
                src_v: "'person'::pid".into(),
                dst_v_table: Some("Company".into()),
                dst_v: "'company'::cid".into(),
                prefixed_edge_id: false,
                implicit_edge_id: true,
                id: None,
                fix_label: true,
                label: "'worksAt'".into(),
                properties: Some(vec!["since".into()]),
            },
            ETableConfig {
                table_name: "Knows".into(),
                src_v_table: Some("Person".into()),
                src_v: "'person'::a".into(),
                dst_v_table: Some("Person".into()),
                dst_v: "'person'::b".into(),
                prefixed_edge_id: false,
                implicit_edge_id: true,
                id: None,
                fix_label: true,
                label: "'knows'".into(),
                properties: Some(vec!["metIn".into()]),
            },
        ],
    }
}

fn open_with_threads(db: Arc<Database>, threads: usize) -> Arc<Db2Graph> {
    let options = GraphOptions { threads: Some(threads), ..Default::default() };
    Db2Graph::open_with_options(db, &social_overlay(), options).unwrap()
}

/// Like [`open_with_threads`] but with the adjacency cache pinned off —
/// for tests whose statement-hook harness requires every adjacency probe
/// to reach SQL.
fn open_no_cache(db: Arc<Database>, threads: usize) -> Arc<Db2Graph> {
    let options = GraphOptions {
        threads: Some(threads),
        adj_cache_mb: Some(0),
        ..Default::default()
    };
    Db2Graph::open_with_options(db, &social_overlay(), options).unwrap()
}

/// Queries exercising every fan-out path: GraphStep over all tables,
/// adjacency in each direction, endpoint resolution, aggregates,
/// projections, and multi-label scans.
const CORPUS: &[&str] = &[
    "g.V().count()",
    "g.E().count()",
    "g.V().values('name')",
    "g.V().hasLabel('person').out('knows').values('name')",
    "g.V().hasLabel('person').in('knows').count()",
    "g.V('person::1').both('knows').values('name')",
    "g.V('person::1').bothE('knows').values('metIn')",
    "g.V('person::1', 'person::2', 'person::3').outE('knows').inV().values('name')",
    "g.V().out('worksAt').values('cname')",
    "g.E().hasLabel('knows').outV().dedup().count()",
    "g.V().values('age').sum()",
    "g.V().values('age').mean()",
    "g.V().has('metIn', 'US')",
];

#[test]
fn parallel_results_match_sequential_on_corpus() {
    let db = social_db();
    let g1 = open_with_threads(db.clone(), 1);
    let g4 = open_with_threads(db, 4);
    for q in CORPUS {
        let seq = g1.run(q).unwrap();
        let par = g4.run(q).unwrap();
        assert_eq!(seq, par, "results diverge for {q}");
    }
}

#[test]
fn parallel_profile_matches_sequential_modulo_timing() {
    let db = social_db();
    let g1 = open_with_threads(db.clone(), 1);
    let g4 = open_with_threads(db, 4);
    for q in CORPUS {
        let (v1, p1) = g1.profile(q).unwrap();
        let (v4, p4) = g4.profile(q).unwrap();
        assert_eq!(v1, v4, "profiled results diverge for {q}");
        // Step structure: same descriptions and frontier counts.
        let steps = |p: &db2graph::core::ProfileReport| {
            p.steps
                .iter()
                .map(|s| (s.index, s.description.clone(), s.in_count, s.out_count))
                .collect::<Vec<_>>()
        };
        assert_eq!(steps(&p1), steps(&p4), "step profiles diverge for {q}");
        // Table decisions arrive in the same order (forks are absorbed in
        // job order, so scheduling cannot reorder them).
        let tables = |p: &db2graph::core::ProfileReport| {
            p.tables.iter().map(|t| (t.table.clone(), t.action.clone())).collect::<Vec<_>>()
        };
        assert_eq!(tables(&p1), tables(&p4), "table decisions diverge for {q}");
        // Same SQL statements in the same order, with the same cache
        // outcomes (both graphs replay the corpus from a cold cache).
        let stmts = |p: &db2graph::core::ProfileReport| {
            p.statements
                .iter()
                .map(|s| (s.sql.clone(), s.template_hit, s.rows))
                .collect::<Vec<_>>()
        };
        assert_eq!(stmts(&p1), stmts(&p4), "statement profiles diverge for {q}");
    }
}

#[test]
fn cold_warm_and_disabled_caches_agree_on_corpus() {
    // The adjacency cache must be invisible to results: every corpus query
    // returns the same values from a cold cache (lazily populating), a warm
    // cache (serving from CSR segments), an explicitly warmed cache
    // (complete segments from a full scan), and no cache at all. Profiled
    // runs bypass the cache entirely, so `.profile()` reports must also be
    // identical with the cache on and off — at every thread count.
    let db = social_db();
    for threads in [1, 2, 8] {
        let g_off = open_no_cache(db.clone(), threads);
        let g_on = open_with_threads(db.clone(), threads);
        let g_warmed = open_with_threads(db.clone(), threads);
        assert!(g_warmed.warm_adjacency_cache().unwrap() > 0);
        for q in CORPUS {
            let reference = g_off.run(q).unwrap();
            let cold = g_on.run(q).unwrap();
            let warm = g_on.run(q).unwrap();
            let warmed = g_warmed.run(q).unwrap();
            assert_eq!(cold, reference, "threads={threads}: cold cache diverges for {q}");
            assert_eq!(warm, reference, "threads={threads}: warm cache diverges for {q}");
            assert_eq!(warmed, reference, "threads={threads}: warmed cache diverges for {q}");

            let (v_off, p_off) = g_off.profile(q).unwrap();
            let (v_on, p_on) = g_on.profile(q).unwrap();
            assert_eq!(v_off, v_on, "threads={threads}: profiled results diverge for {q}");
            let shape = |p: &db2graph::core::ProfileReport| {
                (
                    p.steps
                        .iter()
                        .map(|s| (s.index, s.description.clone(), s.in_count, s.out_count))
                        .collect::<Vec<_>>(),
                    p.tables
                        .iter()
                        .map(|t| (t.table.clone(), t.action.clone()))
                        .collect::<Vec<_>>(),
                    p.statements
                        .iter()
                        .map(|s| (s.sql.clone(), s.rows))
                        .collect::<Vec<_>>(),
                )
            };
            assert_eq!(
                shape(&p_off),
                shape(&p_on),
                "threads={threads}: profile diverges between cache off/on for {q}"
            );
        }
        // The warm passes really were served from the cache.
        let m = g_on.metrics();
        assert!(m.adj_cache_hits > 0, "threads={threads}: no cache hits recorded: {m:?}");
        assert!(m.adj_cache_bytes > 0, "threads={threads}: cache reports empty: {m:?}");
        let m = g_warmed.metrics();
        assert!(m.adj_cache_hits > 0, "threads={threads}: warmed graph never hit: {m:?}");
        // ... and the cache-disabled graph never touched a cache.
        let m = g_off.metrics();
        assert_eq!(m.adj_cache_hits + m.adj_cache_misses + m.adj_cache_bytes, 0, "{m:?}");
    }
}

#[test]
fn parallel_trace_structure_matches_sequential() {
    // The span *tree* must be deterministic across thread counts: worker
    // forks are absorbed in job order and re-parented under the fan-out
    // site, so the timing-free structure rendering is identical at 1 and 4
    // threads — spans differ only in timestamps.
    let db = social_db();
    let open_traced = |db: Arc<Database>, threads: usize| {
        let options = GraphOptions {
            threads: Some(threads),
            trace: Some(true),
            trace_capacity: Some(1 << 20),
            ..Default::default()
        };
        Db2Graph::open_with_options(db, &social_overlay(), options).unwrap()
    };
    let g1 = open_traced(db.clone(), 1);
    let g4 = open_traced(db, 4);
    for q in CORPUS {
        assert_eq!(g1.run(q).unwrap(), g4.run(q).unwrap(), "results diverge for {q}");
    }
    let seq = g1.trace_sink().unwrap().structure_lines();
    let par = g4.trace_sink().unwrap().structure_lines();
    assert!(!seq.is_empty());
    assert_eq!(seq, par, "trace structure diverges between 1 and 4 threads");
    // The corpus exercises every layer: the combined trace must contain
    // query, step, table, sql and worker spans, with sql nesting under a
    // worker under a step under a query.
    for kind in ["[query|", "[step|", "[table|", "[sql|", "[worker|"] {
        assert!(seq.iter().any(|l| l.starts_with(kind)), "no {kind} span in trace");
    }
    assert!(
        seq.iter().any(|l| l.starts_with("[sql|") && l.contains(" > worker > ")),
        "no sql span nested under a worker span:\n{}",
        seq.join("\n")
    );
}

#[test]
fn self_loop_surfaces_once_per_incident_direction() {
    // Ann knows Ann: under TinkerPop semantics bothE() emits the self-loop
    // edge once for the out-incidence and once for the in-incidence.
    let db = social_db();
    for threads in [1, 4] {
        let g = open_with_threads(db.clone(), threads);
        let out = g.run("g.V('person::1').bothE('knows').count()").unwrap();
        // out-edges: 1->1, 1->2, 1->3; in-edges: 1->1 again.
        assert_eq!(out, vec![GValue::Long(4)], "threads={threads}");
        let out = g.run("g.V('person::1').both('knows').count()").unwrap();
        assert_eq!(out, vec![GValue::Long(4)], "threads={threads}");
        // The self-loop neighbor is Ann herself, twice.
        let out = g
            .run("g.V('person::1').both('knows').hasId('person::1').count()")
            .unwrap();
        assert_eq!(out, vec![GValue::Long(2)], "threads={threads}");
    }
}

#[test]
fn duplicate_frontier_vertices_keep_their_positions() {
    // A vertex appearing twice in a traversal frontier (here: Ann, reached
    // once per incident direction of her self-loop) produces its adjacency
    // once per frontier position, not once per distinct id.
    let db = social_db();
    for threads in [1, 4] {
        let g = open_with_threads(db.clone(), threads);
        let once = g.run("g.V('person::1').out('knows').count()").unwrap();
        assert_eq!(once, vec![GValue::Long(3)], "threads={threads}");
        // both('knows').hasId('person::1') puts Ann in the frontier twice.
        let twice = g
            .run("g.V('person::1').both('knows').hasId('person::1').out('knows').count()")
            .unwrap();
        assert_eq!(twice, vec![GValue::Long(6)], "threads={threads}");
        let mut names = g
            .run("g.V('person::1').both('knows').hasId('person::1').out('knows').values('name')")
            .unwrap();
        names.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(
            names,
            vec![
                GValue::Str("Ann".into()),
                GValue::Str("Ann".into()),
                GValue::Str("Bo".into()),
                GValue::Str("Bo".into()),
                GValue::Str("Cy".into()),
                GValue::Str("Cy".into()),
            ],
            "threads={threads}"
        );
    }
}

// ----------------------------------------------------- snapshot consistency

/// Sort a result list into a canonical order for comparison.
fn sorted(mut values: Vec<GValue>) -> Vec<GValue> {
    values.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    values
}

#[test]
fn writer_commit_mid_traversal_is_invisible_to_the_running_query() {
    // Regression: each generated statement used to read the latest
    // committed state, so a writer committing *between* the frontier scan
    // and the adjacency probe leaked future rows into a running traversal
    // (an anachronism: the query mixed two database states). The whole
    // script now reads the snapshot pinned at run() entry — at any thread
    // count, across every fan-out worker.
    use std::sync::atomic::{AtomicBool, Ordering};
    for threads in [1, 2, 8] {
        let db = social_db();
        // Cache off: this harness interleaves via the statement hook, so
        // the second run's adjacency probe must reach SQL. The cached
        // variant of this scenario lives in stress_consistency.rs.
        let g = open_no_cache(db.clone(), threads);
        let traversal = "g.V().hasLabel('person').out('knows').values('name')";
        let baseline = sorted(g.run(traversal).unwrap());

        // Deterministic interleaving via the dialect's statement hook: the
        // first statement touching the edge table means the Person frontier
        // scan has already executed — exactly the window where a concurrent
        // commit used to split the traversal across two states.
        let fired = Arc::new(AtomicBool::new(false));
        let hook_db = db.clone();
        let hook_fired = fired.clone();
        g.dialect().set_statement_hook(Some(Arc::new(move |template: &str| {
            if template.contains("FROM Knows") && !hook_fired.swap(true, Ordering::SeqCst) {
                hook_db.execute("INSERT INTO Person VALUES (9, 'Zed', 52)").unwrap();
                hook_db
                    .execute(
                        "INSERT INTO Knows VALUES (1, 9, 'ZZ'), (2, 9, 'ZZ'), \
                         (3, 9, 'ZZ'), (4, 9, 'ZZ')",
                    )
                    .unwrap();
            }
        })));
        let mid = sorted(g.run(traversal).unwrap());
        g.dialect().set_statement_hook(None);
        assert!(fired.load(Ordering::SeqCst), "threads={threads}: the writer never ran");
        assert_eq!(
            mid, baseline,
            "threads={threads}: a mid-traversal commit leaked into a running query"
        );

        // The commit is real — a *fresh* query (fresh snapshot) sees it.
        let after = g
            .run("g.V().hasLabel('person').out('knows').has('name', 'Zed').count()")
            .unwrap();
        assert_eq!(after, vec![GValue::Long(4)], "threads={threads}");
    }
}

#[test]
fn endpoint_delete_mid_traversal_leaves_no_dangling_edges() {
    // Phantom-vertex regression: an endpoint deleted between the edge scan
    // and the endpoint lookup used to produce a dangling edge — the edge
    // row from one state, no vertex row from the next. Under the pinned
    // snapshot the traversal sees both rows (the pre-delete state); a fresh
    // query afterwards sees neither.
    use std::sync::atomic::{AtomicBool, Ordering};
    for threads in [1, 2, 8] {
        let db = social_db();
        // Cache off: the hook below must see this query's own statements.
        let g = open_no_cache(db.clone(), threads);
        let fired = Arc::new(AtomicBool::new(false));
        let hook_db = db.clone();
        let hook_fired = fired.clone();
        // The first Person statement of this traversal is the endpoint
        // lookup — the edge scan has already run. Delete vertex Di and her
        // incident edge atomically right in that window.
        g.dialect().set_statement_hook(Some(Arc::new(move |template: &str| {
            if template.contains("FROM Person") && !hook_fired.swap(true, Ordering::SeqCst) {
                hook_db
                    .transaction(|db| {
                        db.execute("DELETE FROM Knows WHERE b = 4")?;
                        db.execute("DELETE FROM Person WHERE pid = 4")?;
                        Ok(())
                    })
                    .unwrap();
            }
        })));
        let names = sorted(g.run("g.E().hasLabel('knows').inV().values('name')").unwrap());
        g.dialect().set_statement_hook(None);
        assert!(fired.load(Ordering::SeqCst), "threads={threads}: the deleter never ran");
        // All five edges resolve an endpoint, including 3 -> Di.
        assert_eq!(
            names,
            vec![
                GValue::Str("Ann".into()),
                GValue::Str("Bo".into()),
                GValue::Str("Cy".into()),
                GValue::Str("Cy".into()),
                GValue::Str("Di".into()),
            ],
            "threads={threads}: endpoint lookup must see the same state as the edge scan"
        );
        // A fresh snapshot sees both rows gone — never an edge without its
        // endpoint or vice versa.
        assert_eq!(
            g.run("g.E().hasLabel('knows').count()").unwrap(),
            vec![GValue::Long(4)],
            "threads={threads}"
        );
        assert_eq!(
            g.run("g.V().hasId('person::4').count()").unwrap(),
            vec![GValue::Long(0)],
            "threads={threads}"
        );
    }
}

#[test]
fn ddl_between_queries_reprepares_cached_templates() {
    // The dialect's template cache is stamped with the catalog generation;
    // DDL (here: drop + recreate a table with a different column order)
    // must transparently re-prepare the cached entry instead of executing
    // a statement compiled against the dropped catalog state.
    let db = social_db();
    let g = open_with_threads(db.clone(), 2);
    let traversal = "g.V().hasLabel('person').values('name')";
    let before = sorted(g.run(traversal).unwrap());
    assert_eq!(before.len(), 4);
    assert_eq!(g.metrics().template_invalidations, 0);

    db.execute("DROP TABLE Knows").unwrap();
    db.execute("DROP TABLE WorksAt").unwrap();
    db.execute("DROP TABLE Person").unwrap();
    db.execute("CREATE TABLE Person (name VARCHAR, age BIGINT, pid BIGINT PRIMARY KEY)")
        .unwrap();
    db.execute("INSERT INTO Person VALUES ('Ned', 61, 1), ('Oz', 25, 2)").unwrap();

    // Same Gremlin, same SQL template text — but the cached entry is stale.
    let after = sorted(g.run(traversal).unwrap());
    assert_eq!(after, vec![GValue::Str("Ned".into()), GValue::Str("Oz".into())]);
    let m = g.metrics();
    assert!(
        m.template_invalidations >= 1,
        "expected a recorded template invalidation: {m:?}"
    );
    // Re-running is served by the refreshed cache entry — no further
    // invalidations without further DDL.
    let again = sorted(g.run(traversal).unwrap());
    assert_eq!(again, after);
    assert_eq!(g.metrics().template_invalidations, m.template_invalidations);
}

// ------------------------------------------------------------- large graphs

/// A chain of `n` nodes: i -> i+1.
fn chain_db(n: i64) -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Node (nid BIGINT PRIMARY KEY, val BIGINT);
         CREATE TABLE Next (src BIGINT, dst BIGINT,
            FOREIGN KEY (src) REFERENCES Node(nid),
            FOREIGN KEY (dst) REFERENCES Node(nid));
         CREATE INDEX ix_next_src ON Next (src);
         CREATE INDEX ix_next_dst ON Next (dst);",
    )
    .unwrap();
    for start in (0..n).step_by(500) {
        let end = (start + 500).min(n);
        let nodes: Vec<String> =
            (start..end).map(|i| format!("({i}, {})", i % 7)).collect();
        db.execute(&format!("INSERT INTO Node VALUES {}", nodes.join(", "))).unwrap();
    }
    for start in (0..n).step_by(500) {
        let end = (start + 500).min(n);
        let edges: Vec<String> = (start..end)
            .filter(|&i| i + 1 < n)
            .map(|i| format!("({i}, {})", i + 1))
            .collect();
        if !edges.is_empty() {
            db.execute(&format!("INSERT INTO Next VALUES {}", edges.join(", "))).unwrap();
        }
    }
    db
}

fn chain_overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Node".into(),
            prefixed_id: true,
            id: "'node'::nid".into(),
            fix_label: true,
            label: "'node'".into(),
            properties: Some(vec!["val".into()]),
        }],
        e_tables: vec![ETableConfig {
            table_name: "Next".into(),
            src_v_table: Some("Node".into()),
            src_v: "'node'::src".into(),
            dst_v_table: Some("Node".into()),
            dst_v: "'node'::dst".into(),
            prefixed_edge_id: false,
            implicit_edge_id: true,
            id: None,
            fix_label: true,
            label: "'next'".into(),
            properties: None,
        }],
    }
}

#[test]
fn ten_thousand_vertex_frontier_completes_and_chunks() {
    // Regression for the quadratic `Vec::contains` dedup: a 10k frontier
    // must dedupe via hashing (this test ran for minutes before) and split
    // into multiple bounded statements instead of one 10k-wide IN-list.
    let n = 10_000;
    let db = chain_db(n);
    for threads in [1, 4] {
        let options = GraphOptions { threads: Some(threads), ..Default::default() };
        let g = Db2Graph::open_with_options(db.clone(), &chain_overlay(), options).unwrap();
        let out = g.run("g.V().out('next').count()").unwrap();
        assert_eq!(out, vec![GValue::Long(n - 1)], "threads={threads}");
        // Every generated IN-list stayed within the chunk ceiling.
        for t in g.dialect().template_texts() {
            let placeholders = t.matches('?').count();
            assert!(placeholders <= 1024, "template exceeds chunk ceiling: {t}");
        }
    }
}

#[test]
fn template_count_stays_logarithmic_in_frontier_size() {
    // 100 adjacency queries with frontier sizes 1..=100 must produce at
    // most 8 distinct templates for the adjacency family (buckets 1, 2, 4,
    // ..., 128), not one template per distinct frontier size.
    let db = chain_db(200);
    let g = Db2Graph::open_with_options(
        db,
        &chain_overlay(),
        GraphOptions { threads: Some(2), ..Default::default() },
    )
    .unwrap();
    for size in 1..=100usize {
        let ids: Vec<String> = (0..size).map(|i| format!("'node::{i}'")).collect();
        let q = format!("g.V({}).outE('next').count()", ids.join(", "));
        let out = g.run(&q).unwrap();
        assert_eq!(out, vec![GValue::Long(size as i64)]);
    }
    let family: Vec<String> = g
        .dialect()
        .template_texts()
        .into_iter()
        .filter(|t| t.contains("FROM Next"))
        .collect();
    assert!(
        family.len() <= 8,
        "adjacency family has {} templates: {family:#?}",
        family.len()
    );
    // And the cache served almost every query.
    let m = g.metrics();
    assert!(
        m.template_hits > m.template_misses,
        "expected mostly hits: {m:?}"
    );
}
