//! End-to-end integration tests on the paper's Figure 2 healthcare
//! scenario: overlay a property graph onto relational tables and run the
//! Gremlin workloads from the paper.

use std::sync::Arc;

use db2graph_core::config::healthcare_example_json;
use db2graph_core::{Db2Graph, GraphOptions, StrategyConfig};
use gremlin::GValue;
use reldb::{Database, Value};

/// Figure 2's data: patients, diseases, a small ontology, device data.
fn healthcare_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
         CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
         CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR,
            FOREIGN KEY (sourceID) REFERENCES Disease(diseaseID),
            FOREIGN KEY (targetID) REFERENCES Disease(diseaseID));
         CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
            FOREIGN KEY (patientID) REFERENCES Patient(patientID),
            FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
         CREATE TABLE DeviceData (subscriptionID BIGINT, day BIGINT, steps BIGINT, exerciseMinutes BIGINT);
         CREATE INDEX ix_hd_patient ON HasDisease (patientID);
         CREATE INDEX ix_hd_disease ON HasDisease (diseaseID);
         CREATE INDEX ix_onto_src ON DiseaseOntology (sourceID);
         CREATE INDEX ix_onto_dst ON DiseaseOntology (targetID);
         INSERT INTO Patient VALUES
            (1, 'Alice', '12 Oak St', 100),
            (2, 'Bob', '9 Elm St', 101),
            (3, 'Carol', '4 Pine St', 102),
            (4, 'Dave', NULL, 103);
         INSERT INTO Disease VALUES
            (10, 'E11', 'type 2 diabetes'),
            (11, 'E10', 'type 1 diabetes'),
            (12, 'E08', 'diabetes'),
            (13, 'E00', 'metabolic disease'),
            (14, 'I10', 'hypertension');
         -- ontology: t2d -isa-> diabetes, t1d -isa-> diabetes,
         --           diabetes -isa-> metabolic disease
         INSERT INTO DiseaseOntology VALUES
            (10, 12, 'isa'), (11, 12, 'isa'), (12, 13, 'isa');
         INSERT INTO HasDisease VALUES
            (1, 10, 'diagnosed 2019'),
            (2, 11, 'diagnosed 2020'),
            (3, 14, NULL),
            (4, 12, NULL);
         INSERT INTO DeviceData VALUES
            (100, 1, 9000, 40), (100, 2, 11000, 55),
            (101, 1, 3000, 10), (101, 2, 5000, 20),
            (102, 1, 12000, 70),
            (103, 1, 800, 5);",
    )
    .unwrap();
    db
}

fn open(db: &Arc<Database>) -> Arc<Db2Graph> {
    Db2Graph::open_json(db.clone(), healthcare_example_json()).unwrap()
}

#[test]
fn basic_counts() {
    let db = healthcare_db();
    let g = open(&db);
    assert_eq!(g.run("g.V().count()").unwrap(), vec![GValue::Long(9)]);
    assert_eq!(g.run("g.E().count()").unwrap(), vec![GValue::Long(7)]);
    assert_eq!(
        g.run("g.V().hasLabel('patient').count()").unwrap(),
        vec![GValue::Long(4)]
    );
    assert_eq!(
        g.run("g.E().hasLabel('isa').count()").unwrap(),
        vec![GValue::Long(3)]
    );
}

#[test]
fn lookup_by_prefixed_and_plain_ids() {
    let db = healthcare_db();
    let g = open(&db);
    let out = g.run("g.V('patient::1').values('name')").unwrap();
    assert_eq!(out, vec![GValue::Str("Alice".into())]);
    let out = g.run("g.V(10).values('conceptName')").unwrap();
    assert_eq!(out, vec![GValue::Str("type 2 diabetes".into())]);
    // Unknown ids return nothing, not an error.
    assert!(g.run("g.V('patient::999')").unwrap().is_empty());
    assert!(g.run("g.V(999)").unwrap().is_empty());
}

#[test]
fn traversal_patient_to_disease_and_back() {
    let db = healthcare_db();
    let g = open(&db);
    let out = g
        .run("g.V('patient::1').out('hasDisease').values('conceptName')")
        .unwrap();
    assert_eq!(out, vec![GValue::Str("type 2 diabetes".into())]);
    // Reverse: who has t2d?
    let out = g.run("g.V(10).in('hasDisease').values('name')").unwrap();
    assert_eq!(out, vec![GValue::Str("Alice".into())]);
    // Edges with properties.
    let out = g
        .run("g.V('patient::1').outE('hasDisease').values('description')")
        .unwrap();
    assert_eq!(out, vec![GValue::Str("diagnosed 2019".into())]);
}

#[test]
fn ontology_walk_with_repeat() {
    let db = healthcare_db();
    let g = open(&db);
    // From t2d, 2 hops up the ontology.
    let out = g
        .run("g.V(10).repeat(out('isa').dedup().store('x')).times(2).cap('x')")
        .unwrap();
    match &out[0] {
        GValue::List(items) => {
            let names: Vec<String> = items
                .iter()
                .filter_map(|v| match v {
                    GValue::Vertex(vx) => {
                        vx.properties.get("conceptName").map(|p| p.to_string())
                    }
                    _ => None,
                })
                .collect();
            assert!(names.contains(&"diabetes".to_string()));
            assert!(names.contains(&"metabolic disease".to_string()));
            assert_eq!(items.len(), 2);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn section4_similar_diseases_script() {
    let db = healthcare_db();
    let g = open(&db);
    // The paper's Section 4 script (2 hops up + 2 hops down from Alice's
    // diseases). Alice has t2d; up: diabetes, metabolic; down from those:
    // t2d, t1d, diabetes. Patients with any of these: Alice, Bob, Dave.
    let script = "similar_diseases = g.V().hasLabel('patient').has('patientID', 1)\
        .out('hasDisease')\
        .repeat(out('isa').dedup().store('x')).times(2)\
        .repeat(in('isa').dedup().store('x')).times(2).cap('x').next();\
        g.V(similar_diseases).in('hasDisease').dedup().values('patientID', 'subscriptionID')";
    let out = g.run(script).unwrap();
    // Scalars interleave patientID, subscriptionID per patient.
    assert_eq!(out.len() % 2, 0);
    let pids: Vec<i64> = out
        .chunks(2)
        .map(|c| match &c[0] {
            GValue::Long(v) => *v,
            other => panic!("{other:?}"),
        })
        .collect();
    let mut sorted = pids.clone();
    sorted.sort();
    assert_eq!(sorted, vec![1, 2, 4]);
}

#[test]
fn graph_query_table_function_synergy() {
    let db = healthcare_db();
    let g = open(&db);
    g.register_graph_query("graphQuery");
    // The paper's Section 4 SQL: join graph results with DeviceData and
    // aggregate per patient.
    let sql = "SELECT patientID, AVG(steps) AS avg_steps, AVG(exerciseMinutes) AS avg_min \
        FROM DeviceData AS D, \
        TABLE(graphQuery('gremlin', 'similar_diseases = g.V().hasLabel(''patient'').has(''patientID'', 1).out(''hasDisease'')\
            .repeat(out(''isa'').dedup().store(''x'')).times(2)\
            .repeat(in(''isa'').dedup().store(''x'')).times(2).cap(''x'').next();\
            g.V(similar_diseases).in(''hasDisease'').dedup().values(''patientID'', ''subscriptionID'')')) \
        AS P (patientID BIGINT, subscriptionID BIGINT) \
        WHERE D.subscriptionID = P.subscriptionID \
        GROUP BY patientID ORDER BY patientID";
    let rs = db.execute(sql).unwrap();
    assert_eq!(rs.len(), 3); // Alice, Bob, Dave
    assert_eq!(rs.get(0, "patientID"), Some(&Value::Bigint(1)));
    assert_eq!(rs.get(0, "avg_steps"), Some(&Value::Double(10000.0)));
    assert_eq!(rs.get(1, "patientID"), Some(&Value::Bigint(2)));
    assert_eq!(rs.get(1, "avg_steps"), Some(&Value::Double(4000.0)));
    assert_eq!(rs.get(2, "patientID"), Some(&Value::Bigint(4)));
}

#[test]
fn updates_are_immediately_visible_to_graph_queries() {
    let db = healthcare_db();
    let g = open(&db);
    assert_eq!(
        g.run("g.V(10).in('hasDisease').count()").unwrap(),
        vec![GValue::Long(1)]
    );
    // A SQL write on the transactional side...
    db.execute("INSERT INTO HasDisease VALUES (3, 10, 'new diagnosis')").unwrap();
    // ...is visible to the very next graph query: same data, no copy.
    assert_eq!(
        g.run("g.V(10).in('hasDisease').count()").unwrap(),
        vec![GValue::Long(2)]
    );
    db.execute("UPDATE Patient SET name = 'Alicia' WHERE patientID = 1").unwrap();
    assert_eq!(
        g.run("g.V('patient::1').values('name')").unwrap(),
        vec![GValue::Str("Alicia".into())]
    );
    db.execute("DELETE FROM HasDisease WHERE patientID = 3").unwrap();
    assert_eq!(
        g.run("g.V(10).in('hasDisease').count()").unwrap(),
        vec![GValue::Long(1)]
    );
}

#[test]
fn rolled_back_updates_are_not_visible() {
    let db = healthcare_db();
    let g = open(&db);
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO Patient VALUES (9, 'Ghost', NULL, NULL)").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert!(g.run("g.V('patient::9')").unwrap().is_empty());
}

#[test]
fn label_pruning_is_observable_in_stats() {
    let db = healthcare_db();
    let g = open(&db);
    let before = g.stats();
    g.run("g.V().hasLabel('patient').count()").unwrap();
    let d = g.stats().since(&before);
    // Disease table pruned by its fixed label.
    assert!(d.tables_pruned >= 1, "{d:?}");
    // Exactly one SQL query (COUNT pushed down on Patient only).
    assert_eq!(d.sql_queries, 1, "{d:?}");
}

#[test]
fn prefixed_id_pins_single_table() {
    let db = healthcare_db();
    let g = open(&db);
    let before = g.stats();
    g.run("g.V('patient::2')").unwrap();
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1, "prefixed id should query only Patient: {d:?}");
}

#[test]
fn mutation_strategy_skips_vertex_scan() {
    let db = healthcare_db();
    let g = open(&db);
    let before = g.stats();
    // g.V(id).outE(label): with the mutation this is ONE SQL query on the
    // edge table, no Patient query at all.
    g.run("g.V('patient::1').outE('hasDisease')").unwrap();
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1, "{d:?}");
    // Plan shows the rewritten shape.
    let plan = g.explain("g.V('patient::1').outE('hasDisease')").unwrap();
    assert!(plan.contains("src_ids"), "{plan}");
    assert!(!plan.contains("Vertex("), "{plan}");
}

#[test]
fn count_links_is_one_aggregate_query() {
    let db = healthcare_db();
    let g = open(&db);
    let before = g.stats();
    let out = g.run("g.V('patient::1').outE('hasDisease').count()").unwrap();
    assert_eq!(out, vec![GValue::Long(1)]);
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1, "{d:?}");
    let plan = g.explain("g.V('patient::1').outE('hasDisease').count()").unwrap();
    assert!(plan.contains("agg"), "{plan}");
}

#[test]
fn strategies_off_still_correct() {
    let db = healthcare_db();
    let cfg = db2graph_core::OverlayConfig::from_json(healthcare_example_json()).unwrap();
    // Adjacency cache off on both sides: the SQL-count comparison below
    // measures the *strategy* savings, which warm cache hits would mask.
    let g_off = Db2Graph::open_with_options(
        db.clone(),
        &cfg,
        GraphOptions {
            strategies: StrategyConfig::none(),
            adj_cache_mb: Some(0),
            ..Default::default()
        },
    )
    .unwrap();
    let g_on = Db2Graph::open_with_options(
        db.clone(),
        &cfg,
        GraphOptions { adj_cache_mb: Some(0), ..Default::default() },
    )
    .unwrap();
    for q in [
        "g.V().hasLabel('patient').count()",
        "g.V('patient::1').outE('hasDisease').count()",
        "g.V('patient::1').out('hasDisease').values('conceptName')",
        "g.V().has('name', 'Alice').values('patientID')",
        "g.V(10).repeat(out('isa').dedup().store('x')).times(2).cap('x').next()",
        "g.E().hasLabel('isa').count()",
    ] {
        let a = g_on.run(q).unwrap();
        let b = g_off.run(q).unwrap();
        assert_eq!(a, b, "query {q} differs with strategies off");
    }
    // But the optimized version issues fewer SQL queries.
    let b_on = g_on.stats();
    g_on.run("g.V('patient::1').outE('hasDisease').count()").unwrap();
    let on_q = g_on.stats().since(&b_on).sql_queries;
    let b_off = g_off.stats();
    g_off.run("g.V('patient::1').outE('hasDisease').count()").unwrap();
    let off_q = g_off.stats().since(&b_off).sql_queries;
    assert!(on_q < off_q, "optimized {on_q} vs unoptimized {off_q}");
}

#[test]
fn edge_lookup_by_implicit_id() {
    let db = healthcare_db();
    let g = open(&db);
    // Implicit edge ids have the form src::label::dst.
    let out = g.run("g.E('patient::1::hasDisease::10').values('description')").unwrap();
    assert_eq!(out, vec![GValue::Str("diagnosed 2019".into())]);
    // outV/inV resolve endpoints.
    let out = g.run("g.E('patient::1::hasDisease::10').outV().values('name')").unwrap();
    assert_eq!(out, vec![GValue::Str("Alice".into())]);
    let out = g.run("g.E('patient::1::hasDisease::10').inV().values('conceptName')").unwrap();
    assert_eq!(out, vec![GValue::Str("type 2 diabetes".into())]);
}

#[test]
fn edge_lookup_by_explicit_prefixed_id() {
    let db = healthcare_db();
    let g = open(&db);
    let out = g.run("g.E('ontology::10::12').outV().values('conceptName')").unwrap();
    assert_eq!(out, vec![GValue::Str("type 2 diabetes".into())]);
    let out = g.run("g.E('ontology::10::12').inV().values('conceptName')").unwrap();
    assert_eq!(out, vec![GValue::Str("diabetes".into())]);
}

#[test]
fn column_derived_edge_labels() {
    let db = healthcare_db();
    let g = open(&db);
    // DiseaseOntology's label comes from the 'type' column.
    let out = g.run("g.E().hasLabel('isa').label().dedup()").unwrap();
    assert_eq!(out, vec![GValue::Str("isa".into())]);
}

#[test]
fn get_link_filter_shape() {
    let db = healthcare_db();
    let g = open(&db);
    // LinkBench getLink: does the specific edge exist?
    let out = g
        .run("g.V('patient::1').outE('hasDisease').filter(inV().id() == 10)")
        .unwrap();
    assert_eq!(out.len(), 1);
    let out = g
        .run("g.V('patient::1').outE('hasDisease').filter(inV().id() == 11)")
        .unwrap();
    assert!(out.is_empty());
}

#[test]
fn derived_edges_via_view() {
    let db = healthcare_db();
    // The "surprising benefit" (Section 5): define patient->ontology-parent
    // edges as a view joining HasDisease with DiseaseOntology.
    db.execute(
        "CREATE VIEW PatientDiseaseParent AS \
         SELECT h.patientID AS patientID, o.targetID AS parentID \
         FROM HasDisease h JOIN DiseaseOntology o ON h.diseaseID = o.sourceID",
    )
    .unwrap();
    let mut cfg = db2graph_core::OverlayConfig::from_json(healthcare_example_json()).unwrap();
    cfg.e_tables.push(db2graph_core::ETableConfig {
        table_name: "PatientDiseaseParent".into(),
        src_v_table: Some("Patient".into()),
        src_v: "'patient'::patientID".into(),
        dst_v_table: Some("Disease".into()),
        dst_v: "parentID".into(),
        prefixed_edge_id: false,
        implicit_edge_id: true,
        id: None,
        fix_label: true,
        label: "'hasDiseaseParent'".into(),
        properties: Some(vec![]),
    });
    let g = Db2Graph::open(db.clone(), &cfg).unwrap();
    // Alice has t2d, whose parent is diabetes (12).
    let out = g
        .run("g.V('patient::1').out('hasDiseaseParent').values('conceptName')")
        .unwrap();
    assert_eq!(out, vec![GValue::Str("diabetes".into())]);
    // Deleting the underlying ontology edge removes the derived edge
    // automatically — no custom maintenance logic.
    db.execute("DELETE FROM DiseaseOntology WHERE sourceID = 10").unwrap();
    assert!(g.run("g.V('patient::1').out('hasDiseaseParent')").unwrap().is_empty());
}

#[test]
fn valuemap_and_order() {
    let db = healthcare_db();
    let g = open(&db);
    let out = g
        .run("g.V().hasLabel('patient').order().by('name', desc).limit(2).values('name')")
        .unwrap();
    assert_eq!(
        out,
        vec![GValue::Str("Dave".into()), GValue::Str("Carol".into())]
    );
    let out = g.run("g.V('patient::1').valueMap('name', 'address')").unwrap();
    match &out[0] {
        GValue::Map(m) => {
            assert_eq!(m.get("name"), Some(&GValue::Str("Alice".into())));
            assert_eq!(m.get("address"), Some(&GValue::Str("12 Oak St".into())));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn aggregate_pushdowns_sum_mean_min_max() {
    let db = healthcare_db();
    let g = open(&db);
    // values+aggregate over vertex properties pushes SUM into SQL.
    let before = g.stats();
    let out = g.run("g.V().hasLabel('patient').values('subscriptionID').sum()").unwrap();
    assert_eq!(out, vec![GValue::Long(100 + 101 + 102 + 103)]);
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1, "{d:?}");
    let out = g.run("g.V().hasLabel('patient').values('patientID').mean()").unwrap();
    assert_eq!(out, vec![GValue::Double(2.5)]);
    let out = g.run("g.V().hasLabel('patient').values('patientID').min()").unwrap();
    assert_eq!(out, vec![GValue::Long(1)]);
    let out = g.run("g.V().hasLabel('patient').values('patientID').max()").unwrap();
    assert_eq!(out, vec![GValue::Long(4)]);
}

#[test]
fn oracle_equivalence_with_memgraph() {
    // Build the same graph in the in-memory reference backend and compare
    // answers for a battery of queries.
    use gremlin::memgraph::MemGraph;
    use gremlin::{Edge, ScriptRunner, Vertex};

    let db = healthcare_db();
    let g = open(&db);

    let mem = MemGraph::new();
    let patients = db.execute("SELECT * FROM Patient").unwrap();
    for row in &patients.rows {
        let pid = row[0].as_i64().unwrap();
        let mut v = Vertex::new(format!("patient::{pid}"), "patient")
            .with_property("patientID", pid);
        if let Value::Varchar(s) = &row[1] {
            v.properties.insert("name".into(), GValue::Str(s.clone()));
        }
        if let Value::Varchar(s) = &row[2] {
            v.properties.insert("address".into(), GValue::Str(s.clone()));
        }
        if let Value::Bigint(s) = &row[3] {
            v.properties.insert("subscriptionID".into(), GValue::Long(*s));
        }
        mem.add_vertex(v);
    }
    let diseases = db.execute("SELECT * FROM Disease").unwrap();
    for row in &diseases.rows {
        let did = row[0].as_i64().unwrap();
        let mut v = Vertex::new(did, "disease").with_property("diseaseID", did);
        if let Value::Varchar(s) = &row[1] {
            v.properties.insert("conceptCode".into(), GValue::Str(s.clone()));
        }
        if let Value::Varchar(s) = &row[2] {
            v.properties.insert("conceptName".into(), GValue::Str(s.clone()));
        }
        mem.add_vertex(v);
    }
    let hd = db.execute("SELECT * FROM HasDisease").unwrap();
    for row in &hd.rows {
        let pid = row[0].as_i64().unwrap();
        let did = row[1].as_i64().unwrap();
        let mut e = Edge::new(
            format!("patient::{pid}::hasDisease::{did}"),
            "hasDisease",
            format!("patient::{pid}"),
            did,
        );
        if let Value::Varchar(s) = &row[2] {
            e.properties.insert("description".into(), GValue::Str(s.clone()));
        }
        mem.add_edge(e);
    }
    let onto = db.execute("SELECT * FROM DiseaseOntology").unwrap();
    for row in &onto.rows {
        let s = row[0].as_i64().unwrap();
        let t = row[1].as_i64().unwrap();
        mem.add_edge(Edge::new(format!("ontology::{s}::{t}"), "isa", s, t));
    }

    let runner = ScriptRunner::new(&mem);
    for q in [
        "g.V().count()",
        "g.E().count()",
        "g.V().hasLabel('patient').count()",
        "g.V().hasLabel('patient').values('name').order()",
        "g.V('patient::1').out('hasDisease').values('conceptName')",
        "g.V(10).in('hasDisease').values('name')",
        "g.V(10).repeat(out('isa').dedup().store('x')).times(2).cap('x').next()",
        "g.V().has('name', 'Bob').out('hasDisease').out('isa').values('conceptName')",
        "g.E().hasLabel('isa').count()",
        "g.V('patient::1').outE('hasDisease').count()",
        "g.V().hasLabel('disease').values('diseaseID').max()",
    ] {
        let a = g.run(q).unwrap();
        let b = runner.run(q).unwrap();
        // Element results compare by id; sort scalars for order-insensitive
        // comparison where the query doesn't impose order.
        let norm = |vs: Vec<GValue>| -> Vec<String> {
            let mut out: Vec<String> = vs
                .iter()
                .map(|v| match v {
                    GValue::Vertex(vx) => format!("v[{}]", vx.id),
                    GValue::Edge(e) => format!("e[{}]", e.id),
                    GValue::List(items) => {
                        let mut inner: Vec<String> = items
                            .iter()
                            .map(|i| match i {
                                GValue::Vertex(vx) => format!("v[{}]", vx.id),
                                GValue::Edge(e) => format!("e[{}]", e.id),
                                other => other.to_string(),
                            })
                            .collect();
                        inner.sort();
                        format!("[{}]", inner.join(","))
                    }
                    other => other.to_string(),
                })
                .collect();
            out.sort();
            out
        };
        assert_eq!(norm(a), norm(b), "query {q} differs from oracle");
    }
}
