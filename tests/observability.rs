//! Operational observability, end to end over real sockets: request
//! correlation, the structured event log, the Prometheus exposition of
//! `/metrics`, and the SLO health monitor behind `/readyz`.
//!
//! The acceptance bar this file proves:
//!
//! * one `request_id` is traceable across the response header, JSON error
//!   bodies, the slow-query log, the trace export's root span, and
//!   `/events`;
//! * the `/metrics` JSON schema is frozen (golden key lists) and the
//!   Prometheus form covers every numeric leaf of it, with every line
//!   parseable and histogram buckets cumulative ending in `+Inf`;
//! * `/events?since=` paginates;
//! * `/readyz` flips to 503 naming the violated SLO under an injected
//!   p99 breach and recovers without a restart, with both transitions in
//!   `/events`.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use db2graph::core::json::Json;
use db2graph::core::{Db2Graph, GraphOptions, OverlayConfig, VTableConfig};
use db2graph::reldb::Database;
use db2graph::server::monitor::SloTargets;
use db2graph::server::{
    http_call, http_call_with_headers, GraphServer, ServerConfig, ServerHandle,
};

const TIMEOUT: Duration = Duration::from_secs(10);

fn account_graph(options: GraphOptions) -> Arc<Db2Graph> {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE Account (aid BIGINT PRIMARY KEY, balance BIGINT)").unwrap();
    let rows: Vec<String> = (0..16).map(|i| format!("({i}, 100)")).collect();
    db.execute(&format!("INSERT INTO Account VALUES {}", rows.join(", "))).unwrap();
    let overlay = OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Account".into(),
            prefixed_id: true,
            id: "'acct'::aid".into(),
            fix_label: true,
            label: "'acct'".into(),
            properties: Some(vec!["balance".into()]),
        }],
        e_tables: vec![],
    };
    Db2Graph::open_with_options(db, &overlay, options).unwrap()
}

fn start(options: GraphOptions, config: ServerConfig) -> (Arc<Db2Graph>, ServerHandle) {
    let graph = account_graph(options);
    let handle = GraphServer::start(graph.clone(), config).expect("bind server");
    (graph, handle)
}

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        vacuum_interval: None,
        ..Default::default()
    }
}

fn get(addr: SocketAddr, path: &str) -> db2graph::server::HttpResponse {
    http_call(addr, "GET", path, "", TIMEOUT).expect("http call")
}

// ------------------------------------------------------- correlation

#[test]
fn request_id_is_traceable_across_header_slowlog_trace_and_events() {
    // Trace every query and treat every query as slow, so one request
    // must land in all the observability surfaces at once.
    let options = GraphOptions {
        trace: Some(true),
        slow_query_nanos: Some(0),
        threads: Some(1),
        ..Default::default()
    };
    let (graph, handle) = start(options, base_config());
    let addr = handle.addr();
    let rid = "obs-correlation-0042";

    let r = http_call_with_headers(
        addr,
        "POST",
        "/query",
        "g.V().hasLabel('acct').count()",
        &[("X-Request-Id", rid)],
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    // 1. The response header echoes the client's id.
    assert_eq!(r.header("x-request-id"), Some(rid));

    // 2. The slow-query log entry carries it.
    let slow = get(addr, "/slow-queries");
    assert_eq!(slow.status, 200);
    assert!(slow.body.contains(rid), "slow-query log must carry the request id: {}", slow.body);

    // 3. The trace export's query root span carries it as an attr.
    let dir = std::env::temp_dir().join(format!("obs_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    graph.export_trace_jsonl(path.to_str().unwrap()).unwrap();
    let trace = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(trace.contains(rid), "trace export must carry the request id");

    // 4. The event log has the request's completion under the same id.
    let events = get(addr, "/events");
    assert_eq!(events.status, 200);
    let doc = Json::parse(&events.body).unwrap();
    let completed = doc
        .get("events")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .any(|e| {
            e.get("kind").and_then(Json::as_str) == Some("request_completed")
                && e.get("request_id").and_then(Json::as_str) == Some(rid)
        });
    assert!(completed, "no request_completed event for {rid}: {}", events.body);

    // 5. Error bodies carry the id too (and the header).
    let err = http_call_with_headers(
        addr,
        "POST",
        "/query",
        "g.V().nonsenseStep()",
        &[("X-Request-Id", "obs-err-7")],
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(err.status, 400);
    assert_eq!(err.header("x-request-id"), Some("obs-err-7"));
    let body = Json::parse(&err.body).unwrap();
    assert_eq!(body.get("request_id").and_then(Json::as_str), Some("obs-err-7"));

    handle.shutdown();
}

#[test]
fn generated_request_ids_are_unique_and_hostile_ids_are_sanitized() {
    let (_graph, handle) = start(GraphOptions::default(), base_config());
    let addr = handle.addr();
    let a = get(addr, "/healthz").header("x-request-id").unwrap().to_string();
    let b = get(addr, "/healthz").header("x-request-id").unwrap().to_string();
    assert_ne!(a, b, "generated ids must be unique");
    assert!(a.contains('-'), "generated id is epoch-seq shaped: {a}");

    // A header-injection attempt is stripped to its safe characters.
    let evil = http_call_with_headers(
        addr,
        "GET",
        "/healthz",
        "",
        &[("X-Request-Id", "ok-id\tbad chars\"{}")],
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(evil.header("x-request-id"), Some("ok-idbadchars"));
    handle.shutdown();
}

// ------------------------------------------------ metrics JSON golden

/// The frozen key lists of the `/metrics` JSON sections. A rename or
/// removal here is a breaking change for scrapers — this test makes it
/// loud. (Additions append; update the list in the same PR.)
const GRAPH_KEYS: &[&str] = &[
    "traversals",
    "sql_statements",
    "sql_wall_nanos",
    "rows_returned",
    "template_hits",
    "template_misses",
    "template_evictions",
    "template_invalidations",
    "pattern_evictions",
    "slow_queries",
    "vacuum_runs",
    "vacuumed_versions",
    "trace_spans",
    "dropped_spans",
    "commit_epoch",
    "snapshot_horizon",
    "active_snapshots",
    "wal_records",
    "wal_bytes",
    "checkpoints",
    "recovery_replayed_epochs",
    "query_p50_nanos",
    "query_p90_nanos",
    "query_p99_nanos",
    "sql_p50_nanos",
    "sql_p90_nanos",
    "sql_p99_nanos",
    "tables_considered",
    "tables_pruned",
    "vertices_from_edges",
    "adj_cache_hits",
    "adj_cache_misses",
    "adj_cache_evictions",
    "adj_cache_invalidations",
    "adj_cache_bytes",
];

const SERVER_KEYS: &[&str] = &[
    "accepted",
    "admitted",
    "rejected",
    "completed",
    "bad_requests",
    "query_timeouts",
    "bytes_in",
    "bytes_out",
    "in_flight",
    "queued",
    "accept_errors",
    "error_responses",
    "keepalive_reuses",
    "retry_after_hints",
    "sessions_began",
    "sessions_committed",
    "sessions_rolled_back",
    "sessions_reaped",
    "sessions_open",
    "endpoint_latency",
];

#[test]
fn metrics_json_sections_keep_their_golden_keys() {
    let (_graph, handle) = start(GraphOptions::default(), base_config());
    let addr = handle.addr();
    let _ = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
    let r = get(addr, "/metrics");
    assert_eq!(r.status, 200);
    let doc = Json::parse(&r.body).unwrap();
    for (section, golden) in [("graph", GRAPH_KEYS), ("server", SERVER_KEYS)] {
        let keys: Vec<&str> = doc
            .get(section)
            .and_then(Json::as_object)
            .unwrap_or_else(|| panic!("/metrics must have a '{section}' object"))
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, golden, "'{section}' section keys drifted");
    }
    handle.shutdown();
}

// --------------------------------------------- prometheus exposition

fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().unwrap().is_ascii_alphabetic()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse one sample line into (series_key, le_label, value) where
/// series_key is the metric name plus its non-`le` labels.
fn parse_sample(line: &str) -> (String, Option<String>, f64) {
    let (name_and_labels, value) =
        line.rsplit_once(' ').unwrap_or_else(|| panic!("no value in line: {line}"));
    let value: f64 = if value == "+Inf" {
        f64::INFINITY
    } else {
        value.parse().unwrap_or_else(|_| panic!("bad value in line: {line}"))
    };
    let (name, labels) = match name_and_labels.split_once('{') {
        Some((n, rest)) => {
            let rest = rest.strip_suffix('}').unwrap_or_else(|| panic!("bad labels: {line}"));
            (n, rest)
        }
        None => (name_and_labels, ""),
    };
    assert!(is_metric_name(name), "bad metric name in line: {line}");
    let mut le = None;
    let mut other_labels = Vec::new();
    for pair in split_labels(labels) {
        let (k, v) = pair.split_once('=').unwrap_or_else(|| panic!("bad label in: {line}"));
        assert!(is_metric_name(k), "bad label name in: {line}");
        assert!(
            v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
            "unquoted label value in: {line}"
        );
        if k == "le" {
            le = Some(v.trim_matches('"').to_string());
        } else {
            other_labels.push(pair.to_string());
        }
    }
    (format!("{name}{{{}}}", other_labels.join(",")), le, value)
}

/// Split a label body on top-level commas (values may contain escaped
/// quotes but our emitter never puts commas inside values; keep it
/// simple and quote-aware anyway).
fn split_labels(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The exposition-format lint: every line parses, every histogram's
/// buckets are cumulative and end with `+Inf` equal to its `_count`.
fn lint_prometheus(text: &str) {
    use std::collections::HashMap;
    let mut buckets: HashMap<String, Vec<(Option<String>, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line has a name");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(is_metric_name(name), "bad TYPE name: {line}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric kind: {line}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "only TYPE comments are emitted: {line}");
        let (series, le, value) = parse_sample(line);
        if let Some(name) = series.split('{').next() {
            if name.ends_with("_bucket") {
                buckets.entry(series.clone()).or_default().push((le, value));
            } else if name.ends_with("_count") {
                let base = series.replacen("_count{", "_bucket{", 1);
                counts.insert(base, value);
            }
        }
    }
    assert!(!buckets.is_empty(), "exposition must contain at least one histogram");
    for (series, entries) in buckets {
        let mut prev = -1.0;
        for (le, v) in &entries {
            assert!(le.is_some(), "bucket sample without le label: {series}");
            assert!(*v >= prev, "non-cumulative buckets in {series}");
            prev = *v;
        }
        let (last_le, last_v) = entries.last().unwrap();
        assert_eq!(last_le.as_deref(), Some("+Inf"), "{series} must end with +Inf");
        if let Some(count) = counts.get(&series) {
            assert_eq!(*last_v, *count, "+Inf bucket of {series} must equal its _count");
        }
    }
}

#[test]
fn prometheus_exposition_parses_and_covers_the_json_form() {
    let (_graph, handle) = start(GraphOptions::default(), base_config());
    let addr = handle.addr();
    for _ in 0..3 {
        let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
        assert_eq!(r.status, 200);
    }
    // Both negotiation forms answer the text format.
    let via_accept = http_call_with_headers(
        addr,
        "GET",
        "/metrics",
        "",
        &[("Accept", "text/plain")],
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(via_accept.status, 200);
    assert!(via_accept
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    let via_query = get(addr, "/metrics?format=prometheus");
    assert_eq!(via_query.status, 200);
    let json_form = get(addr, "/metrics");

    lint_prometheus(&via_accept.body);
    lint_prometheus(&via_query.body);

    // Coverage: every numeric leaf of the JSON sections has a
    // correspondingly named sample in the text form.
    let doc = Json::parse(&json_form.body).unwrap();
    for section in ["graph", "server"] {
        for (key, value) in doc.get(section).and_then(Json::as_object).unwrap() {
            if matches!(value, Json::Num(_)) {
                let name = format!("db2graph_{section}_{key}");
                assert!(
                    via_accept.body.lines().any(|l| l.starts_with(&name)),
                    "JSON metric {section}.{key} missing from Prometheus form as {name}"
                );
            }
        }
    }
    // JSON stays the default when no negotiation asks for text.
    assert!(Json::parse(&json_form.body).is_ok());
    handle.shutdown();
}

// ------------------------------------------------------ event paging

#[test]
fn events_endpoint_paginates_with_since() {
    let (_graph, handle) = start(GraphOptions::default(), base_config());
    let addr = handle.addr();
    for _ in 0..3 {
        let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
        assert_eq!(r.status, 200);
    }
    let first = Json::parse(&get(addr, "/events").body).unwrap();
    let last_seq = first.get("last_seq").and_then(Json::as_u64).unwrap();
    assert!(last_seq >= 3, "expected at least the three request events");
    let events = first.get("events").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty());

    // The tail call returns nothing new... (the /events request itself
    // completes *after* its response is framed, so it is not included).
    let tail = Json::parse(&get(addr, &format!("/events?since={last_seq}")).body).unwrap();
    let new_events = tail.get("events").and_then(Json::as_array).unwrap();
    assert!(
        new_events.iter().all(|e| e.get("seq").and_then(Json::as_u64).unwrap() > last_seq),
        "since must be exclusive"
    );

    // ...until something happens.
    let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    let after = Json::parse(&get(addr, &format!("/events?since={last_seq}")).body).unwrap();
    let found = after
        .get("events")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .any(|e| e.get("kind").and_then(Json::as_str) == Some("request_completed"));
    assert!(found, "new request_completed event must appear after since={last_seq}");
    handle.shutdown();
}

// ------------------------------------------------------- SLO monitor

#[test]
fn readyz_degrades_under_p99_breach_and_recovers_without_restart() {
    // A 1-nanosecond p99 target: every query breaches it. Short window
    // and tick so the test observes both transitions quickly.
    let config = ServerConfig {
        slo: SloTargets { p99_ms: Some(0.000001), ..Default::default() },
        monitor_interval: Duration::from_millis(25),
        monitor_window: Duration::from_millis(400),
        ..base_config()
    };
    let (_graph, handle) = start(GraphOptions::default(), config);
    let addr = handle.addr();
    assert_eq!(get(addr, "/healthz").status, 200);

    // Inject the breach: real queries whose latency must exceed 1ns.
    for _ in 0..5 {
        let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
        assert_eq!(r.status, 200);
    }
    let mut degraded_body = None;
    for _ in 0..200 {
        let r = get(addr, "/readyz");
        if r.status == 503 {
            degraded_body = Some(r.body);
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let degraded_body = degraded_body.expect("/readyz must flip to 503 under the p99 breach");
    assert!(
        degraded_body.contains("DB2GRAPH_SLO_P99_MS"),
        "degraded body must name the violated SLO: {degraded_body}"
    );
    assert!(degraded_body.contains("degraded"), "{degraded_body}");
    // Liveness is unaffected.
    assert_eq!(get(addr, "/healthz").status, 200);

    // Stop the query load; once the window slides past the breach the
    // server recovers with no restart. (/readyz polls are exempt from
    // the latency SLO, so polling cannot keep it degraded.)
    let mut recovered = false;
    for _ in 0..400 {
        if get(addr, "/readyz").status == 200 {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(recovered, "/readyz must recover after the rolling window passes");

    // Both transitions are in the event log.
    let events = get(addr, "/events").body;
    let doc = Json::parse(&events).unwrap();
    let kinds: Vec<&str> = doc
        .get("events")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"slo_degraded"), "missing slo_degraded event: {events}");
    assert!(kinds.contains(&"slo_recovered"), "missing slo_recovered event: {events}");
    handle.shutdown();
}

#[test]
fn drain_report_lands_in_the_event_log_file() {
    // With DB2GRAPH_EVENT_LOG configured (via ServerConfig here), events
    // survive the server: the drain report is the last thing written.
    let dir = std::env::temp_dir().join(format!("obs_evlog_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    let config = ServerConfig {
        event_log_path: Some(path.to_str().unwrap().to_string()),
        ..base_config()
    };
    let (_graph, handle) = start(GraphOptions::default(), config);
    let addr = handle.addr();
    let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    let report = handle.shutdown();
    assert_eq!(report.admitted, report.completed, "drain invariant");

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let mut kinds = Vec::new();
    for line in text.lines() {
        let doc = Json::parse(line).expect("every event-log line is one JSON object");
        kinds.push(doc.get("kind").and_then(Json::as_str).unwrap().to_string());
    }
    assert_eq!(kinds.first().map(String::as_str), Some("server_started"), "{kinds:?}");
    assert!(kinds.iter().any(|k| k == "request_completed"), "{kinds:?}");
    assert_eq!(kinds.last().map(String::as_str), Some("drain_report"), "{kinds:?}");
}
