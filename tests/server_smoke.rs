//! In-process smoke tests for the HTTP query service: every endpoint,
//! every error class, over a real socket — plus the env-gated validator
//! the `server-smoke` CI job uses to check curl-produced artifacts with
//! the repo's own JSON parser.

use std::sync::Arc;
use std::time::Duration;

use db2graph::core::config::healthcare_example_json;
use db2graph::core::json::Json;
use db2graph::core::{Db2Graph, GraphOptions};
use db2graph::reldb::Database;
use db2graph::server::{http_call, GraphServer, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(10);

fn healthcare_graph(options: GraphOptions) -> Arc<Db2Graph> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
         CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
         CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR);
         CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR);
         INSERT INTO Patient VALUES (1, 'Alice', '12 Oak St', 100), (2, 'Bob', '9 Elm St', 101);
         INSERT INTO Disease VALUES (10, 'E11', 'type 2 diabetes'), (11, 'E10', 'type 1 diabetes');
         INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019'), (2, 11, NULL);",
    )
    .unwrap();
    Db2Graph::open_with_options(
        db,
        &db2graph::core::OverlayConfig::from_json(healthcare_example_json()).unwrap(),
        options,
    )
    .unwrap()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 16,
        query_timeout: Some(Duration::from_secs(5)),
        read_timeout: Duration::from_secs(2),
        max_header_bytes: 4096,
        max_body_bytes: 4096,
        vacuum_interval: Some(Duration::from_millis(50)),
        checkpoint_interval: None,
        data_dir: None,
        durability: db2graph::reldb::Durability::Always,
        sql_endpoint: false,
        ..Default::default()
    }
}

#[test]
fn every_endpoint_answers_over_a_real_socket() {
    let options = GraphOptions { slow_query_nanos: Some(0), ..Default::default() };
    let graph = healthcare_graph(options);
    let handle = GraphServer::start(graph, test_config()).unwrap();
    let addr = handle.addr();

    // /healthz
    let r = http_call(addr, "GET", "/healthz", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    let j = Json::parse(&r.body).unwrap();
    assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"));

    // /query with a raw-Gremlin body.
    let r = http_call(addr, "POST", "/query", "g.V().hasLabel('patient').values('name')", TIMEOUT)
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let j = Json::parse(&r.body).unwrap();
    assert_eq!(j.get("count").and_then(Json::as_u64), Some(2));
    let names: Vec<&str> = j.get("result").unwrap().as_array().unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(names, ["Alice", "Bob"]);

    // /query with a JSON envelope.
    let r = http_call(addr, "POST", "/query", r#"{"gremlin": "g.V().count()"}"#, TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    let j = Json::parse(&r.body).unwrap();
    assert_eq!(
        j.get("result").and_then(|v| v.as_array()).and_then(|a| a[0].as_u64()),
        Some(4)
    );

    // Element serialization: vertices come back structured.
    let r = http_call(addr, "POST", "/query", "g.V().hasLabel('patient').limit(1)", TIMEOUT).unwrap();
    let j = Json::parse(&r.body).unwrap();
    let v = &j.get("result").unwrap().as_array().unwrap()[0];
    assert_eq!(v.get("type").and_then(Json::as_str), Some("vertex"));
    assert_eq!(v.get("label").and_then(Json::as_str), Some("patient"));

    // /explain and /profile reuse the observability reports.
    let r = http_call(addr, "POST", "/explain", "g.V().hasLabel('patient').count()", TIMEOUT)
        .unwrap();
    assert_eq!(r.status, 200);
    assert!(Json::parse(&r.body).unwrap().get("plan").is_some());
    let r = http_call(addr, "POST", "/profile", "g.V().count()", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    let j = Json::parse(&r.body).unwrap();
    assert!(j.get("profile").and_then(|p| p.get("steps")).is_some());

    // Malformed Gremlin, malformed JSON, empty body: structured 400s.
    for body in ["g.V().has((", "{\"gremlin\": 7}", "{not json", ""] {
        let r = http_call(addr, "POST", "/query", body, TIMEOUT).unwrap();
        assert_eq!(r.status, 400, "body {body:?} → {}", r.body);
        assert!(Json::parse(&r.body).unwrap().get("error").is_some());
    }
    // Adversarial nesting from the wire is a 400, not a stack overflow.
    let deep = format!("g.V().where({}out(){})", "not(".repeat(400), ")".repeat(400));
    let r = http_call(addr, "POST", "/query", &deep, TIMEOUT).unwrap();
    assert_eq!(r.status, 400);

    // /sql is opt-in (it can mutate anything): disabled here, so even a
    // well-formed statement is refused before it reaches the database.
    let r = http_call(addr, "POST", "/sql", "DROP TABLE Patient", TIMEOUT).unwrap();
    assert_eq!(r.status, 403, "{}", r.body);
    assert!(Json::parse(&r.body).unwrap().get("error").is_some());
    let r = http_call(addr, "POST", "/query", "g.V().hasLabel('patient').count()", TIMEOUT).unwrap();
    assert_eq!(r.status, 200, "table untouched by the refused DROP");

    // Unknown path, wrong method, oversized body.
    let r = http_call(addr, "GET", "/nope", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 404);
    let r = http_call(addr, "DELETE", "/query", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 405);
    let r = http_call(addr, "POST", "/query", &"x".repeat(5000), TIMEOUT).unwrap();
    assert_eq!(r.status, 413);

    // /slow-queries (threshold 0 ⇒ everything above is logged).
    let r = http_call(addr, "GET", "/slow-queries", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    let j = Json::parse(&r.body).unwrap();
    assert!(!j.get("slow_queries").unwrap().as_array().unwrap().is_empty());

    // /workload parses.
    let r = http_call(addr, "GET", "/workload", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    assert!(Json::parse(&r.body).unwrap().get("patterns").is_some());

    // /metrics: graph section (with the new vacuum/horizon fields) plus
    // the server section.
    std::thread::sleep(Duration::from_millis(120)); // let the daemon tick
    let r = http_call(addr, "GET", "/metrics", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    let j = Json::parse(&r.body).unwrap();
    let graph = j.get("graph").unwrap();
    assert!(graph.get("traversals").and_then(Json::as_u64).unwrap() >= 4);
    assert!(graph.get("vacuum_runs").and_then(Json::as_u64).unwrap() >= 1);
    assert!(graph.get("commit_epoch").and_then(Json::as_u64).unwrap() >= 1);
    assert!(graph.get("snapshot_horizon").is_some());
    assert!(graph.get("vacuumed_versions").is_some());
    let server = j.get("server").unwrap();
    assert!(server.get("completed").and_then(Json::as_u64).unwrap() >= 10);
    assert!(server.get("bad_requests").and_then(Json::as_u64).unwrap() >= 4);
    assert!(server.get("bytes_in").and_then(Json::as_u64).unwrap() > 0);
    assert!(server.get("bytes_out").and_then(Json::as_u64).unwrap() > 0);

    let report = handle.shutdown();
    assert!(report.admitted >= 10);
    assert_eq!(report.completed, report.admitted, "graceful drain answered everything");
}

/// `HEAD` on any read endpoint is a headers-only `GET`: same status, a
/// `Content-Length` describing the body the `GET` would return, zero
/// body bytes on the wire. Unknown paths mirror the GET's 404.
#[test]
fn head_is_answered_as_a_headers_only_get() {
    use std::io::{Read, Write};

    let graph = healthcare_graph(Default::default());
    let handle = GraphServer::start(graph, test_config()).unwrap();
    let addr = handle.addr();

    // Through the client (which enforces the no-body contract)…
    let r = http_call(addr, "HEAD", "/healthz", "", TIMEOUT).unwrap();
    assert_eq!((r.status, r.body.len()), (200, 0));
    let r = http_call(addr, "HEAD", "/metrics", "", TIMEOUT).unwrap();
    assert_eq!((r.status, r.body.len()), (200, 0));
    let r = http_call(addr, "HEAD", "/nope", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 404);

    // …and on the raw wire: a nonzero Content-Length, nothing after the
    // blank line.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"HEAD /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let head_end = raw.find("\r\n\r\n").unwrap();
    assert_eq!(head_end + 4, raw.len(), "body bytes after a HEAD response: {raw}");
    let declared: usize = raw
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(declared > 0, "Content-Length still describes the GET body");
    handle.shutdown();
}

/// A zero query budget expires before the first SQL statement: the
/// statement loop aborts with 503 and the timeout counter moves. (Zero
/// keeps the test deterministic — no racing a real clock.)
#[test]
fn expired_deadline_maps_to_503_and_counts() {
    let graph = healthcare_graph(Default::default());
    let config = ServerConfig { query_timeout: Some(Duration::ZERO), ..test_config() };
    let handle = GraphServer::start(graph, config).unwrap();
    let addr = handle.addr();
    let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
    assert_eq!(r.status, 503, "{}", r.body);
    let j = Json::parse(&r.body).unwrap();
    assert_eq!(j.get("timeout").and_then(Json::as_bool), Some(true));
    let r = http_call(addr, "GET", "/metrics", "", TIMEOUT).unwrap();
    let j = Json::parse(&r.body).unwrap();
    assert!(j.get("server").unwrap().get("query_timeouts").and_then(Json::as_u64).unwrap() >= 1);
    handle.shutdown();
}

/// A stalled client (connects, sends nothing) is bounded by the read
/// timeout and answered 408 — it cannot hold a worker forever.
#[test]
fn stalled_client_is_timed_out() {
    let graph = healthcare_graph(Default::default());
    let config = ServerConfig { read_timeout: Duration::from_millis(150), ..test_config() };
    let handle = GraphServer::start(graph, config).unwrap();
    let addr = handle.addr();
    let stalled = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    // The worker must be free again for real requests.
    let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    drop(stalled);
    handle.shutdown();
}

/// A slow-loris client dripping one byte at a time cannot renew the read
/// clock: `read_timeout` is a total per-request budget, so the lone
/// worker is freed at the deadline and real traffic proceeds while the
/// drip is still going. (With a per-read timeout, each byte would arrive
/// well inside the window and the drip would hold the worker for the
/// whole three seconds, timing out the real query below.)
#[test]
fn slow_loris_drip_cannot_renew_the_read_deadline() {
    let graph = healthcare_graph(Default::default());
    let config = ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(250),
        ..test_config()
    };
    let handle = GraphServer::start(graph, config).unwrap();
    let addr = handle.addr();
    let dripper = std::thread::spawn(move || {
        use std::io::Write;
        let Ok(mut s) = std::net::TcpStream::connect(addr) else { return };
        for b in b"POST /query HTTP/1.1\r\nContent-Length: 4096\r\n\r\n".iter().cycle().take(30) {
            if s.write_all(&[*b]).is_err() {
                break; // the server gave up on us — exactly the point
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
    // Well past the 250ms budget, with the drip still running.
    std::thread::sleep(Duration::from_millis(600));
    let r = http_call(addr, "POST", "/query", "g.V().count()", Duration::from_secs(2)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    dripper.join().unwrap();
    handle.shutdown();
}

/// Full durable round trip over the wire: start a server on a fresh data
/// directory, seed rows over `POST /sql`, query them, kill the server,
/// reopen a second server from the *same* directory, and check that (a)
/// `/query` answers identically from recovered state and (b) `/metrics`
/// reports the recovery (`recovery_replayed_epochs`, `wal_records`).
#[test]
fn server_restart_recovers_from_data_dir() {
    use db2graph::core::config::healthcare_example_json;
    use db2graph::core::OverlayConfig;
    use db2graph::reldb::Database;

    static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "db2graph-restart-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let overlay = OverlayConfig::from_json(healthcare_example_json()).unwrap();
    let query = "g.V().hasLabel('patient').values('name')";
    let run_query = |addr| {
        let r = http_call(addr, "POST", "/query", query, TIMEOUT).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        r.body
    };

    // ---- First life: durable database, schema at open, rows over HTTP.
    let first_body;
    {
        let db = Arc::new(Database::open(&dir).unwrap());
        db.execute_script(
            "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
             CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
             CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR);
             CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR);",
        )
        .unwrap();
        let graph = Db2Graph::open_with_options(db, &overlay, Default::default()).unwrap();
        let config = ServerConfig { sql_endpoint: true, ..test_config() };
        let handle = GraphServer::start(graph, config).unwrap();
        let addr = handle.addr();

        let r = http_call(
            addr,
            "POST",
            "/sql",
            "INSERT INTO Patient VALUES (1, 'Alice', '12 Oak St', 100), (2, 'Bob', '9 Elm St', 101);
             INSERT INTO Disease VALUES (10, 'E11', 'type 2 diabetes');
             INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019'), (2, 10, NULL);
             SELECT COUNT(*) AS n FROM Patient",
            TIMEOUT,
        )
        .unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        let j = Json::parse(&r.body).unwrap();
        let first_row = &j.get("rows").unwrap().as_array().unwrap()[0];
        assert_eq!(first_row.as_array().unwrap()[0].as_u64(), Some(2));

        first_body = run_query(addr);
        let names = Json::parse(&first_body).unwrap();
        assert_eq!(names.get("count").and_then(Json::as_u64), Some(2));

        let r = http_call(addr, "GET", "/metrics", "", TIMEOUT).unwrap();
        let j = Json::parse(&r.body).unwrap();
        let g = j.get("graph").unwrap();
        assert!(g.get("wal_records").and_then(Json::as_u64).unwrap() >= 6, "DDL + inserts logged");
        assert_eq!(g.get("recovery_replayed_epochs").and_then(Json::as_u64), Some(0));

        handle.shutdown(); // drops the server AND the database
    }

    // ---- Second life: same directory, recovered purely from disk.
    {
        let db = Arc::new(Database::open(&dir).unwrap());
        assert!(db.recovery_replayed_epochs() > 0, "WAL had commits to replay");
        let graph = Db2Graph::open_with_options(db, &overlay, Default::default()).unwrap();
        let handle = GraphServer::start(graph, test_config()).unwrap();
        let addr = handle.addr();

        let second_body = run_query(addr);
        assert_eq!(
            Json::parse(&first_body).unwrap(),
            Json::parse(&second_body).unwrap(),
            "recovered server answers /query identically"
        );

        let r = http_call(addr, "GET", "/metrics", "", TIMEOUT).unwrap();
        let j = Json::parse(&r.body).unwrap();
        let g = j.get("graph").unwrap();
        assert!(
            g.get("recovery_replayed_epochs").and_then(Json::as_u64).unwrap() > 0,
            "metrics surface the recovery"
        );
        handle.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Validates the artifacts the `server-smoke` CI job captured with curl,
/// using the repo's own JSON parser. Gated on `DB2GRAPH_SMOKE_DIR`; a
/// plain `cargo test` skips it.
#[test]
fn ci_smoke_artifacts_are_valid() {
    let Ok(dir) = std::env::var("DB2GRAPH_SMOKE_DIR") else { return };
    let read = |name: &str| {
        let path = format!("{dir}/{name}");
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
    };
    let healthz = Json::parse(&read("healthz.json")).expect("healthz is valid JSON");
    assert_eq!(healthz.get("status").and_then(Json::as_str), Some("ok"));

    let query = Json::parse(&read("query.json")).expect("query is valid JSON");
    let names: Vec<&str> = query
        .get("result")
        .and_then(|r| r.as_array())
        .expect("query result array")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(names, ["Alice", "Bob"], "healthcare overlay answered over HTTP");

    // The session leg: the in-session read observed the session's own
    // uncommitted write, and the commit answered affirmatively.
    let session_query =
        Json::parse(&read("session_query.json")).expect("session query is valid JSON");
    let addresses: Vec<&str> = session_query
        .get("result")
        .and_then(|r| r.as_array())
        .expect("session query result array")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert!(
        addresses.contains(&"Session Ave"),
        "in-session read sees the session's write: {addresses:?}"
    );
    let commit = Json::parse(&read("session_commit.json")).expect("commit is valid JSON");
    assert_eq!(commit.get("committed").and_then(Json::as_bool), Some(true));

    let metrics = Json::parse(&read("metrics.json")).expect("metrics is valid JSON");
    let graph = metrics.get("graph").expect("graph metrics section");
    assert!(graph.get("traversals").and_then(Json::as_u64).unwrap() >= 1);
    assert!(graph.get("vacuum_runs").is_some());
    assert!(graph.get("snapshot_horizon").is_some());
    let server = metrics.get("server").expect("server metrics section");
    assert!(server.get("completed").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(server.get("rejected").and_then(Json::as_u64), Some(0));
    // The three --next-chained session requests rode one connection.
    assert!(
        server.get("keepalive_reuses").and_then(Json::as_u64).unwrap() >= 2,
        "curl --next reused its connection"
    );
    assert!(server.get("sessions_committed").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(server.get("sessions_open").and_then(Json::as_u64), Some(0));
}
