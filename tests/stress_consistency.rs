//! Concurrency stress: writer threads commit transactional mutations while
//! reader threads traverse the graph and probe SQL under pinned snapshots.
//! Every single read — graph-level or SQL-level — must observe a conserved
//! invariant, proving that a query never mixes two database states (the
//! multi-statement anachronism this suite guards against).
//!
//! Scale knobs: `DB2GRAPH_STRESS_ROUNDS` (writer iterations per thread,
//! default 200) and `DB2GRAPH_THREADS` (intra-query fan-out width). CI
//! runs this suite in release mode with `DB2GRAPH_THREADS=8`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use db2graph::core::{Db2Graph, ETableConfig, GraphOptions, OverlayConfig, VTableConfig};
use db2graph::gremlin::GValue;
use db2graph::reldb::Database;

fn stress_rounds() -> usize {
    std::env::var("DB2GRAPH_STRESS_ROUNDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(200)
}

fn open_with_threads(
    db: Arc<Database>,
    overlay: &OverlayConfig,
    threads: usize,
) -> Arc<Db2Graph> {
    let options = GraphOptions { threads: Some(threads), ..Default::default() };
    Db2Graph::open_with_options(db, overlay, options).unwrap()
}

// --------------------------------------------------------- value conservation

fn account_overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Account".into(),
            prefixed_id: true,
            id: "'acct'::aid".into(),
            fix_label: true,
            label: "'acct'".into(),
            properties: Some(vec!["balance".into()]),
        }],
        e_tables: vec![],
    }
}

/// N writer threads transfer balance between accounts inside transactions;
/// M reader threads sum all balances through Gremlin traversals at several
/// fan-out widths. Money is conserved: *every* read sums to the initial
/// total, never to a state where one leg of a transfer has landed and the
/// other has not.
#[test]
fn transfers_conserve_the_total_balance_under_concurrent_readers() {
    const ACCOUNTS: i64 = 16;
    const TOTAL: i64 = ACCOUNTS * 100;
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE Account (aid BIGINT PRIMARY KEY, balance BIGINT)").unwrap();
    let rows: Vec<String> = (0..ACCOUNTS).map(|i| format!("({i}, 100)")).collect();
    db.execute(&format!("INSERT INTO Account VALUES {}", rows.join(", "))).unwrap();

    let overlay = account_overlay();
    let graphs: Vec<Arc<Db2Graph>> =
        [1, 2, 8].iter().map(|&t| open_with_threads(db.clone(), &overlay, t)).collect();

    let rounds = stress_rounds();
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..3usize)
            .map(|w| {
                let db = db.clone();
                s.spawn(move || {
                    for r in 0..rounds {
                        let from = (r as i64 + w as i64) % ACCOUNTS;
                        let to = (r as i64 * 7 + w as i64 * 3 + 1) % ACCOUNTS;
                        db.transaction(|db| {
                            db.execute(&format!(
                                "UPDATE Account SET balance = balance - 1 WHERE aid = {from}"
                            ))?;
                            db.execute(&format!(
                                "UPDATE Account SET balance = balance + 1 WHERE aid = {to}"
                            ))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for g in &graphs {
            let g = g.clone();
            let stop = stop.clone();
            let reads = reads.clone();
            s.spawn(move || {
                // Each reader performs at least one full read, then keeps
                // going until the writers finish.
                let mut looked = false;
                while !looked || !stop.load(Ordering::Relaxed) {
                    let sum = g.run("g.V().values('balance').sum()").unwrap();
                    assert_eq!(
                        sum,
                        vec![GValue::Long(TOTAL)],
                        "a read observed a half-applied transfer (threads={})",
                        g.threads()
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                    looked = true;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(reads.load(Ordering::Relaxed) >= 3);
    let sum = graphs[0].run("g.V().values('balance').sum()").unwrap();
    assert_eq!(sum, vec![GValue::Long(TOTAL)]);
}

// ---------------------------------------------------- structure conservation

fn tree_overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Node".into(),
            prefixed_id: true,
            id: "'node'::nid".into(),
            fix_label: true,
            label: "'node'".into(),
            properties: Some(vec!["val".into()]),
        }],
        e_tables: vec![ETableConfig {
            table_name: "Edge".into(),
            src_v_table: Some("Node".into()),
            src_v: "'node'::src".into(),
            dst_v_table: Some("Node".into()),
            dst_v: "'node'::dst".into(),
            prefixed_edge_id: false,
            implicit_edge_id: true,
            id: None,
            fix_label: true,
            label: "'child'".into(),
            properties: None,
        }],
    }
}

/// Writers grow and prune a tree — each commit inserts (node + edge to it)
/// or deletes (edge + node) atomically, so `nodes == edges + 1` holds in
/// every committed state. Readers verify the invariant two ways, both
/// under one pinned snapshot per read:
///
/// * SQL-level: both `COUNT(*)` statements run via
///   [`Database::execute_prepared_at`] against the same [`Snapshot`];
/// * graph-level: `.profile()` of `g.E().inV()` — the endpoint-resolution
///   step must emit exactly one vertex per edge (no dangling endpoints).
#[test]
fn tree_invariant_holds_at_every_snapshot_under_churn() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Node (nid BIGINT PRIMARY KEY, val BIGINT);
         CREATE TABLE Edge (src BIGINT, dst BIGINT,
            FOREIGN KEY (src) REFERENCES Node(nid),
            FOREIGN KEY (dst) REFERENCES Node(nid));
         CREATE INDEX ix_edge_src ON Edge (src);
         CREATE INDEX ix_edge_dst ON Edge (dst);
         INSERT INTO Node VALUES (0, 0), (1, 1), (2, 2);
         INSERT INTO Edge VALUES (0, 1), (0, 2);",
    )
    .unwrap();

    let overlay = tree_overlay();
    let graphs: Vec<Arc<Db2Graph>> =
        [1, 2, 8].iter().map(|&t| open_with_threads(db.clone(), &overlay, t)).collect();

    const WRITERS: usize = 3;
    let rounds = stress_rounds();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Each writer owns a disjoint id range and alternates: attach a
        // leaf under the root, then remove it — always node+edge in one
        // transaction, so every commit preserves nodes == edges + 1.
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = db.clone();
                s.spawn(move || {
                    let base = 1_000 * (w as i64 + 1);
                    for r in 0..rounds {
                        let nid = base + r as i64;
                        db.transaction(|db| {
                            db.execute(&format!("INSERT INTO Node VALUES ({nid}, {r})"))?;
                            db.execute(&format!("INSERT INTO Edge VALUES (0, {nid})"))?;
                            Ok(())
                        })
                        .unwrap();
                        if r % 2 == 0 {
                            db.transaction(|db| {
                                db.execute(&format!("DELETE FROM Edge WHERE dst = {nid}"))?;
                                db.execute(&format!("DELETE FROM Node WHERE nid = {nid}"))?;
                                Ok(())
                            })
                            .unwrap();
                        }
                    }
                })
            })
            .collect();
        // SQL-level readers: one pinned snapshot covers both counts.
        for _ in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let nodes = db.prepare("SELECT COUNT(*) FROM Node").unwrap();
                let edges = db.prepare("SELECT COUNT(*) FROM Edge").unwrap();
                let mut looked = false;
                while !looked || !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot();
                    let n = db
                        .execute_prepared_at(&nodes, &[], &snap)
                        .unwrap()
                        .scalar()
                        .unwrap()
                        .as_i64()
                        .unwrap();
                    let e = db
                        .execute_prepared_at(&edges, &[], &snap)
                        .unwrap()
                        .scalar()
                        .unwrap()
                        .as_i64()
                        .unwrap();
                    assert_eq!(n, e + 1, "snapshot mixed two committed states");
                    looked = true;
                }
            });
        }
        // Graph-level readers: endpoint resolution never dangles.
        for g in &graphs {
            let g = g.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut looked = false;
                while !looked || !stop.load(Ordering::Relaxed) {
                    let (_, report) = g.profile("g.E().hasLabel('child').inV()").unwrap();
                    // inV() profiles as the endpoint-resolution step
                    // `EdgeVertex(In)`.
                    let inv = report
                        .steps
                        .iter()
                        .find(|s| s.description.contains("EdgeVertex"))
                        .expect("inV step profiled");
                    assert_eq!(
                        inv.out_count,
                        inv.in_count,
                        "dangling endpoint: {} edges resolved {} vertices (threads={})",
                        inv.in_count,
                        inv.out_count,
                        g.threads()
                    );
                    looked = true;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesced end state still satisfies the invariant, and versions dead
    // to every snapshot are reclaimable.
    let n = db.execute("SELECT COUNT(*) FROM Node").unwrap().scalar().unwrap().as_i64().unwrap();
    let e = db.execute("SELECT COUNT(*) FROM Edge").unwrap().scalar().unwrap().as_i64().unwrap();
    assert_eq!(n, e + 1);
    db.vacuum();
}

// --------------------------------------------------- adjacency-cache validity

/// Deterministic cached-path variant of the writer-interleaving tests in
/// `tests/parallel_exec.rs`: the adjacency cache is warmed, a traversal
/// pins its snapshot, and a writer commits a new edge *between* the
/// traversal's vertex scan and its adjacency expansion (interleaved via
/// the dialect's statement hook — the vertex scan always reaches SQL even
/// when adjacency is fully cached). The commit advances the cache's
/// per-table watermark past the traversal's snapshot, so the warmed
/// segment must be dropped and the expansion re-probed through SQL at the
/// pinned snapshot: the running query must NOT see the new edge — neither
/// from SQL nor, crucially, from a stale cache segment — while a fresh
/// query must.
#[test]
fn commit_mid_traversal_invalidates_cached_adjacency_without_leaks() {
    for threads in [1usize, 2, 8] {
        let db = Arc::new(Database::new());
        db.execute_script(
            "CREATE TABLE Node (nid BIGINT PRIMARY KEY, val BIGINT);
             CREATE TABLE Edge (src BIGINT, dst BIGINT);
             INSERT INTO Node VALUES (0, 0), (1, 1), (2, 2);
             INSERT INTO Edge VALUES (0, 1), (0, 2);",
        )
        .unwrap();
        let overlay = tree_overlay();
        let g = open_with_threads(db.clone(), &overlay, threads);
        assert!(g.warm_adjacency_cache().unwrap() > 0);

        // Sanity: the warmed cache serves this adjacency without SQL.
        let before = g.metrics();
        assert_eq!(g.run("g.V().out().count()").unwrap(), vec![GValue::Long(2)]);
        assert!(
            g.metrics().adj_cache_hits > before.adj_cache_hits,
            "warmed lookup did not hit the cache (threads={threads})"
        );

        let fired = Arc::new(AtomicBool::new(false));
        let hook_db = db.clone();
        let hook_fired = fired.clone();
        g.dialect().set_statement_hook(Some(Arc::new(move |template: &str| {
            if template.contains("FROM Node") && !hook_fired.swap(true, Ordering::SeqCst) {
                hook_db
                    .transaction(|db| {
                        db.execute("INSERT INTO Node VALUES (99, 99)")?;
                        db.execute("INSERT INTO Edge VALUES (0, 99)")?;
                        Ok(())
                    })
                    .unwrap();
            }
        })));
        let out = g.run("g.V().out().count()").unwrap();
        g.dialect().set_statement_hook(None);
        assert!(fired.load(Ordering::SeqCst), "the writer never ran (threads={threads})");
        assert_eq!(
            out,
            vec![GValue::Long(2)],
            "a post-snapshot edge leaked into a pinned traversal (threads={threads})"
        );
        assert!(
            g.metrics().adj_cache_invalidations >= 1,
            "the commit did not invalidate the warmed segment (threads={threads})"
        );
        // A fresh query pins a snapshot after the commit: it must see the
        // new edge (and may repopulate the cache at the new watermark).
        assert_eq!(g.run("g.V().out().count()").unwrap(), vec![GValue::Long(3)]);
    }
}

fn churn_overlay() -> OverlayConfig {
    let edge = |table: &str, label: &str| ETableConfig {
        table_name: table.into(),
        src_v_table: Some("Node".into()),
        src_v: "'node'::src".into(),
        dst_v_table: Some("Node".into()),
        dst_v: "'node'::dst".into(),
        prefixed_edge_id: false,
        implicit_edge_id: true,
        id: None,
        fix_label: true,
        label: format!("'{label}'"),
        properties: None,
    };
    OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Node".into(),
            prefixed_id: true,
            id: "'node'::nid".into(),
            fix_label: true,
            label: "'node'".into(),
            properties: Some(vec!["val".into()]),
        }],
        e_tables: vec![edge("Stable", "stable"), edge("Churn", "churn")],
    }
}

/// Writer churn against a cached adjacency: two edge tables hang off one
/// vertex table — `Stable` is never written (so its warmed segment stays
/// valid and every read of it must be a cache hit) and `Churn` takes a
/// stream of transactional edge-pair inserts/deletes (so its segments are
/// invalidated over and over). Readers at several fan-out widths assert
/// two conserved invariants on every single read:
///
/// * the stable out-degree of the root is always exactly 4;
/// * the churned out-degree is always even, because writers only ever
///   commit edge *pairs* atomically — an odd count means a lookup mixed a
///   cache segment from one committed state with SQL from another.
///
/// This is the workload behind the `adjcache-stress` CI job; set
/// `DB2GRAPH_METRICS_SNAPSHOT_PATH` to export the 8-thread graph's final
/// metrics snapshot as a JSON artifact.
#[test]
fn cached_adjacency_stays_consistent_under_writer_churn() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Node (nid BIGINT PRIMARY KEY, val BIGINT);
         CREATE TABLE Stable (src BIGINT, dst BIGINT);
         CREATE TABLE Churn (src BIGINT, dst BIGINT, tag BIGINT);
         INSERT INTO Node VALUES (0, 0), (1, 1), (2, 2), (3, 3), (4, 4);
         INSERT INTO Stable VALUES (0, 1), (0, 2), (0, 3), (0, 4);",
    )
    .unwrap();

    let overlay = churn_overlay();
    let graphs: Vec<Arc<Db2Graph>> =
        [1, 2, 8].iter().map(|&t| open_with_threads(db.clone(), &overlay, t)).collect();
    for g in &graphs {
        // Warm both edge tables (Churn warms to a complete-but-empty
        // segment), so the very first post-commit read must invalidate.
        assert!(g.warm_adjacency_cache().unwrap() > 0);
    }

    let count_of = |g: &Db2Graph, q: &str| -> i64 {
        match g.run(q).unwrap()[..] {
            [GValue::Long(n)] => n,
            ref v => panic!("expected a single count, got {v:?}"),
        }
    };

    const WRITERS: usize = 3;
    let rounds = stress_rounds();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Each commit inserts or deletes a *pair* of churn edges, so the
        // root's churned out-degree is even in every committed state.
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = db.clone();
                s.spawn(move || {
                    for r in 0..rounds {
                        let tag = 1_000_000 * (w as i64 + 1) + r as i64;
                        db.transaction(|db| {
                            db.execute(&format!(
                                "INSERT INTO Churn VALUES (0, 1, {tag}), (0, 2, {tag})"
                            ))?;
                            Ok(())
                        })
                        .unwrap();
                        if r % 2 == 0 {
                            db.transaction(|db| {
                                db.execute(&format!("DELETE FROM Churn WHERE tag = {tag}"))?;
                                Ok(())
                            })
                            .unwrap();
                        }
                    }
                })
            })
            .collect();
        for g in &graphs {
            let g = g.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut looked = false;
                while !looked || !stop.load(Ordering::Relaxed) {
                    let stable = count_of(&g, "g.V().out('stable').count()");
                    assert_eq!(
                        stable,
                        4,
                        "the never-written table changed under a reader (threads={})",
                        g.threads()
                    );
                    let churn = count_of(&g, "g.V().out('churn').count()");
                    assert_eq!(
                        churn % 2,
                        0,
                        "a read mixed two committed states: odd churn degree {churn} \
                         (threads={})",
                        g.threads()
                    );
                    looked = true;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    for g in &graphs {
        // One quiesced read per graph: if no reader happened to probe the
        // churn table after the last commit, this read finds the stale
        // segment and invalidates it now.
        let churn = count_of(g, "g.V().out('churn').count()");
        assert_eq!(churn % 2, 0);
        assert_eq!(count_of(g, "g.V().out('stable').count()"), 4);
        let m = g.metrics();
        assert!(m.adj_cache_hits > 0, "no cache hits under churn (threads={})", g.threads());
        assert!(
            m.adj_cache_invalidations >= 1,
            "writer churn never invalidated a segment (threads={})",
            g.threads()
        );
        assert!(m.adj_cache_bytes > 0, "cache empty after churn (threads={})", g.threads());
    }
    if let Ok(path) = std::env::var("DB2GRAPH_METRICS_SNAPSHOT_PATH") {
        let snap = graphs[2].metrics().to_json().to_string();
        std::fs::write(&path, snap).unwrap();
    }
}
