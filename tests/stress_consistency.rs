//! Concurrency stress: writer threads commit transactional mutations while
//! reader threads traverse the graph and probe SQL under pinned snapshots.
//! Every single read — graph-level or SQL-level — must observe a conserved
//! invariant, proving that a query never mixes two database states (the
//! multi-statement anachronism this suite guards against).
//!
//! Scale knobs: `DB2GRAPH_STRESS_ROUNDS` (writer iterations per thread,
//! default 200) and `DB2GRAPH_THREADS` (intra-query fan-out width). CI
//! runs this suite in release mode with `DB2GRAPH_THREADS=8`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use db2graph::core::{Db2Graph, ETableConfig, GraphOptions, OverlayConfig, VTableConfig};
use db2graph::gremlin::GValue;
use db2graph::reldb::Database;

fn stress_rounds() -> usize {
    std::env::var("DB2GRAPH_STRESS_ROUNDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(200)
}

fn open_with_threads(
    db: Arc<Database>,
    overlay: &OverlayConfig,
    threads: usize,
) -> Arc<Db2Graph> {
    let options = GraphOptions { threads: Some(threads), ..Default::default() };
    Db2Graph::open_with_options(db, overlay, options).unwrap()
}

// --------------------------------------------------------- value conservation

fn account_overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Account".into(),
            prefixed_id: true,
            id: "'acct'::aid".into(),
            fix_label: true,
            label: "'acct'".into(),
            properties: Some(vec!["balance".into()]),
        }],
        e_tables: vec![],
    }
}

/// N writer threads transfer balance between accounts inside transactions;
/// M reader threads sum all balances through Gremlin traversals at several
/// fan-out widths. Money is conserved: *every* read sums to the initial
/// total, never to a state where one leg of a transfer has landed and the
/// other has not.
#[test]
fn transfers_conserve_the_total_balance_under_concurrent_readers() {
    const ACCOUNTS: i64 = 16;
    const TOTAL: i64 = ACCOUNTS * 100;
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE Account (aid BIGINT PRIMARY KEY, balance BIGINT)").unwrap();
    let rows: Vec<String> = (0..ACCOUNTS).map(|i| format!("({i}, 100)")).collect();
    db.execute(&format!("INSERT INTO Account VALUES {}", rows.join(", "))).unwrap();

    let overlay = account_overlay();
    let graphs: Vec<Arc<Db2Graph>> =
        [1, 2, 8].iter().map(|&t| open_with_threads(db.clone(), &overlay, t)).collect();

    let rounds = stress_rounds();
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..3usize)
            .map(|w| {
                let db = db.clone();
                s.spawn(move || {
                    for r in 0..rounds {
                        let from = (r as i64 + w as i64) % ACCOUNTS;
                        let to = (r as i64 * 7 + w as i64 * 3 + 1) % ACCOUNTS;
                        db.transaction(|db| {
                            db.execute(&format!(
                                "UPDATE Account SET balance = balance - 1 WHERE aid = {from}"
                            ))?;
                            db.execute(&format!(
                                "UPDATE Account SET balance = balance + 1 WHERE aid = {to}"
                            ))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for g in &graphs {
            let g = g.clone();
            let stop = stop.clone();
            let reads = reads.clone();
            s.spawn(move || {
                // Each reader performs at least one full read, then keeps
                // going until the writers finish.
                let mut looked = false;
                while !looked || !stop.load(Ordering::Relaxed) {
                    let sum = g.run("g.V().values('balance').sum()").unwrap();
                    assert_eq!(
                        sum,
                        vec![GValue::Long(TOTAL)],
                        "a read observed a half-applied transfer (threads={})",
                        g.threads()
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                    looked = true;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(reads.load(Ordering::Relaxed) >= 3);
    let sum = graphs[0].run("g.V().values('balance').sum()").unwrap();
    assert_eq!(sum, vec![GValue::Long(TOTAL)]);
}

// ---------------------------------------------------- structure conservation

fn tree_overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Node".into(),
            prefixed_id: true,
            id: "'node'::nid".into(),
            fix_label: true,
            label: "'node'".into(),
            properties: Some(vec!["val".into()]),
        }],
        e_tables: vec![ETableConfig {
            table_name: "Edge".into(),
            src_v_table: Some("Node".into()),
            src_v: "'node'::src".into(),
            dst_v_table: Some("Node".into()),
            dst_v: "'node'::dst".into(),
            prefixed_edge_id: false,
            implicit_edge_id: true,
            id: None,
            fix_label: true,
            label: "'child'".into(),
            properties: None,
        }],
    }
}

/// Writers grow and prune a tree — each commit inserts (node + edge to it)
/// or deletes (edge + node) atomically, so `nodes == edges + 1` holds in
/// every committed state. Readers verify the invariant two ways, both
/// under one pinned snapshot per read:
///
/// * SQL-level: both `COUNT(*)` statements run via
///   [`Database::execute_prepared_at`] against the same [`Snapshot`];
/// * graph-level: `.profile()` of `g.E().inV()` — the endpoint-resolution
///   step must emit exactly one vertex per edge (no dangling endpoints).
#[test]
fn tree_invariant_holds_at_every_snapshot_under_churn() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Node (nid BIGINT PRIMARY KEY, val BIGINT);
         CREATE TABLE Edge (src BIGINT, dst BIGINT,
            FOREIGN KEY (src) REFERENCES Node(nid),
            FOREIGN KEY (dst) REFERENCES Node(nid));
         CREATE INDEX ix_edge_src ON Edge (src);
         CREATE INDEX ix_edge_dst ON Edge (dst);
         INSERT INTO Node VALUES (0, 0), (1, 1), (2, 2);
         INSERT INTO Edge VALUES (0, 1), (0, 2);",
    )
    .unwrap();

    let overlay = tree_overlay();
    let graphs: Vec<Arc<Db2Graph>> =
        [1, 2, 8].iter().map(|&t| open_with_threads(db.clone(), &overlay, t)).collect();

    const WRITERS: usize = 3;
    let rounds = stress_rounds();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Each writer owns a disjoint id range and alternates: attach a
        // leaf under the root, then remove it — always node+edge in one
        // transaction, so every commit preserves nodes == edges + 1.
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = db.clone();
                s.spawn(move || {
                    let base = 1_000 * (w as i64 + 1);
                    for r in 0..rounds {
                        let nid = base + r as i64;
                        db.transaction(|db| {
                            db.execute(&format!("INSERT INTO Node VALUES ({nid}, {r})"))?;
                            db.execute(&format!("INSERT INTO Edge VALUES (0, {nid})"))?;
                            Ok(())
                        })
                        .unwrap();
                        if r % 2 == 0 {
                            db.transaction(|db| {
                                db.execute(&format!("DELETE FROM Edge WHERE dst = {nid}"))?;
                                db.execute(&format!("DELETE FROM Node WHERE nid = {nid}"))?;
                                Ok(())
                            })
                            .unwrap();
                        }
                    }
                })
            })
            .collect();
        // SQL-level readers: one pinned snapshot covers both counts.
        for _ in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let nodes = db.prepare("SELECT COUNT(*) FROM Node").unwrap();
                let edges = db.prepare("SELECT COUNT(*) FROM Edge").unwrap();
                let mut looked = false;
                while !looked || !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot();
                    let n = db
                        .execute_prepared_at(&nodes, &[], &snap)
                        .unwrap()
                        .scalar()
                        .unwrap()
                        .as_i64()
                        .unwrap();
                    let e = db
                        .execute_prepared_at(&edges, &[], &snap)
                        .unwrap()
                        .scalar()
                        .unwrap()
                        .as_i64()
                        .unwrap();
                    assert_eq!(n, e + 1, "snapshot mixed two committed states");
                    looked = true;
                }
            });
        }
        // Graph-level readers: endpoint resolution never dangles.
        for g in &graphs {
            let g = g.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut looked = false;
                while !looked || !stop.load(Ordering::Relaxed) {
                    let (_, report) = g.profile("g.E().hasLabel('child').inV()").unwrap();
                    // inV() profiles as the endpoint-resolution step
                    // `EdgeVertex(In)`.
                    let inv = report
                        .steps
                        .iter()
                        .find(|s| s.description.contains("EdgeVertex"))
                        .expect("inV step profiled");
                    assert_eq!(
                        inv.out_count,
                        inv.in_count,
                        "dangling endpoint: {} edges resolved {} vertices (threads={})",
                        inv.in_count,
                        inv.out_count,
                        g.threads()
                    );
                    looked = true;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesced end state still satisfies the invariant, and versions dead
    // to every snapshot are reclaimable.
    let n = db.execute("SELECT COUNT(*) FROM Node").unwrap().scalar().unwrap().as_i64().unwrap();
    let e = db.execute("SELECT COUNT(*) FROM Edge").unwrap().scalar().unwrap().as_i64().unwrap();
    assert_eq!(n, e + 1);
    db.vacuum();
}
