//! Crash-injection recovery tests for the durable reldb layer.
//!
//! The balance-transfer workload from `stress_consistency` is the oracle:
//! every transfer moves 1 between two accounts inside one transaction, so
//! the total is invariant under *whole* transactions and broken by any
//! half-replayed one. We kill the durability layer at every enumerated
//! [`CrashPoint`], reopen from disk, and require that recovery (a) lands
//! exactly on a published commit-epoch boundary, (b) conserves the total,
//! and (c) leaves a fully writable database. A torn or corrupt WAL tail
//! must be truncated — never replayed, never a panic.
//!
//! On an invariant failure the recovered state is dumped to
//! `DB2GRAPH_RECOVERY_DIFF_DIR` (when set) so the CI job can upload it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use db2graph::reldb::{CrashPoint, Database, Durability, Value};
use proptest::{proptest, ProptestConfig, TestRng};

const ACCOUNTS: u64 = 16;
const INIT: i64 = 100;
const TOTAL: i64 = ACCOUNTS as i64 * INIT;

static DIRS: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "db2graph-recovery-{tag}-{}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic per-scenario randomness (no external seeds).
struct Lcg(u64);

impl Lcg {
    fn below(&mut self, n: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % n
    }
}

/// One multi-row INSERT = one commit epoch, so any recovered prefix that
/// contains the seed at all contains every account.
fn seed_accounts(db: &Database) {
    db.execute("CREATE TABLE Account (aid BIGINT PRIMARY KEY, balance BIGINT)").unwrap();
    let rows: Vec<String> = (0..ACCOUNTS).map(|a| format!("({a}, {INIT})")).collect();
    db.execute(&format!("INSERT INTO Account VALUES {}", rows.join(", "))).unwrap();
}

fn transfer(db: &Database, from: u64, to: u64) -> db2graph::reldb::DbResult<()> {
    db.transaction(|db| {
        db.execute(&format!("UPDATE Account SET balance = balance - 1 WHERE aid = {from}"))?;
        db.execute(&format!("UPDATE Account SET balance = balance + 1 WHERE aid = {to}"))?;
        Ok(())
    })
}

fn total_balance(db: &Database) -> Option<i64> {
    let rs = db.execute("SELECT SUM(balance) FROM Account").ok()?;
    match rs.scalar() {
        Some(Value::Bigint(n)) => Some(*n),
        _ => None,
    }
}

fn account_rows(db: &Database) -> String {
    match db.execute("SELECT aid, balance FROM Account ORDER BY aid") {
        Ok(rs) => rs
            .rows
            .iter()
            .map(|r| format!("{:?}\n", r))
            .collect(),
        Err(e) => format!("<query failed: {e}>\n"),
    }
}

/// Dump the recovered state for CI artifact upload, then fail the test.
fn fail_with_diff(label: &str, db: &Database, detail: String) -> ! {
    if let Ok(dir) = std::env::var("DB2GRAPH_RECOVERY_DIFF_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let body = format!(
            "scenario: {label}\n{detail}\nexpected total: {TOTAL}\n\
             commit_epoch: {}\nlast_checkpoint_epoch: {}\nreplayed: {}\ntruncated: {}\n\
             recovered accounts (aid, balance):\n{}",
            db.commit_epoch(),
            db.last_checkpoint_epoch(),
            db.recovery_replayed_epochs(),
            db.recovery_truncated_bytes(),
            account_rows(db),
        );
        let _ = std::fs::write(format!("{dir}/{label}.diff.txt"), body);
    }
    panic!("{label}: {detail}");
}

/// Run the serial transfer workload with a checkpoint every 8 transfers,
/// dying at the `target`-th occurrence of `point`. Returns what the
/// survivor knew at the moment of death.
fn run_until_crash(db: &Arc<Database>, point: CrashPoint, target: usize) -> (bool, u64, u64) {
    let fired = Arc::new(AtomicUsize::new(0));
    {
        let fired = fired.clone();
        db.set_crash_hook(Some(Arc::new(move |p| {
            p == point && fired.fetch_add(1, Ordering::Relaxed) + 1 == target
        })));
    }
    let mut rng = Lcg(point as u64 * 1013 + target as u64);
    let mut crashed = false;
    for round in 0..48u64 {
        let from = rng.below(ACCOUNTS);
        let to = (from + 1 + rng.below(ACCOUNTS - 1)) % ACCOUNTS;
        if transfer(db, from, to).is_err() {
            crashed = true;
            break;
        }
        if round % 8 == 7 && db.checkpoint().is_err() {
            crashed = true;
            break;
        }
    }
    db.set_crash_hook(None);
    (crashed, db.commit_epoch(), db.last_checkpoint_epoch())
}

fn check_recovered(label: &str, dir: &Path, published: u64, checkpointed: u64) {
    let db = Database::open(dir).unwrap_or_else(|e| panic!("{label}: reopen failed: {e}"));
    let recovered = db.commit_epoch();
    // Recovery lands exactly on a published epoch: everything the crashed
    // process published, plus at most the one commit whose WAL record was
    // durable before the in-memory publication failed.
    if recovered != published && recovered != published + 1 {
        fail_with_diff(label, &db, format!("recovered epoch {recovered}, published {published}"));
    }
    if recovered < checkpointed {
        fail_with_diff(
            label,
            &db,
            format!("recovered epoch {recovered} behind checkpoint {checkpointed}"),
        );
    }
    match total_balance(&db) {
        Some(t) if t == TOTAL => {}
        got => fail_with_diff(label, &db, format!("total balance {got:?}")),
    }
    // The recovered database must be fully live: writes, checkpoints, and
    // another clean reopen all work.
    transfer(&db, 0, 1).unwrap_or_else(|e| panic!("{label}: post-recovery write failed: {e}"));
    db.checkpoint().unwrap_or_else(|e| panic!("{label}: post-recovery checkpoint failed: {e}"));
    assert_eq!(total_balance(&db), Some(TOTAL), "{label}: post-recovery transfer conserved");
}

/// The tentpole matrix: for every enumerable crash point, at an early and
/// a later occurrence, the crashed directory recovers to a consistent,
/// whole-transaction state.
#[test]
fn crash_point_matrix_conserves_balances() {
    for &point in CrashPoint::ALL.iter() {
        for target in [1usize, 4] {
            let label = format!("{point:?}-{target}");
            let dir = temp_dir("matrix");
            let db = Arc::new(Database::open(&dir).unwrap());
            seed_accounts(&db);
            let (crashed, published, checkpointed) = run_until_crash(&db, point, target);
            if target == 1 {
                assert!(crashed, "{label}: the crash point never fired");
            }
            if crashed && point == CrashPoint::WalTorn {
                // The torn half-frame is on disk; recovery must cut it.
                let db2 = Database::open(&dir).unwrap();
                assert!(db2.recovery_truncated_bytes() > 0, "{label}: no tail truncated");
                drop(db2);
            }
            drop(db);
            check_recovered(&label, &dir, published, checkpointed);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Three concurrent writers racing transfers when the WAL dies mid-flight:
/// whatever interleaving reached the log, recovery is a whole-transaction
/// prefix and the total is conserved.
#[test]
fn concurrent_writers_crash_recovers_conserved() {
    let dir = temp_dir("writers");
    let db = Arc::new(Database::open(&dir).unwrap());
    seed_accounts(&db);
    let fired = Arc::new(AtomicUsize::new(0));
    {
        let fired = fired.clone();
        db.set_crash_hook(Some(Arc::new(move |p| {
            p == CrashPoint::WalSynced && fired.fetch_add(1, Ordering::Relaxed) + 1 == 23
        })));
    }
    let workers: Vec<_> = (0..3u64)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut rng = Lcg(w + 1);
                for _ in 0..40 {
                    let from = rng.below(ACCOUNTS);
                    let to = (from + 1 + rng.below(ACCOUNTS - 1)) % ACCOUNTS;
                    if transfer(&db, from, to).is_err() {
                        break; // the process "died"; this thread is gone
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    db.set_crash_hook(None);
    let published = db.commit_epoch();
    drop(db);
    check_recovered("concurrent-writers", &dir, published, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: vacuum must not reclaim versions a running
/// checkpoint still needs. The hook runs a superseding commit plus an
/// explicit vacuum *between* the checkpoint's epoch capture and its table
/// serialization (the `CheckpointBegin` gate is lock-free by design);
/// without the checkpoint floor the captured image would lose the row.
#[test]
fn vacuum_respects_running_checkpoint_horizon() {
    let dir = temp_dir("floor");
    let db = Arc::new(Database::open(&dir).unwrap());
    db.execute("CREATE TABLE T (k BIGINT PRIMARY KEY, v BIGINT)").unwrap();
    db.execute("INSERT INTO T VALUES (1, 10)").unwrap();
    {
        let db2 = db.clone();
        db.set_crash_hook(Some(Arc::new(move |p| {
            if p == CrashPoint::CheckpointBegin {
                db2.execute("UPDATE T SET v = 20 WHERE k = 1").unwrap();
                db2.vacuum(); // must be clamped by the checkpoint floor
            }
            false // never crash — this hook only races the checkpoint
        })));
    }
    let ckpt_epoch = db.checkpoint().unwrap();
    db.set_crash_hook(None);
    // With the checkpoint done the floor is lifted: the superseded v=10
    // version is reclaimable now (and only now).
    assert!(db.vacuum() >= 1, "floor lifted after checkpoint");

    // Recover from the checkpoint image *alone* (no WAL): it must contain
    // the row as of its capture epoch — v = 10, the version vacuum was
    // racing to reclaim.
    let dir2 = temp_dir("floor-image");
    std::fs::create_dir_all(&dir2).unwrap();
    std::fs::copy(dir.join("checkpoint.bin"), dir2.join("checkpoint.bin")).unwrap();
    let from_image = Database::open(&dir2).unwrap();
    assert_eq!(from_image.commit_epoch(), ckpt_epoch);
    let rs = from_image.execute("SELECT v FROM T WHERE k = 1").unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&Value::Bigint(10)),
        "checkpoint serialized the version visible at its capture epoch"
    );

    // The full directory (checkpoint + WAL) recovers the later commit.
    drop(db);
    let full = Database::open(&dir).unwrap();
    let rs = full.execute("SELECT v FROM T WHERE k = 1").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bigint(20)));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// Byte offsets of every complete frame in a WAL image (after the
/// 16-byte header) — a tiny re-implementation of the scanner, used to
/// locate the final record for exhaustive truncation.
fn frame_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut off = 16usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if bytes.len() - off - 8 < len {
            break;
        }
        offs.push(off);
        off += 8 + len;
    }
    offs
}

/// Build a reference directory (WAL only, no checkpoint): seed + 8
/// transfers. Returns (final epoch, wal bytes).
fn reference_wal(dir: &Path) -> (u64, Vec<u8>) {
    let db = Database::open(dir).unwrap();
    seed_accounts(&db);
    let mut rng = Lcg(99);
    for _ in 0..8 {
        let from = rng.below(ACCOUNTS);
        let to = (from + 1 + rng.below(ACCOUNTS - 1)) % ACCOUNTS;
        transfer(&db, from, to).unwrap();
    }
    let epoch = db.commit_epoch();
    drop(db);
    let bytes = std::fs::read(dir.join("wal.log")).unwrap();
    (epoch, bytes)
}

fn open_wal_image(tag: &str, bytes: &[u8]) -> Database {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal.log"), bytes).unwrap();
    let db = Database::open(&dir).unwrap_or_else(|e| panic!("{tag}: open failed: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
    db
}

/// Truncate the WAL at *every* byte offset of its final record: recovery
/// must never panic, must drop exactly that record (the longest valid
/// prefix survives), and must conserve the total.
#[test]
fn torn_tail_truncation_is_exhaustive() {
    let refdir = temp_dir("torn-ref");
    let (full_epoch, bytes) = reference_wal(&refdir);
    let _ = std::fs::remove_dir_all(&refdir);
    let last = *frame_offsets(&bytes).last().unwrap();
    for cut in last..bytes.len() {
        let db = open_wal_image("torn-cut", &bytes[..cut]);
        assert_eq!(
            db.commit_epoch(),
            full_epoch - 1,
            "cut at {cut}: exactly the final record is dropped"
        );
        assert_eq!(total_balance(&db), Some(TOTAL), "cut at {cut}");
        assert!(db.recovery_truncated_bytes() > 0 || cut == last, "cut at {cut}");
    }
    // The untouched image recovers everything.
    let db = open_wal_image("torn-full", &bytes);
    assert_eq!(db.commit_epoch(), full_epoch);
    assert_eq!(total_balance(&db), Some(TOTAL));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Flip any single bit anywhere in the WAL image (header included):
    /// `Database::open` must never panic, and the recovered state is a
    /// whole-commit prefix — the seed either fully present (16 accounts,
    /// conserved total) or fully absent.
    #[test]
    fn wal_bitflips_never_panic_or_tear(seed in 0u64..u64::MAX) {
        let refdir = temp_dir("flip-ref");
        let (full_epoch, bytes) = reference_wal(&refdir);
        let _ = std::fs::remove_dir_all(&refdir);
        let mut rng = TestRng::from_seed(seed);
        let mut mutated = bytes.clone();
        let byte = rng.below(mutated.len());
        let bit = rng.below(8) as u32;
        mutated[byte] ^= 1u8 << bit;
        let db = open_wal_image("flip", &mutated);
        assert!(db.commit_epoch() <= full_epoch);
        let rows = db
            .execute("SELECT COUNT(*) FROM Account")
            .map(|rs| match rs.scalar() {
                Some(Value::Bigint(n)) => *n,
                _ => 0,
            })
            .unwrap_or(0);
        assert!(rows == 0 || rows == ACCOUNTS as i64, "partial seed after flip at byte {byte}");
        if rows == ACCOUNTS as i64 {
            assert_eq!(total_balance(&db), Some(TOTAL), "flip at byte {byte} bit {bit}");
        }
    }
}

/// `Batch` mode: the fsync cadence is relaxed but the written prefix is
/// still valid — reopen replays every whole commit.
#[test]
fn batch_mode_reopens_cleanly() {
    let dir = temp_dir("batch");
    let db = Database::open_with(&dir, Durability::Batch).unwrap();
    seed_accounts(&db);
    for i in 0..10 {
        transfer(&db, i % ACCOUNTS, (i + 1) % ACCOUNTS).unwrap();
    }
    db.sync_wal().unwrap();
    let published = db.commit_epoch();
    drop(db);
    let db = Database::open_with(&dir, Durability::Batch).unwrap();
    assert_eq!(db.commit_epoch(), published);
    assert_eq!(total_balance(&db), Some(TOTAL));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `Batch` durability contract, made exact: the WAL fsyncs every
/// 32nd append, so a crash can lose at most the 31 commits after the
/// last fsync — never more, and never half of one. We drive the record
/// count to the worst case (31 appends past a sync boundary), simulate
/// losing the OS page cache by truncating a copy of the WAL to the
/// fsynced prefix (`wal_synced_bytes`), and reopen.
#[test]
fn batch_mode_loses_at_most_thirty_one_commits() {
    let dir = temp_dir("batch-contract");
    let db = Database::open_with(&dir, Durability::Batch).unwrap();
    seed_accounts(&db);
    let mut rng = Lcg(7);
    // Seed writes 2 records (DDL + insert); 125 transfers land the log at
    // 127 records with the last fsync at 96 — 31 unsynced commits.
    for _ in 0..125 {
        let from = rng.below(ACCOUNTS);
        let to = (from + 1 + rng.below(ACCOUNTS - 1)) % ACCOUNTS;
        transfer(&db, from, to).unwrap();
    }
    let published = db.commit_epoch();
    let synced = db.wal_synced_bytes() as usize;
    let full = std::fs::read(dir.join("wal.log")).unwrap();
    assert!(synced <= full.len(), "synced prefix within the file");
    drop(db);

    let db = open_wal_image("batch-contract-img", &full[..synced]);
    let recovered = db.commit_epoch();
    let lost = published - recovered;
    assert!(lost > 0, "worst case actually exercises unsynced commits");
    assert!(lost <= 31, "batch mode lost {lost} commits; the contract is at most 31");
    assert_eq!(total_balance(&db), Some(TOTAL), "every surviving commit is whole");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Off` mode: no WAL — checkpoints are the only durable state. Work
/// after the last checkpoint is (by contract) lost; the recovered state
/// is exactly the checkpoint, still whole and conserved.
#[test]
fn off_mode_recovers_to_last_checkpoint() {
    let dir = temp_dir("off");
    let db = Database::open_with(&dir, Durability::Off).unwrap();
    seed_accounts(&db);
    transfer(&db, 0, 1).unwrap();
    let ckpt = db.checkpoint().unwrap();
    transfer(&db, 2, 3).unwrap(); // after the checkpoint: not durable
    drop(db);
    let db = Database::open_with(&dir, Durability::Off).unwrap();
    assert_eq!(db.commit_epoch(), ckpt, "recovered exactly to the checkpoint");
    assert_eq!(total_balance(&db), Some(TOTAL));
    assert_eq!(db.recovery_replayed_epochs(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a checkpoint taken while running in `Off` mode must cut
/// the WAL records an earlier (logging) run left behind. Without the
/// rotation the image would record `wal_seq = 0` and the next open would
/// replay the stale records — carrying older epochs — on top of the newer
/// image, silently reverting checkpointed commits.
#[test]
fn off_mode_checkpoint_cuts_stale_wal_from_earlier_run() {
    let dir = temp_dir("off-stale-wal");

    // First life logs under `Always`: the WAL holds the seed + transfers.
    let db = Database::open(&dir).unwrap();
    seed_accounts(&db);
    transfer(&db, 0, 1).unwrap();
    transfer(&db, 1, 2).unwrap();
    drop(db);

    // Second life downgrades to `Off`, commits more (unlogged) work, and
    // checkpoints: the image now supersedes everything in the old WAL.
    let db = Database::open_with(&dir, Durability::Off).unwrap();
    assert_eq!(total_balance(&db), Some(TOTAL), "old WAL replayed on downgrade");
    transfer(&db, 3, 4).unwrap();
    let ckpt = db.checkpoint().unwrap();
    drop(db);

    // Third life must recover the image verbatim — zero stale replays.
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.commit_epoch(), ckpt, "stale WAL records replayed over the image");
    assert_eq!(db.recovery_replayed_epochs(), 0);
    assert_eq!(total_balance(&db), Some(TOTAL));
    // And the recovered database logs + recovers normally from here on.
    transfer(&db, 5, 6).unwrap();
    let published = db.commit_epoch();
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.commit_epoch(), published);
    assert_eq!(total_balance(&db), Some(TOTAL));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a user index whose name collides with the auto-generated
/// `pk_*`/`uq_*_<n>` scheme is still checkpointed — provenance is a flag
/// on the index, not a name pattern. `Account` has no UNIQUE columns, so
/// `uq_account_0` is exactly the name the old filter silently dropped.
#[test]
fn user_index_with_auto_like_name_survives_checkpoint() {
    let dir = temp_dir("ixname");
    let db = Database::open(&dir).unwrap();
    seed_accounts(&db);
    db.execute("CREATE INDEX uq_account_0 ON Account (balance)").unwrap();
    db.checkpoint().unwrap(); // rotates the CREATE INDEX out of the WAL
    drop(db);
    let db = Database::open(&dir).unwrap();
    db.execute("DROP INDEX uq_account_0")
        .expect("user index survived the checkpoint despite its auto-like name");
    // The schema-implied PK index is not a user index: never persisted as
    // one, always rebuilt, never droppable.
    assert!(db.execute("DROP INDEX pk_account").is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// DDL (tables, secondary indexes, views) round-trips through WAL replay
/// and checkpoint images alike, and the durability counters tell the
/// recovery's story.
#[test]
fn ddl_and_counters_survive_recovery() {
    let dir = temp_dir("ddl");
    let db = Database::open(&dir).unwrap();
    seed_accounts(&db);
    db.execute("CREATE INDEX ix_balance ON Account (balance)").unwrap();
    db.execute("CREATE VIEW Rich AS SELECT aid FROM Account WHERE balance > 100").unwrap();
    transfer(&db, 3, 4).unwrap();
    db.checkpoint().unwrap();
    transfer(&db, 5, 6).unwrap(); // exactly one commit past the checkpoint
    let published = db.commit_epoch();
    assert!(db.wal_records() >= 4);
    assert!(db.wal_bytes() > 0);
    assert_eq!(db.checkpoints(), 1);
    drop(db);

    let db = Database::open(&dir).unwrap();
    assert_eq!(db.commit_epoch(), published);
    assert_eq!(db.recovery_replayed_epochs(), 1, "one commit replayed past the checkpoint");
    // The secondary index answers (and is actually used for) a probe.
    let rs = db.execute("SELECT COUNT(*) FROM Account WHERE balance = 101").unwrap();
    assert!(matches!(rs.scalar(), Some(Value::Bigint(n)) if *n >= 1));
    // The view survived — through the checkpoint's rendered SQL.
    let rs = db.execute("SELECT COUNT(*) FROM Rich").unwrap();
    assert!(matches!(rs.scalar(), Some(Value::Bigint(n)) if *n >= 1));
    assert_eq!(total_balance(&db), Some(TOTAL));
    let _ = std::fs::remove_dir_all(&dir);
}
