//! Edge-case and failure-injection tests across the stack: empty results,
//! unicode, NULL handling, limits, runaway repeats, DDL-under-workload, and
//! concurrent readers/writers against the overlay.

use std::sync::Arc;

use db2graph::core::{Db2Graph, ETableConfig, OverlayConfig, VTableConfig};
use db2graph::gremlin::{GValue, GremlinError};
use db2graph::reldb::{Database, DbError, Value};

fn tiny_overlay(db: &Arc<Database>) -> Arc<Db2Graph> {
    db.execute_script(
        "CREATE TABLE N (id BIGINT PRIMARY KEY, tag VARCHAR, score DOUBLE);
         CREATE TABLE L (a BIGINT, b BIGINT, kind VARCHAR,
            FOREIGN KEY (a) REFERENCES N(id), FOREIGN KEY (b) REFERENCES N(id));
         CREATE INDEX ix_l_a ON L (a);
         CREATE INDEX ix_l_b ON L (b);",
    )
    .unwrap();
    Db2Graph::open(
        db.clone(),
        &OverlayConfig {
            v_tables: vec![VTableConfig {
                table_name: "N".into(),
                prefixed_id: false,
                id: "id".into(),
                fix_label: true,
                label: "'n'".into(),
                properties: Some(vec!["tag".into(), "score".into()]),
            }],
            e_tables: vec![ETableConfig {
                table_name: "L".into(),
                src_v_table: Some("N".into()),
                src_v: "a".into(),
                dst_v_table: Some("N".into()),
                dst_v: "b".into(),
                prefixed_edge_id: false,
                implicit_edge_id: true,
                id: None,
                fix_label: true,
                label: "'l'".into(),
                properties: Some(vec!["kind".into()]),
            }],
        },
    )
    .unwrap()
}

#[test]
fn empty_graph_queries_are_empty_not_errors() {
    let db = Arc::new(Database::new());
    let g = tiny_overlay(&db);
    assert_eq!(g.run("g.V().count()").unwrap(), vec![GValue::Long(0)]);
    assert_eq!(g.run("g.E().count()").unwrap(), vec![GValue::Long(0)]);
    assert!(g.run("g.V().values('tag')").unwrap().is_empty());
    assert!(g.run("g.V().values('score').sum()").unwrap().is_empty());
    assert!(g.run("g.V(1).out('l')").unwrap().is_empty());
    assert!(g.run("g.V().order().by('tag').limit(5)").unwrap().is_empty());
}

#[test]
fn unicode_roundtrips_sql_and_gremlin() {
    let db = Arc::new(Database::new());
    let g = tiny_overlay(&db);
    db.execute("INSERT INTO N VALUES (1, 'héllo wörld 日本', 1.0)").unwrap();
    let rs = db.execute("SELECT tag FROM N WHERE id = 1").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Varchar("héllo wörld 日本".into())));
    let out = g.run("g.V(1).values('tag')").unwrap();
    assert_eq!(out, vec![GValue::Str("héllo wörld 日本".into())]);
    // Unicode in a Gremlin predicate pushes into SQL and back.
    let out = g.run("g.V().has('tag', 'héllo wörld 日本').count()").unwrap();
    assert_eq!(out, vec![GValue::Long(1)]);
}

#[test]
fn null_properties_are_absent_not_null_values() {
    let db = Arc::new(Database::new());
    let g = tiny_overlay(&db);
    db.execute("INSERT INTO N VALUES (1, NULL, 2.5)").unwrap();
    let out = g.run("g.V(1).valueMap()").unwrap();
    match &out[0] {
        GValue::Map(m) => {
            assert!(!m.contains_key("tag"), "NULL column must not surface: {m:?}");
            assert_eq!(m.get("score"), Some(&GValue::Double(2.5)));
        }
        other => panic!("{other:?}"),
    }
    // values() skips it; has() misses it; hasNot() finds it.
    assert!(g.run("g.V(1).values('tag')").unwrap().is_empty());
    assert_eq!(g.run("g.V(1).has('tag').count()").unwrap(), vec![GValue::Long(0)]);
    assert_eq!(g.run("g.V(1).hasNot('tag').count()").unwrap(), vec![GValue::Long(1)]);
}

#[test]
fn runaway_repeat_is_bounded() {
    let db = Arc::new(Database::new());
    let g = tiny_overlay(&db);
    db.execute("INSERT INTO N VALUES (1, 'a', 1.0), (2, 'b', 2.0)").unwrap();
    db.execute("INSERT INTO L VALUES (1, 2, 'x'), (2, 1, 'x')").unwrap();
    // until() that never holds on a cyclic graph must hit the iteration
    // guard, not loop forever.
    let err = g
        .run("g.V(1).repeat(out('l')).until(has('tag', 'nope')).count()")
        .unwrap_err();
    assert!(err.to_string().contains("iterations"), "{err}");
}

#[test]
fn limit_zero_and_range_beyond_end() {
    let db = Arc::new(Database::new());
    let g = tiny_overlay(&db);
    db.execute("INSERT INTO N VALUES (1, 'a', 1.0), (2, 'b', 2.0)").unwrap();
    assert!(g.run("g.V().limit(0)").unwrap().is_empty());
    assert!(g.run("g.V().range(5, 9)").unwrap().is_empty());
    let rs = db.execute("SELECT COUNT(*) FROM N LIMIT 0").unwrap();
    assert!(rs.is_empty());
    let rs = db.execute("SELECT COUNT(*) FROM N LIMIT 1").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bigint(2)));
}

#[test]
fn sql_empty_in_list_and_quoted_identifiers() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE \"Weird Table\" (\"a col\" BIGINT, b BIGINT)").unwrap();
    db.execute("INSERT INTO \"Weird Table\" VALUES (1, 2)").unwrap();
    let rs = db.execute("SELECT \"a col\" FROM \"Weird Table\" WHERE b IN (2, 3)").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bigint(1)));
    let rs = db.execute("SELECT b FROM \"Weird Table\" WHERE b IN ()").unwrap();
    assert!(rs.is_empty());
}

#[test]
fn create_or_replace_view_and_drop() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (a BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.execute("CREATE VIEW v AS SELECT a FROM t WHERE a > 1").unwrap();
    assert!(db.execute("CREATE VIEW v AS SELECT a FROM t").is_err());
    db.execute("CREATE OR REPLACE VIEW v AS SELECT a FROM t WHERE a > 2").unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM v").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bigint(1)));
    db.execute("DROP VIEW v").unwrap();
    assert!(matches!(db.execute("SELECT * FROM v").unwrap_err(), DbError::Catalog(_)));
}

#[test]
fn order_by_places_nulls_first() {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (a BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (2), (NULL), (1)").unwrap();
    let rs = db.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rs.rows[0][0], Value::Null);
    assert_eq!(rs.rows[1][0], Value::Bigint(1));
    let rs = db.execute("SELECT a FROM t ORDER BY a DESC").unwrap();
    assert_eq!(rs.rows[2][0], Value::Null);
}

#[test]
fn ddl_under_running_overlay_new_index_is_picked_up() {
    let db = Arc::new(Database::new());
    let g = tiny_overlay(&db);
    db.set_enforce_foreign_keys(false);
    for i in 0..500 {
        db.execute(&format!("INSERT INTO N VALUES ({i}, 't{}', 1.0)", i % 5)).unwrap();
    }
    // Query on an unindexed property column works (scan)...
    let before = g.run("g.V().has('tag', 't3').count()").unwrap();
    // ...and stays correct after an index appears mid-session (prepared
    // plans pick access paths at execution time).
    db.execute("CREATE INDEX ix_n_tag ON N (tag)").unwrap();
    let after = g.run("g.V().has('tag', 't3').count()").unwrap();
    assert_eq!(before, after);
    let plan = db.explain("SELECT * FROM N WHERE tag = 't3'").unwrap();
    assert!(plan.contains("INDEX"), "{plan}");
}

#[test]
fn concurrent_graph_readers_with_sql_writer() {
    let db = Arc::new(Database::new());
    let g = tiny_overlay(&db);
    db.set_enforce_foreign_keys(false);
    for i in 0..50 {
        db.execute(&format!("INSERT INTO N VALUES ({i}, 'x', 1.0)")).unwrap();
    }
    for i in 0..49 {
        db.execute(&format!("INSERT INTO L VALUES ({i}, {}, 'k')", i + 1)).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let iterations = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let g = g.clone();
            let stop = stop.clone();
            let iterations = iterations.clone();
            std::thread::spawn(move || {
                let mut runs = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // Counts move while the writer runs, but must never be
                    // below the initial state or error out.
                    let n = match g.run("g.V().count()").unwrap()[0] {
                        GValue::Long(n) => n,
                        _ => unreachable!(),
                    };
                    assert!(n >= 50, "{n}");
                    let e = g.run("g.V(0).repeat(out('l')).times(3).count()").unwrap();
                    assert_eq!(e, vec![GValue::Long(1)]);
                    runs += 1;
                    iterations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                runs
            })
        })
        .collect();
    for i in 50..150 {
        db.execute(&format!("INSERT INTO N VALUES ({i}, 'y', 2.0)")).unwrap();
    }
    // The writer can outpace the readers; don't signal stop until every
    // reader has observed at least one consistent snapshot, or the
    // `total > 0` assertion below races with thread startup.
    while iterations.load(std::sync::atomic::Ordering::Relaxed) < 3 {
        std::thread::yield_now();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0);
    assert_eq!(g.run("g.V().count()").unwrap(), vec![GValue::Long(150)]);
}

#[test]
fn malformed_gremlin_reports_parse_errors() {
    let db = Arc::new(Database::new());
    let g = tiny_overlay(&db);
    for bad in [
        "not gremlin at all",
        "g.V(",
        "g.V().has('a',)",
        "g.",
        "g.V()..out()",
    ] {
        let err = g.run(bad).unwrap_err();
        assert!(
            matches!(err, db2graph::core::GraphError::Gremlin(GremlinError::Parse(_))),
            "{bad}: {err}"
        );
    }
    // Valid parse, unsupported step.
    let err = g.run("g.V().frobnicate()").unwrap_err();
    assert!(err.to_string().contains("frobnicate"), "{err}");
}

#[test]
fn overlay_detects_schema_drift_at_open() {
    // If someone drops a column the overlay references, re-opening fails
    // with a clear config error (the paper: rerun AutoOverlay after DDL).
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE N (id BIGINT PRIMARY KEY, tag VARCHAR)").unwrap();
    let cfg = OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "N".into(),
            prefixed_id: false,
            id: "id".into(),
            fix_label: true,
            label: "'n'".into(),
            properties: Some(vec!["tag".into(), "ghost_column".into()]),
        }],
        e_tables: vec![],
    };
    let err = match Db2Graph::open(db, &cfg) {
        Err(e) => e,
        Ok(_) => panic!("open must fail on missing column"),
    };
    assert!(err.to_string().contains("ghost_column"), "{err}");
}
