//! End-to-end log-shipping replication tests: a durable primary server
//! and an in-memory follower, over real sockets.
//!
//! The follower must bootstrap from the primary's checkpoint, tail its
//! WAL across rotations, serve byte-identical reads at the applied
//! epoch, refuse writes with a pointer at the primary, survive its own
//! kill-and-restart, and keep serving (while counting reconnects) when
//! the primary dies. See `docs/REPLICATION.md` for the protocol.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use db2graph::core::config::healthcare_example_json;
use db2graph::core::json::Json;
use db2graph::core::{Db2Graph, OverlayConfig};
use db2graph::reldb::Database;
use db2graph::server::{http_call, GraphServer, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(10);

static DIRS: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "db2graph-replication-{tag}-{}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 16,
        query_timeout: Some(Duration::from_secs(5)),
        read_timeout: Duration::from_secs(2),
        vacuum_interval: Some(Duration::from_millis(50)),
        checkpoint_interval: None,
        sql_endpoint: true,
        ..Default::default()
    }
}

const SCHEMA: &str =
    "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
     CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
     CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR);
     CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR);";

fn overlay() -> OverlayConfig {
    OverlayConfig::from_json(healthcare_example_json()).unwrap()
}

/// A durable primary: schema installed, `n` patients committed, one
/// checkpoint taken (so its WAL no longer starts at sequence zero and a
/// fresh follower *must* go through the checkpoint-bootstrap path).
fn start_primary(dir: &PathBuf, patients: u64) -> (Arc<Database>, ServerHandle) {
    let db = Arc::new(Database::open(dir).unwrap());
    db.execute_script(SCHEMA).unwrap();
    for i in 1..=patients {
        insert_patient(&db, i);
    }
    db.checkpoint().unwrap();
    let graph = Db2Graph::open_with_options(db.clone(), &overlay(), Default::default()).unwrap();
    let handle = GraphServer::start(graph, base_config()).unwrap();
    (db, handle)
}

fn insert_patient(db: &Database, i: u64) {
    db.execute(&format!("INSERT INTO Patient VALUES ({i}, 'P{i}', '{i} Oak St', {i})")).unwrap();
}

/// A follower of `primary`: `open_database` runs the synchronous initial
/// sync, so the overlay reads a populated catalog.
fn start_replica(primary: SocketAddr) -> (Arc<Database>, ServerHandle) {
    let config = ServerConfig {
        replica_of: Some(primary.to_string()),
        replica_poll: Duration::from_millis(20),
        ..base_config()
    };
    let db = config.open_database().unwrap();
    let graph = Db2Graph::open_with_options(db.clone(), &overlay(), Default::default()).unwrap();
    let handle = GraphServer::start(graph, config).unwrap();
    (db, handle)
}

fn patient_count(addr: SocketAddr) -> u64 {
    let r = http_call(addr, "POST", "/query", "g.V().hasLabel('patient').count()", TIMEOUT)
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    Json::parse(&r.body)
        .unwrap()
        .get("result")
        .and_then(|v| v.as_array())
        .and_then(|a| a[0].as_u64())
        .unwrap()
}

fn query_body(addr: SocketAddr, gremlin: &str) -> String {
    let r = http_call(addr, "POST", "/query", gremlin, TIMEOUT).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    r.body
}

fn replication_metrics(addr: SocketAddr) -> Json {
    let r = http_call(addr, "GET", "/metrics", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 200);
    Json::parse(&r.body).unwrap().get("replication").expect("replication section").clone()
}

fn wait_until(what: &str, f: impl Fn() -> bool) {
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(15) {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}");
}

/// The tentpole path: bootstrap from the checkpoint, tail the WAL across
/// another rotation, serve byte-identical reads, expose lag, refuse
/// writes.
#[test]
fn replica_bootstraps_tails_and_serves_identical_reads() {
    let dir = temp_dir("tail");
    let (pdb, primary) = start_primary(&dir, 2);
    let paddr = primary.addr();

    // One commit past the checkpoint, shipped by WAL tailing alone.
    insert_patient(&pdb, 3);

    let (_rdb, replica) = start_replica(paddr);
    let raddr = replica.addr();
    assert_eq!(patient_count(raddr), 3, "initial sync caught the post-checkpoint commit");

    // Byte-identical reads on a multi-row traversal.
    let probe = "g.V().hasLabel('patient').values('name')";
    assert_eq!(query_body(paddr, probe), query_body(raddr, probe));

    // More commits, a second checkpoint (WAL rotation while the follower
    // is live), then more commits on the rotated log.
    insert_patient(&pdb, 4);
    insert_patient(&pdb, 5);
    pdb.checkpoint().unwrap();
    insert_patient(&pdb, 6);
    wait_until("replica to converge at 6 patients", || patient_count(raddr) == 6);
    assert_eq!(query_body(paddr, probe), query_body(raddr, probe));

    // The replication section of /metrics: caught up means zero lag and a
    // published epoch matching the primary's.
    wait_until("replication lag to reach zero", || {
        let m = replication_metrics(raddr);
        m.get("replication_lag_records").and_then(Json::as_u64) == Some(0)
            && m.get("replica_applied_epoch").and_then(Json::as_u64)
                == Some(pdb.commit_epoch())
    });
    let m = replication_metrics(raddr);
    assert_eq!(m.get("primary").and_then(Json::as_str), Some(paddr.to_string().as_str()));
    assert!(m.get("replica_applied_records").and_then(Json::as_u64).unwrap() >= 1);

    // Roles are visible, and writes are refused with a pointer home even
    // though the replica's config opted into /sql.
    let r = http_call(raddr, "GET", "/healthz", "", TIMEOUT).unwrap();
    assert_eq!(Json::parse(&r.body).unwrap().get("role").and_then(Json::as_str), Some("replica"));
    let r = http_call(paddr, "GET", "/healthz", "", TIMEOUT).unwrap();
    assert_eq!(Json::parse(&r.body).unwrap().get("role").and_then(Json::as_str), Some("primary"));
    let r = http_call(raddr, "POST", "/sql", "INSERT INTO Patient VALUES (99, 'X', 'X', 99)", TIMEOUT)
        .unwrap();
    assert_eq!(r.status, 403, "{}", r.body);
    assert_eq!(
        Json::parse(&r.body).unwrap().get("primary").and_then(Json::as_str),
        Some(paddr.to_string().as_str())
    );
    assert_eq!(patient_count(raddr), 6, "refused write touched nothing");

    // Replication endpoints answer their contract over plain HTTP: a
    // position rotated out of the log is 410, a missing position is 400,
    // and a replica (no WAL of its own) refuses to be tailed.
    let r = http_call(paddr, "GET", "/wal?from_seq=0", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 410, "sequence 0 rotated away at the first checkpoint");
    assert!(Json::parse(&r.body).unwrap().get("base_seq").is_some());
    let r = http_call(paddr, "GET", "/wal", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    let r = http_call(raddr, "GET", "/wal?from_seq=0", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 403);

    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Failure handling: a killed-and-restarted follower re-bootstraps to the
/// primary's current state, and a follower that loses its primary keeps
/// serving reads at its last applied epoch while counting reconnects.
#[test]
fn replica_survives_kill_restart_and_primary_loss() {
    let dir = temp_dir("kill");
    let (pdb, primary) = start_primary(&dir, 3);
    let paddr = primary.addr();

    let (rdb1, replica1) = start_replica(paddr);
    assert_eq!(patient_count(replica1.addr()), 3);

    // Kill the follower outright (its state is memory-only and dies with
    // it), advance the primary, restart: the new follower re-bootstraps
    // and converges on state it never saw shipped live.
    replica1.shutdown();
    drop(rdb1);
    insert_patient(&pdb, 4);
    pdb.checkpoint().unwrap();
    insert_patient(&pdb, 5);
    let (_rdb2, replica2) = start_replica(paddr);
    let raddr = replica2.addr();
    assert_eq!(patient_count(raddr), 5, "restarted replica re-bootstrapped to current state");
    wait_until("restarted replica to report zero lag", || {
        replication_metrics(raddr).get("replication_lag_records").and_then(Json::as_u64)
            == Some(0)
    });

    // Primary loss: reads keep answering from the applied epoch, and the
    // apply loop's failed polls are counted as reconnects.
    primary.shutdown();
    drop(pdb);
    wait_until("replica to count reconnects against the dead primary", || {
        replication_metrics(raddr).get("replica_reconnects").and_then(Json::as_u64) >= Some(1)
    });
    assert_eq!(patient_count(raddr), 5, "reads survive the primary's death");

    replica2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
