//! Golden-SQL snapshot tests: for a corpus of Gremlin queries over the
//! paper's healthcare overlay, the exact SQL that `explain()` reports the
//! plan would generate is checked against expected strings committed here.
//!
//! These pin down the SQL Dialect's generation (projection pushdown,
//! predicate pushdown, aggregate pushdown, id pinning) so an accidental
//! change to the emitted SQL fails loudly with a readable diff. explain()
//! is data-independent, so the snapshots need no table contents at all.

use std::sync::Arc;

use db2graph_core::config::healthcare_example_json;
use db2graph_core::Db2Graph;
use reldb::Database;

/// Schema only — explain never reads rows, so none are inserted.
fn graph() -> Arc<Db2Graph> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
         CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
         CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR);
         CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR);",
    )
    .unwrap();
    Db2Graph::open_json(db, healthcare_example_json()).unwrap()
}

/// (gremlin, expected SQL statements in step/table order).
const GOLDEN: &[(&str, &[&str])] = &[
    (
        "g.V()",
        &[
            "SELECT patientID, name, address, subscriptionID FROM Patient",
            "SELECT diseaseID, conceptCode, conceptName FROM Disease",
        ],
    ),
    // Aggregate pushdown: count() becomes COUNT(*) per table.
    (
        "g.V().count()",
        &["SELECT COUNT(*) FROM Patient", "SELECT COUNT(*) FROM Disease"],
    ),
    // Fixed-label elimination: only Patient is scanned.
    (
        "g.V().hasLabel('patient')",
        &["SELECT patientID, name, address, subscriptionID FROM Patient"],
    ),
    // Predicate pushdown: has() becomes a parameterized WHERE.
    (
        "g.V().hasLabel('patient').has('name', 'Alice')",
        &["SELECT patientID, name, address, subscriptionID FROM Patient WHERE name = ?"],
    ),
    // Prefixed-id pinning: 'patient::1' keys only the Patient table.
    (
        "g.V('patient::1')",
        &["SELECT patientID, name, address, subscriptionID FROM Patient WHERE patientID = ?"],
    ),
    // A plain integer id can only come from the Bigint-id table.
    (
        "g.V(10)",
        &["SELECT diseaseID, conceptCode, conceptName FROM Disease WHERE diseaseID = ?"],
    ),
    // Projection pushdown: values('name') narrows the SELECT list to the
    // id column plus the requested property.
    (
        "g.V().hasLabel('patient').values('name')",
        &["SELECT patientID, name FROM Patient"],
    ),
    (
        "g.V().hasLabel('disease').has('conceptCode', 'E11').values('conceptName')",
        &["SELECT diseaseID, conceptName FROM Disease WHERE conceptCode = ?"],
    ),
    (
        "g.E()",
        &[
            "SELECT sourceID, targetID, type FROM DiseaseOntology",
            "SELECT patientID, diseaseID, description FROM HasDisease",
        ],
    ),
    (
        "g.E().count()",
        &["SELECT COUNT(*) FROM DiseaseOntology", "SELECT COUNT(*) FROM HasDisease"],
    ),
    // Column-label edge table: hasLabel('isa') pushes into WHERE on the
    // label column; the fixed-label table HasDisease is eliminated.
    (
        "g.E().hasLabel('isa')",
        &["SELECT sourceID, targetID, type FROM DiseaseOntology WHERE type = ?"],
    ),
    (
        "g.E().hasLabel('hasDisease').has('description', 'diagnosed 2019')",
        &["SELECT patientID, diseaseID, description FROM HasDisease WHERE description = ?"],
    ),
    // Strategy-mutated plan: V(id).outE(label) becomes a single edge scan
    // keyed by the source endpoint; the ontology table cannot hold a
    // 'patient::…' endpoint.
    (
        "g.V('patient::1').outE('hasDisease')",
        &["SELECT patientID, diseaseID, description FROM HasDisease WHERE patientID = ?"],
    ),
    // Aggregate pushdown through projection: sum() of one property.
    (
        "g.V().hasLabel('patient').values('subscriptionID').sum()",
        &["SELECT SUM(subscriptionID) FROM Patient"],
    ),
    (
        "g.V().hasLabel('disease').count()",
        &["SELECT COUNT(*) FROM Disease"],
    ),
];

#[test]
fn golden_sql_statements() {
    let g = graph();
    let mut failures = Vec::new();
    for (gremlin, expected) in GOLDEN {
        let report = g.explain_report(gremlin).unwrap();
        let actual = report.sql_statements();
        if actual != *expected {
            failures.push(format!(
                "query:    {gremlin}\nexpected: {expected:?}\nactual:   {actual:?}\n"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "generated SQL diverged from golden snapshots:\n\n{}",
        failures.join("\n")
    );
}

/// Full rendered explain() output for a representative multi-step query,
/// pinned verbatim: plan line, per-table SQL, prune reasons, and the
/// adjacency step's candidate annotation.
#[test]
fn golden_explain_text_traversal() {
    let g = graph();
    let text = g
        .explain("g.V().hasLabel('patient').out('hasDisease').values('conceptName')")
        .unwrap();
    let expected = "\
plan: Graph(V|labels) -> Vertex(out) -> Values(conceptName)
step 0: Graph(V|labels)
  Patient: SELECT patientID, name, address, subscriptionID FROM Patient
  Disease: pruned (fixed label 'disease' not in requested labels)
step 1: Vertex(out)
  DiseaseOntology: candidate; queried per frontier batch of source ids (declared src/dst vertex table links can skip it per direction)
  HasDisease: candidate; queried per frontier batch of source ids (declared src/dst vertex table links can skip it per direction)";
    assert_eq!(text, expected);
}

/// Id-lookup explain, pinned verbatim: prefixed-id pinning prunes the
/// mismatching table with a precise reason.
#[test]
fn golden_explain_text_id_lookup() {
    let g = graph();
    let text = g.explain("g.V('patient::1')").unwrap();
    let expected = "\
plan: Graph(V|ids)
step 0: Graph(V|ids)
  Patient: SELECT patientID, name, address, subscriptionID FROM Patient WHERE patientID = ?
  Disease: pruned (no requested id fits this table (id prefix or type mismatch))";
    assert_eq!(text, expected);
}
