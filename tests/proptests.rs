//! Property-based tests over the core invariants:
//! id codec roundtrips, value ordering laws, index-vs-scan equivalence,
//! LIKE semantics, optimizer semantic preservation, AutoOverlay shape
//! invariants.

use std::sync::Arc;

use proptest::prelude::*;

use db2graph::core::ids::IdDef;
use db2graph::core::{generate_overlay, Db2Graph, GraphOptions, StrategyConfig};
use db2graph::gremlin::{ElementId, GValue};
use db2graph::reldb::{ColumnDef, DataType, Database, TableSchema, Value};

// ----------------------------------------------------------------- values

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Bigint),
        any::<f64>().prop_filter("no NaN keys", |f| !f.is_nan()).prop_map(Value::Double),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Varchar),
        any::<bool>().prop_map(Value::Boolean),
    ]
}

proptest! {
    #[test]
    fn value_total_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == std::cmp::Ordering::Equal {
            prop_assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn value_total_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let mut v = [a, b, c];
        v.sort();
        // After sorting, pairwise comparisons must be consistent.
        prop_assert_ne!(v[0].total_cmp(&v[1]), Greater);
        prop_assert_ne!(v[1].total_cmp(&v[2]), Greater);
        prop_assert_ne!(v[0].total_cmp(&v[2]), Greater);
    }

    #[test]
    fn sql_literal_roundtrips_through_parser(v in arb_value()) {
        // Rendering a value as a SQL literal and selecting it yields the
        // value back (module numeric formatting).
        let db = Database::new();
        let rs = db.execute(&format!("SELECT {}", v.to_sql_literal())).unwrap();
        let got = rs.scalar().unwrap();
        match (&v, got) {
            (Value::Double(a), got) => {
                prop_assert!((got.as_f64().unwrap() - a).abs() < 1e-9 || a.is_infinite());
            }
            (expected, got) => prop_assert_eq!(expected, got),
        }
    }
}

// -------------------------------------------------------------------- ids

fn arb_id_def() -> impl Strategy<Value = (String, usize)> {
    // (definition string, number of column parts)
    prop_oneof![
        Just(("plainCol".to_string(), 1)),
        "[a-z]{1,8}".prop_map(|p| (format!("'{p}'::keyCol"), 1)),
        "[a-z]{1,8}".prop_map(|p| (format!("'{p}'::c1::c2"), 2)),
    ]
}

proptest! {
    #[test]
    fn id_encode_decode_roundtrip((spec, ncols) in arb_id_def(), vals in prop::collection::vec(1i64..1_000_000, 1..3)) {
        prop_assume!(vals.len() == ncols);
        let def = IdDef::parse(&spec).unwrap();
        let values: Vec<Value> = vals.iter().map(|&v| Value::Bigint(v)).collect();
        let id = def.encode(&values).unwrap();
        let decoded = def.decode(&id).expect("own encoding must decode");
        prop_assert_eq!(decoded.len(), ncols);
        for (text, v) in decoded.iter().zip(&vals) {
            prop_assert_eq!(text.parse::<i64>().unwrap(), *v);
        }
    }

    /// Prefixed-id compose/decompose is lossless for *arbitrary* table
    /// prefixes and key values — any mix of integer and textual keys, any
    /// arity — as long as no value contains `:` (a colon adjacent to the
    /// `::` separator is indistinguishable from a component boundary).
    /// Single-column BIGINT keys must stay numeric (`ElementId::Long`).
    #[test]
    fn prefixed_id_roundtrip_arbitrary_names_and_values(
        prefix in "[a-zA-Z][a-zA-Z0-9_]{0,10}",
        keys in prop::collection::vec(
            prop_oneof![
                (-1_000_000_000i64..1_000_000_000).prop_map(Value::Bigint),
                "[a-zA-Z0-9_. -]{1,12}".prop_map(Value::Varchar),
            ],
            1..4,
        ),
    ) {
        let cols: Vec<String> = (0..keys.len()).map(|i| format!("k{i}")).collect();
        let spec = format!("'{prefix}'::{}", cols.join("::"));
        let def = IdDef::parse(&spec).unwrap();
        prop_assert_eq!(def.prefix(), Some(prefix.as_str()));

        let id = def.encode(&keys).unwrap();
        prop_assert!(matches!(id, ElementId::Str(_)), "prefixed ids are textual");
        let decoded = def.decode(&id).expect("own encoding must decode");
        prop_assert_eq!(decoded.len(), keys.len());
        for (text, value) in decoded.iter().zip(&keys) {
            // Lossless: the decoded text is exactly the value's rendering,
            // so coercing by the column's type recovers the original.
            prop_assert_eq!(text.clone(), value.to_string());
            match value {
                Value::Bigint(v) => {
                    prop_assert_eq!(IdDef::coerce(text, DataType::Bigint).unwrap(), Value::Bigint(*v))
                }
                Value::Varchar(s) => {
                    prop_assert_eq!(IdDef::coerce(text, DataType::Varchar).unwrap(), Value::Varchar(s.clone()))
                }
                _ => unreachable!(),
            }
        }

        // Without the prefix, a single BIGINT key stays a numeric id.
        let bare = IdDef::parse("k0").unwrap();
        if let [Value::Bigint(v)] = keys.as_slice() {
            let id = bare.encode(&keys[..1]).unwrap();
            prop_assert_eq!(&id, &ElementId::Long(*v));
            prop_assert_eq!(bare.decode(&id).unwrap(), vec![v.to_string()]);
        }
    }

    #[test]
    fn prefixed_ids_never_decode_under_other_prefix(a in "[a-z]{1,6}", b in "[a-z]{1,6}", v in 1i64..100000) {
        prop_assume!(a != b);
        let da = IdDef::parse(&format!("'{a}'::c")).unwrap();
        let db_ = IdDef::parse(&format!("'{b}'::c")).unwrap();
        let id = da.encode(&[Value::Bigint(v)]).unwrap();
        prop_assert!(db_.decode(&id).is_none());
    }

    #[test]
    fn implicit_edge_id_splits_on_label(src in 1i64..10000, dst in 1i64..10000, label in "[a-zA-Z]{1,10}") {
        use db2graph::core::ids::{implicit_edge_id, split_implicit_edge_id};
        let id = implicit_edge_id(&ElementId::Long(src), &label, &ElementId::Long(dst));
        let (s, d) = split_implicit_edge_id(&id, &label).expect("splits on its own label");
        prop_assert_eq!(s, src.to_string());
        prop_assert_eq!(d, dst.to_string());
    }
}

// ----------------------------------------------------- index equivalence

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn index_probe_equals_full_scan(
        rows in prop::collection::vec((0i64..40, 0i64..40), 1..60),
        probe in 0i64..40,
    ) {
        // Two identical tables, one indexed on `k`, one not: every query
        // must return identical multisets.
        let db = Database::new();
        db.execute("CREATE TABLE with_ix (k BIGINT, v BIGINT)").unwrap();
        db.execute("CREATE TABLE no_ix (k BIGINT, v BIGINT)").unwrap();
        db.execute("CREATE INDEX ix_k ON with_ix (k)").unwrap();
        for (k, v) in &rows {
            db.execute(&format!("INSERT INTO with_ix VALUES ({k}, {v})")).unwrap();
            db.execute(&format!("INSERT INTO no_ix VALUES ({k}, {v})")).unwrap();
        }
        for query in [
            format!("SELECT k, v FROM {{}} WHERE k = {probe} ORDER BY k, v"),
            format!("SELECT k, v FROM {{}} WHERE k IN ({probe}, {}) ORDER BY k, v", probe + 1),
            format!("SELECT k, v FROM {{}} WHERE k > {probe} ORDER BY k, v"),
            format!("SELECT k, v FROM {{}} WHERE k >= {probe} AND k < {} ORDER BY k, v", probe + 5),
            "SELECT COUNT(*) FROM {}".to_string(),
        ] {
            let a = db.execute(&query.replace("{}", "with_ix")).unwrap();
            let b = db.execute(&query.replace("{}", "no_ix")).unwrap();
            prop_assert_eq!(a.rows, b.rows, "query {} differs", query);
        }
        // And the indexed one actually used the index for the point query.
        let plan = db.explain(&format!("SELECT * FROM with_ix WHERE k = {probe}")).unwrap();
        prop_assert!(plan.contains("INDEX"), "{}", plan);
    }
}

// -------------------------------------------------------------------- LIKE

/// Reference LIKE implementation via dynamic programming.
fn like_oracle(s: &str, p: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = p.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; s.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = p[j - 1] == '%' && dp[0][j - 1];
    }
    for i in 1..=s.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => c == s[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    dp[s.len()][p.len()]
}

proptest! {
    #[test]
    fn like_matches_oracle(s in "[ab%_]{0,8}", p in "[ab%_]{0,6}") {
        prop_assert_eq!(
            db2graph::reldb::sql::eval::like_match(&s, &p),
            like_oracle(&s, &p),
            "s={:?} p={:?}", s, p
        );
    }
}

// ---------------------------------------------- optimizer preservation

#[allow(clippy::type_complexity)]
fn arb_graph_rows() -> impl Strategy<Value = (Vec<(i64, String)>, Vec<(i64, i64, String)>)> {
    let verts = prop::collection::btree_set(0i64..20, 1..12).prop_map(|ids| {
        ids.into_iter()
            .map(|id| (id, format!("t{}", id % 3)))
            .collect::<Vec<_>>()
    });
    verts.prop_flat_map(|vs| {
        let ids: Vec<i64> = vs.iter().map(|(id, _)| *id).collect();
        let edges = prop::collection::btree_set(
            (0..ids.len(), 0..ids.len(), 0usize..2),
            0..20,
        )
        .prop_map(move |set| {
            set.into_iter()
                .map(|(a, b, l)| (ids[a], ids[b], format!("e{l}")))
                .collect::<Vec<_>>()
        });
        (Just(vs), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn strategies_preserve_semantics((verts, edges) in arb_graph_rows(), probe in 0i64..20) {
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE vs (id BIGINT PRIMARY KEY, vlabel VARCHAR, w BIGINT)").unwrap();
        db.execute("CREATE TABLE es (src BIGINT, dst BIGINT, elabel VARCHAR)").unwrap();
        db.execute("CREATE INDEX ix_src ON es (src)").unwrap();
        db.set_enforce_foreign_keys(false);
        for (id, l) in &verts {
            db.execute(&format!("INSERT INTO vs VALUES ({id}, '{l}', {})", id * 2)).unwrap();
        }
        for (s, d, l) in &edges {
            db.execute(&format!("INSERT INTO es VALUES ({s}, {d}, '{l}')")).unwrap();
        }
        let cfg = db2graph::core::OverlayConfig {
            v_tables: vec![db2graph::core::VTableConfig {
                table_name: "vs".into(),
                prefixed_id: false,
                id: "id".into(),
                fix_label: false,
                label: "vlabel".into(),
                properties: Some(vec!["w".into()]),
            }],
            e_tables: vec![db2graph::core::ETableConfig {
                table_name: "es".into(),
                src_v_table: Some("vs".into()),
                src_v: "src".into(),
                dst_v_table: Some("vs".into()),
                dst_v: "dst".into(),
                prefixed_edge_id: false,
                implicit_edge_id: true,
                id: None,
                fix_label: true,
                label: "'link'".into(),
                properties: Some(vec!["elabel".into()]),
            }],
        };
        let g_on = Db2Graph::open(db.clone(), &cfg).unwrap();
        let g_off = Db2Graph::open_with_options(
            db.clone(),
            &cfg,
            GraphOptions { strategies: StrategyConfig::none(), ..Default::default() },
        )
        .unwrap();
        let queries = [
            format!("g.V({probe}).outE('link').count()"),
            format!("g.V({probe}).out('link').values('w')"),
            "g.V().hasLabel('t1').count()".to_string(),
            format!("g.V().has('w', gte({probe})).count()"),
            format!("g.V({probe}).outE('link').filter(inV().id() == {})", (probe + 1) % 20),
            "g.V().values('w').sum()".to_string(),
            format!("g.V({probe}).in('link').dedup().count()"),
        ];
        for q in &queries {
            let mut a = g_on.run(q).unwrap();
            let mut b = g_off.run(q).unwrap();
            let key = |v: &GValue| v.to_string();
            a.sort_by_key(key);
            b.sort_by_key(key);
            prop_assert_eq!(a, b, "query {} differs under strategies", q);
        }
    }
}

// -------------------------------------------------------------- AutoOverlay

fn arb_schemas() -> impl Strategy<Value = Vec<TableSchema>> {
    // Between 1 and 4 vertex tables, plus up to 3 link tables referencing
    // random vertex tables.
    (1usize..4, 0usize..4).prop_map(|(nv, nl)| {
        let mut out = Vec::new();
        for i in 0..nv {
            out.push(
                TableSchema::new(
                    format!("V{i}"),
                    vec![
                        ColumnDef::new("id", DataType::Bigint).not_null(),
                        ColumnDef::new("payload", DataType::Varchar),
                    ],
                )
                .with_primary_key(vec!["id"]),
            );
        }
        for j in 0..nl {
            let a = j % nv;
            let b = (j + 1) % nv;
            out.push(
                TableSchema::new(
                    format!("L{j}"),
                    vec![
                        ColumnDef::new("a", DataType::Bigint),
                        ColumnDef::new("b", DataType::Bigint),
                        ColumnDef::new("note", DataType::Varchar),
                    ],
                )
                .with_foreign_key(vec!["a"], &format!("V{a}"), vec!["id"])
                .with_foreign_key(vec!["b"], &format!("V{b}"), vec!["id"]),
            );
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn auto_overlay_always_produces_valid_configs(schemas in arb_schemas()) {
        let config = generate_overlay(&schemas).unwrap();
        config.validate_shape().unwrap();
        // Every vertex table has a prefixed id and a fixed label.
        for v in &config.v_tables {
            prop_assert!(v.prefixed_id);
            prop_assert!(v.fix_label);
            prop_assert!(v.id.starts_with('\''));
        }
        // Every edge table uses implicit ids and has both endpoint defs.
        for e in &config.e_tables {
            prop_assert!(e.implicit_edge_id);
            prop_assert!(e.id.is_none());
            prop_assert!(!e.src_v.is_empty() && !e.dst_v.is_empty());
        }
        // And the config actually resolves against a database with those
        // tables.
        let db = Arc::new(Database::new());
        for s in &schemas {
            // Create in dependency order: vertex tables first.
            if s.has_primary_key() {
                db.create_table(s.clone()).unwrap();
            }
        }
        for s in &schemas {
            if !s.has_primary_key() {
                db.create_table(s.clone()).unwrap();
            }
        }
        let topo = db2graph::core::Topology::resolve(&db, &config);
        prop_assert!(topo.is_ok(), "{:?}", topo.err());
    }
}

// --------------------------------------------------------- gremlin parser

proptest! {
    #[test]
    fn parser_accepts_generated_chains(
        id in 0i64..100,
        label in "[a-z]{1,6}",
        key in "[a-z]{1,6}",
        n in 1u32..5,
    ) {
        let script = format!(
            "g.V({id}).hasLabel('{label}').out('{label}').has('{key}', gt({id})).repeat(out('{label}').dedup()).times({n}).values('{key}')"
        );
        let parsed = db2graph::gremlin::parser::parse(&script);
        prop_assert!(parsed.is_ok(), "{:?}", parsed.err());
        let stmt = &parsed.unwrap().statements[0];
        prop_assert_eq!(stmt.traversal.start.name.as_str(), "V");
    }

    #[test]
    fn parser_rejects_truncations(cut in 3usize..30) {
        let script = "g.V(1).out('x').has('k', 5).dedup().count()";
        if cut < script.len() {
            let truncated = &script[..cut];
            // Truncated scripts either parse to a prefix (when cut lands on
            // a step boundary) or error — they never panic.
            let _ = db2graph::gremlin::parser::parse(truncated);
        }
    }
}

// ------------------------------------------- overlay vs in-memory oracle

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn overlay_matches_memory_oracle((verts, edges) in arb_graph_rows(), probe in 0i64..20) {
        use db2graph::gremlin::memgraph::MemGraph;
        use db2graph::gremlin::{ScriptRunner, Vertex, Edge};
        use db2graph::gremlin::strategy::{IdentityRemoval, StrategyRegistry};

        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE vs (id BIGINT PRIMARY KEY, vlabel VARCHAR, w BIGINT)").unwrap();
        db.execute("CREATE TABLE es (src BIGINT, dst BIGINT, elabel VARCHAR)").unwrap();
        db.execute("CREATE INDEX ix_src ON es (src)").unwrap();
        db.execute("CREATE INDEX ix_dst ON es (dst)").unwrap();
        db.set_enforce_foreign_keys(false);
        let mem = MemGraph::new();
        for (id, l) in &verts {
            db.execute(&format!("INSERT INTO vs VALUES ({id}, '{l}', {})", id * 2)).unwrap();
            let mut v = Vertex::new(*id, l.as_str());
            v.properties.insert("vlabel".into(), GValue::Str(l.clone()));
            v.properties.insert("w".into(), GValue::Long(id * 2));
            mem.add_vertex(v);
        }
        for (s, d, l) in &edges {
            db.execute(&format!("INSERT INTO es VALUES ({s}, {d}, '{l}')")).unwrap();
            // The edge label comes from the elabel column, so the implicit
            // (src, label, dst) id is unique per generated triple.
            mem.add_edge(Edge::new(format!("{s}::{l}::{d}"), l.as_str(), *s, *d));
        }
        let cfg = db2graph::core::OverlayConfig {
            v_tables: vec![db2graph::core::VTableConfig {
                table_name: "vs".into(),
                prefixed_id: false,
                id: "id".into(),
                fix_label: false,
                label: "vlabel".into(),
                properties: Some(vec!["vlabel".into(), "w".into()]),
            }],
            e_tables: vec![db2graph::core::ETableConfig {
                table_name: "es".into(),
                src_v_table: Some("vs".into()),
                src_v: "src".into(),
                dst_v_table: Some("vs".into()),
                dst_v: "dst".into(),
                prefixed_edge_id: false,
                implicit_edge_id: true,
                id: None,
                fix_label: false,
                label: "elabel".into(),
                properties: Some(vec![]),
            }],
        };
        let overlay = Db2Graph::open(db, &cfg).unwrap();
        let mut reg = StrategyRegistry::new();
        reg.add(std::sync::Arc::new(IdentityRemoval));
        for s in StrategyConfig::default().build() {
            reg.add(s);
        }
        let oracle = ScriptRunner::new(&mem).with_strategies(reg);

        let queries = [
            "g.V().count()".to_string(),
            "g.E().count()".to_string(),
            format!("g.V({probe}).out('e0').id()"),
            format!("g.V({probe}).in('e0').id()"),
            format!("g.V({probe}).both('e0', 'e1').id()"),
            format!("g.V({probe}).outE('e1').count()"),
            format!("g.V({probe}).outE().hasLabel('e1').count()"),
            "g.V().hasLabel('t1').values('w').sum()".to_string(),
            format!("g.V({probe}).repeat(out('e0').dedup()).times(2).dedup().id()"),
            format!("g.V({probe}).bothE().otherV().dedup().count()"),
            "g.V().has('w', gte(10)).count()".to_string(),
            format!("g.V({probe}).where(__.out('e1')).id()"),
            "g.V().groupCount().by('vlabel')".to_string(),
        ];
        for q in &queries {
            let norm = |vs: Vec<GValue>| -> Vec<String> {
                let mut out: Vec<String> = vs
                    .iter()
                    .map(|v| match v {
                        GValue::Vertex(vx) => format!("v[{}]", vx.id),
                        GValue::Edge(e) => format!("e[{}->{}]", e.src, e.dst),
                        other => other.to_string(),
                    })
                    .collect();
                out.sort();
                out
            };
            let a = norm(overlay.run(q).unwrap());
            let b = norm(oracle.run(q).unwrap());
            prop_assert_eq!(a, b, "query {} diverges from oracle", q);
        }
    }
}
