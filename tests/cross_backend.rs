//! Cross-system equivalence: the overlay backend, the native store, the
//! Janus-like store, and the in-memory reference backend must all give the
//! same answers to the same Gremlin queries over the same generated
//! LinkBench graph. This is the correctness backbone behind the Figure 5/6
//! comparisons — a benchmark between systems is only meaningful if they
//! compute the same thing.

use std::sync::Arc;

use db2graph::core::{Db2Graph, StrategyConfig};
use db2graph::gremlin::memgraph::MemGraph;
use db2graph::gremlin::strategy::{IdentityRemoval, StrategyRegistry};
use db2graph::gremlin::{GValue, GraphBackend, ScriptRunner};
use db2graph::gstore::{JanusLoader, NativeLoader};
use db2graph::linkbench::{generate, materialize, overlay_config, to_elements, LinkBenchConfig};

struct Systems {
    data: db2graph::linkbench::GraphData,
    graph: Arc<Db2Graph>,
    native: db2graph::gstore::NativeGraphDb,
    janus: db2graph::gstore::JanusLikeDb,
    mem: MemGraph,
    registry: StrategyRegistry,
}

fn build(vertices: u64, seed: u64) -> Systems {
    let mut cfg = LinkBenchConfig::small().with_vertices(vertices);
    cfg.seed = seed;
    let data = generate(&cfg);
    let (db, _) = materialize(&data).unwrap();
    let graph = Db2Graph::open(db, &overlay_config()).unwrap();

    let (vs, es) = to_elements(&data);
    let mut nl = NativeLoader::new();
    let mut jl = JanusLoader::new();
    let mem = MemGraph::new();
    for v in &vs {
        nl.add_vertex(v.clone());
        jl.add_vertex(v.clone());
        mem.add_vertex(v.clone());
    }
    for e in &es {
        nl.add_edge(e.clone());
        jl.add_edge(e.clone());
        mem.add_edge(e.clone());
    }
    let native = nl.build(vs.len() + es.len());
    let janus = jl.build();

    let mut registry = StrategyRegistry::new();
    registry.add(Arc::new(IdentityRemoval));
    for s in StrategyConfig::default().build() {
        registry.add(s);
    }
    Systems { data, graph, native, janus, mem, registry }
}

impl Systems {
    fn run_all(&self, q: &str) -> Vec<Vec<String>> {
        let norm = |vs: Vec<GValue>| -> Vec<String> {
            let mut out: Vec<String> = vs
                .iter()
                .map(|v| match v {
                    GValue::Vertex(vx) => format!("v[{}]", vx.id),
                    GValue::Edge(e) => format!("e[{}->{}:{}]", e.src, e.dst, e.label),
                    other => other.to_string(),
                })
                .collect();
            out.sort();
            out
        };
        let backends: Vec<&dyn GraphBackend> = vec![&self.native, &self.janus, &self.mem];
        let mut results = vec![norm(self.graph.run(q).unwrap())];
        for b in backends {
            let runner = ScriptRunner::new(b).with_strategies(self.registry.clone());
            results.push(norm(runner.run(q).unwrap()));
        }
        results
    }

    fn assert_agree(&self, q: &str) {
        let results = self.run_all(q);
        let names = ["db2graph", "native", "janus", "memgraph"];
        for i in 1..results.len() {
            assert_eq!(
                results[0], results[i],
                "query {q}: {} disagrees with {}",
                names[i], names[0]
            );
        }
    }
}

#[test]
fn full_battery_agrees_across_systems() {
    let sys = build(400, 7);
    // Pick real parameters from the dataset so queries hit data.
    let hot = sys.data.links[0].clone();
    let cold = sys.data.nodes.last().unwrap().id;
    let queries = vec![
        "g.V().count()".to_string(),
        "g.E().count()".to_string(),
        format!("g.V({}).hasLabel('{}')", hot.id1, sys.data.vertex_label(hot.id1)),
        format!("g.V({}).outE('{}').count()", hot.id1, hot.label),
        format!("g.V({}).outE('{}')", hot.id1, hot.label),
        format!("g.V({}).outE('{}').filter(inV().id() == {})", hot.id1, hot.label, hot.id2),
        format!("g.V({}).out('{}').id()", hot.id1, hot.label),
        format!("g.V({}).in('{}').id()", hot.id2, hot.label),
        format!("g.V({}).both('{}').id()", hot.id1, hot.label),
        format!("g.V({cold}).outE().count()"),
        "g.V().hasLabel('vt3').count()".to_string(),
        "g.E().hasLabel('et2').count()".to_string(),
        format!("g.V({}).outE().has('visibility', 1).count()", hot.id1),
        format!("g.V({}).out().dedup().count()", hot.id1),
        format!("g.V({}).repeat(out('{}').dedup()).times(2).dedup().count()", hot.id1, hot.label),
        format!("g.V({}).outE('{}').values('version').sum()", hot.id1, hot.label),
        format!("g.V({}).outE('{}').inV().values('time').max()", hot.id1, hot.label),
        "g.V().values('version').mean()".to_string(),
        format!("g.V({}).out().order().by('time').limit(3).id()", hot.id1),
        format!("g.V({}).where(__.out('{}')).id()", hot.id1, hot.label),
        format!("g.V({}).not(out('zzz')).id()", hot.id1),
    ];
    for q in &queries {
        sys.assert_agree(q);
    }
}

#[test]
fn agreement_holds_on_a_second_seed() {
    let sys = build(250, 99);
    let link = sys.data.links[sys.data.links.len() / 2].clone();
    for q in [
        format!("g.V({}).outE('{}')", link.id1, link.label),
        format!("g.V({}).out('{}').values('data')", link.id1, link.label),
        format!("g.V({}).bothE().count()", link.id2),
        "g.V().hasLabel('vt0', 'vt1').count()".to_string(),
    ] {
        sys.assert_agree(&q);
    }
}

#[test]
fn multi_label_union_and_paths_agree() {
    let sys = build(200, 3);
    let link = sys.data.links[1].clone();
    sys.assert_agree(&format!(
        "g.V({}).union(out('{}'), in('{}')).dedup().count()",
        link.id1, link.label, link.label
    ));
    sys.assert_agree(&format!(
        "g.V({}).out('{}').path().count()",
        link.id1, link.label
    ));
}
