//! Integration coverage of the relational substrate on analytics-style
//! workloads: multi-way joins, grouped aggregation with HAVING, subqueries,
//! views with predicate pushdown, DISTINCT/ORDER/LIMIT interactions,
//! transactions under concurrent readers, and the Db2-style FETCH FIRST
//! syntax. The overlay generates simple SQL; these tests cover the parts a
//! human analyst writes around the `graphQuery` calls (Section 4).

use std::sync::Arc;

use db2graph::reldb::{Database, DbError, Value};

fn sales_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE region (rid BIGINT PRIMARY KEY, rname VARCHAR);
         CREATE TABLE store (sid BIGINT PRIMARY KEY, rid BIGINT, sname VARCHAR,
            FOREIGN KEY (rid) REFERENCES region(rid));
         CREATE TABLE sale (saleid BIGINT PRIMARY KEY, sid BIGINT, amount DOUBLE, items BIGINT,
            FOREIGN KEY (sid) REFERENCES store(sid));
         CREATE INDEX ix_store_rid ON store (rid);
         CREATE INDEX ix_sale_sid ON sale (sid);
         INSERT INTO region VALUES (1, 'north'), (2, 'south'), (3, 'empty');
         INSERT INTO store VALUES (10, 1, 'N1'), (11, 1, 'N2'), (12, 2, 'S1');
         INSERT INTO sale VALUES
            (100, 10, 25.0, 2), (101, 10, 75.0, 5), (102, 11, 10.0, 1),
            (103, 12, 200.0, 9), (104, 12, 50.0, 3), (105, 12, 30.0, 2);",
    )
    .unwrap();
    db
}

#[test]
fn three_way_join_with_group_and_having() {
    let db = sales_db();
    let rs = db
        .execute(
            "SELECT r.rname, COUNT(*) AS n, SUM(s.amount) AS total \
             FROM region r \
             JOIN store st ON r.rid = st.rid \
             JOIN sale s ON st.sid = s.sid \
             GROUP BY r.rname \
             HAVING SUM(s.amount) > 100 \
             ORDER BY total DESC",
        )
        .unwrap();
    // north = 110, south = 280: both clear the HAVING bar.
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.get(0, "rname"), Some(&Value::Varchar("south".into())));
    assert_eq!(rs.get(0, "n"), Some(&Value::Bigint(3)));
    assert_eq!(rs.get(0, "total"), Some(&Value::Double(280.0)));
    assert_eq!(rs.get(1, "rname"), Some(&Value::Varchar("north".into())));
    assert_eq!(rs.get(1, "total"), Some(&Value::Double(110.0)));
}

#[test]
fn left_join_preserves_childless_parents() {
    let db = sales_db();
    let rs = db
        .execute(
            "SELECT r.rname, COUNT(st.sid) AS stores \
             FROM region r LEFT JOIN store st ON r.rid = st.rid \
             GROUP BY r.rname ORDER BY r.rname",
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    // COUNT(col) skips the NULL-extended row.
    assert_eq!(rs.get(0, "rname"), Some(&Value::Varchar("empty".into())));
    assert_eq!(rs.get(0, "stores"), Some(&Value::Bigint(0)));
}

#[test]
fn subquery_and_distinct() {
    let db = sales_db();
    let rs = db
        .execute(
            "SELECT DISTINCT big.sid FROM \
             (SELECT sid, amount FROM sale WHERE amount >= 50) AS big \
             ORDER BY big.sid",
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::Bigint(10)], vec![Value::Bigint(12)]]
    );
}

#[test]
fn view_with_pushdown_uses_inner_index() {
    let db = sales_db();
    db.execute(
        "CREATE VIEW store_sales AS \
         SELECT st.sid AS sid, st.rid AS rid, s.amount AS amount \
         FROM store st JOIN sale s ON st.sid = s.sid",
    )
    .unwrap();
    let rs = db.execute("SELECT SUM(amount) FROM store_sales WHERE sid = 12").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Double(280.0)));
    // The pushdown is observable: the probe count rises instead of scans.
    let before = db.stats().snapshot();
    db.execute("SELECT amount FROM store_sales WHERE sid = 12").unwrap();
    let d = db.stats().snapshot().since(&before);
    assert!(d.index_probes >= 1, "{d:?}");
}

#[test]
fn scalar_functions_and_arithmetic_in_projection() {
    let db = sales_db();
    let rs = db
        .execute(
            "SELECT UPPER(sname) AS u, LENGTH(sname) AS l, amount * 2 + 1 AS a2 \
             FROM store st JOIN sale s ON st.sid = s.sid \
             WHERE s.saleid = 100",
        )
        .unwrap();
    assert_eq!(rs.get(0, "u"), Some(&Value::Varchar("N1".into())));
    assert_eq!(rs.get(0, "l"), Some(&Value::Bigint(2)));
    assert_eq!(rs.get(0, "a2"), Some(&Value::Double(51.0)));
}

#[test]
fn fetch_first_rows_only_and_between() {
    let db = sales_db();
    let rs = db
        .execute("SELECT saleid FROM sale ORDER BY amount DESC FETCH FIRST 2 ROWS ONLY")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Bigint(103)], vec![Value::Bigint(101)]]);
    let rs = db
        .execute("SELECT COUNT(*) FROM sale WHERE amount BETWEEN 25 AND 75")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bigint(4))); // 25, 75, 50, 30 (inclusive bounds)
}

#[test]
fn between_bounds_are_inclusive() {
    let db = sales_db();
    let rs = db
        .execute("SELECT saleid FROM sale WHERE amount BETWEEN 75 AND 75")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Bigint(101)]]);
}

#[test]
fn count_distinct_and_avg() {
    let db = sales_db();
    let rs = db
        .execute("SELECT COUNT(DISTINCT sid), AVG(items) FROM sale")
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Bigint(3));
    let avg = rs.rows[0][1].as_f64().unwrap();
    assert!((avg - 22.0 / 6.0).abs() < 1e-9);
}

#[test]
fn concurrent_readers_during_writes() {
    let db = sales_db();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let rs = db.execute("SELECT COUNT(*) FROM sale").unwrap();
                    let n = rs.scalar().unwrap().as_i64().unwrap();
                    assert!(n >= 6);
                }
            })
        })
        .collect();
    for i in 0..50 {
        db.execute(&format!("INSERT INTO sale VALUES ({}, 10, 1.0, 1)", 1000 + i)).unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }
    let rs = db.execute("SELECT COUNT(*) FROM sale").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bigint(56)));
}

#[test]
fn txn_spanning_multiple_tables_rolls_back_atomically() {
    let db = sales_db();
    let result: Result<(), DbError> = db.transaction(|db| {
        db.execute("INSERT INTO region VALUES (9, 'west')")?;
        db.execute("INSERT INTO store VALUES (90, 9, 'W1')")?;
        db.execute("UPDATE sale SET amount = 0 WHERE sid = 12")?;
        db.execute("DELETE FROM sale WHERE saleid = 100")?;
        Err(DbError::Execution("abort".into()))
    });
    assert!(result.is_err());
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM region").unwrap().scalar(),
        Some(&Value::Bigint(3))
    );
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM sale WHERE amount = 0").unwrap().scalar(),
        Some(&Value::Bigint(0))
    );
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM sale WHERE saleid = 100").unwrap().scalar(),
        Some(&Value::Bigint(1))
    );
}

#[test]
fn fk_violations_and_pk_duplicates_are_rejected() {
    let db = sales_db();
    let err = db.execute("INSERT INTO store VALUES (99, 777, 'X')").unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
    let err = db.execute("INSERT INTO region VALUES (1, 'dup')").unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)), "{err}");
}

#[test]
fn order_by_alias_and_multiple_keys() {
    let db = sales_db();
    let rs = db
        .execute(
            "SELECT sid, amount AS a FROM sale ORDER BY sid ASC, a DESC",
        )
        .unwrap();
    let got: Vec<(i64, f64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap()))
        .collect();
    assert_eq!(
        got,
        vec![(10, 75.0), (10, 25.0), (11, 10.0), (12, 200.0), (12, 50.0), (12, 30.0)]
    );
}

#[test]
fn in_list_or_not_and_is_null() {
    let db = sales_db();
    db.execute("INSERT INTO store VALUES (13, NULL, 'Homeless')").unwrap();
    let rs = db.execute("SELECT sname FROM store WHERE rid IS NULL").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Varchar("Homeless".into())));
    let rs = db
        .execute("SELECT COUNT(*) FROM store WHERE rid IN (1, 2) OR rid IS NULL")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bigint(4)));
    let rs = db
        .execute("SELECT COUNT(*) FROM store WHERE NOT (rid = 1)")
        .unwrap();
    // NULL rid row is unknown -> excluded by NOT as well.
    assert_eq!(rs.scalar(), Some(&Value::Bigint(1)));
}

#[test]
fn update_with_expression_and_index_maintenance() {
    let db = sales_db();
    db.execute("UPDATE sale SET amount = amount * 1.1 WHERE sid = 10").unwrap();
    let rs = db.execute("SELECT SUM(amount) FROM sale WHERE sid = 10").unwrap();
    let total = rs.scalar().unwrap().as_f64().unwrap();
    assert!((total - 110.0).abs() < 1e-9);
    // Move a sale to another store; the id1-style index must follow.
    db.execute("UPDATE sale SET sid = 11 WHERE saleid = 100").unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM sale WHERE sid = 11").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Bigint(2)));
    let plan = db.explain("SELECT * FROM sale WHERE sid = 11").unwrap();
    assert!(plan.contains("INDEX"), "{plan}");
}

#[test]
fn explain_renders_join_pipeline() {
    let db = sales_db();
    let plan = db
        .explain(
            "SELECT r.rname FROM region r JOIN store st ON r.rid = st.rid WHERE st.sid = 10",
        )
        .unwrap();
    assert!(plan.contains("HASH-JOIN"), "{plan}");
    assert!(plan.contains("FILTER"), "{plan}");
}
