//! Trace export and telemetry integration: Chrome trace-event JSON
//! well-formedness (validated with the repo's own `json.rs`), JSONL export,
//! drop-time export via `trace_path`, the slow-query log, and the telemetry
//! counters in `MetricsSnapshot`.
//!
//! The CI trace-smoke job runs an example with `DB2GRAPH_TRACE=<path>` and
//! then points `DB2GRAPH_TRACE_CHECK` at the emitted file; the gated
//! checker test at the bottom validates that externally produced file.

use std::sync::Arc;

use db2graph::core::json::Json;
use db2graph::core::{Db2Graph, ETableConfig, GraphOptions, OverlayConfig, VTableConfig};
use db2graph::reldb::Database;

fn people_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Person (pid BIGINT PRIMARY KEY, name VARCHAR);
         CREATE TABLE Knows (a BIGINT, b BIGINT,
            FOREIGN KEY (a) REFERENCES Person(pid),
            FOREIGN KEY (b) REFERENCES Person(pid));
         INSERT INTO Person VALUES (1, 'Ann'), (2, 'Bo'), (3, 'Cy');
         INSERT INTO Knows VALUES (1, 2), (2, 3), (1, 3);",
    )
    .unwrap();
    db
}

fn people_overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Person".into(),
            prefixed_id: true,
            id: "'person'::pid".into(),
            fix_label: true,
            label: "'person'".into(),
            properties: Some(vec!["name".into()]),
        }],
        e_tables: vec![ETableConfig {
            table_name: "Knows".into(),
            src_v_table: Some("Person".into()),
            src_v: "'person'::a".into(),
            dst_v_table: Some("Person".into()),
            dst_v: "'person'::b".into(),
            prefixed_edge_id: false,
            implicit_edge_id: true,
            id: None,
            fix_label: true,
            label: "'knows'".into(),
            properties: None,
        }],
    }
}

fn traced_graph() -> Arc<Db2Graph> {
    let options = GraphOptions { trace: Some(true), ..Default::default() };
    Db2Graph::open_with_options(people_db(), &people_overlay(), options).unwrap()
}

fn tmp_path(name: &str) -> String {
    let dir = std::env::temp_dir();
    dir.join(format!("db2graph-{}-{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Validate one Chrome trace-event JSON document: the object form with a
/// `traceEvents` array of complete ("X") events carrying the machine-
/// readable hierarchy in `args`, every parent id resolving to an event in
/// the same document. Returns the number of events.
fn check_chrome_trace(text: &str) -> usize {
    let doc = Json::parse(text).expect("trace file must parse as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents must be an array");
    assert!(!events.is_empty(), "trace must contain at least one event");
    let mut ids = std::collections::HashSet::new();
    for e in events {
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
            assert!(e.get(key).is_some(), "event missing '{key}': {e:?}");
        }
        assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
        let id = e
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(|v| v.as_u64())
            .expect("args.id must be a u64");
        ids.insert(id);
    }
    for e in events {
        if let Some(parent) = e.get("args").and_then(|a| a.get("parent")) {
            let parent = parent.as_u64().expect("args.parent must be a u64");
            assert!(ids.contains(&parent), "dangling parent id {parent}");
        }
    }
    events.len()
}

#[test]
fn export_trace_writes_wellformed_chrome_json() {
    let g = traced_graph();
    g.run("g.V().out('knows').values('name')").unwrap();
    g.run("g.V().count()").unwrap();
    let path = tmp_path("export.json");
    g.export_trace(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let n = check_chrome_trace(&text);
    assert!(n >= 4, "expected several spans, got {n}");

    // The hierarchy covers the layers: sql events parent (transitively)
    // under a step which parents under the query root.
    let doc = Json::parse(&text).unwrap();
    let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
    let cat = |e: &Json| e.get("cat").and_then(|c| c.as_str()).unwrap().to_string();
    let by_id: std::collections::HashMap<u64, &Json> = events
        .iter()
        .map(|e| (e.get("args").unwrap().get("id").unwrap().as_u64().unwrap(), e))
        .collect();
    let sql = events.iter().find(|e| cat(e) == "sql").expect("a sql span");
    let mut cursor = Some(sql);
    let mut chain = Vec::new();
    while let Some(e) = cursor {
        chain.push(cat(e));
        cursor = e
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(|p| p.as_u64())
            .and_then(|p| by_id.get(&p).copied());
    }
    assert!(chain.contains(&"step".to_string()), "sql ancestry lacks a step: {chain:?}");
    assert_eq!(chain.last().map(|s| s.as_str()), Some("query"), "{chain:?}");
}

#[test]
fn export_trace_jsonl_emits_one_object_per_line() {
    let g = traced_graph();
    g.run("g.V().count()").unwrap();
    let path = tmp_path("export.jsonl");
    g.export_trace_jsonl(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(text.lines().count() >= 2);
    for line in text.lines() {
        let obj = Json::parse(line).expect("each JSONL line parses");
        for key in ["id", "name", "kind", "start_nanos", "dur_nanos", "track", "attrs"] {
            assert!(obj.get(key).is_some(), "line missing '{key}': {line}");
        }
    }
}

#[test]
fn export_without_tracing_is_a_config_error() {
    let g = Db2Graph::open_with_options(
        people_db(),
        &people_overlay(),
        GraphOptions { trace: Some(false), ..Default::default() },
    )
    .unwrap();
    assert!(g.trace_sink().is_none());
    let err = g.export_trace(&tmp_path("never.json")).unwrap_err();
    assert!(err.to_string().contains("tracing is not enabled"), "{err}");
}

#[test]
fn trace_path_option_exports_on_drop() {
    let path = tmp_path("on-drop.json");
    {
        let options =
            GraphOptions { trace_path: Some(path.clone()), ..Default::default() };
        let g = Db2Graph::open_with_options(people_db(), &people_overlay(), options)
            .unwrap();
        // trace_path alone enables tracing.
        assert!(g.trace_sink().is_some());
        g.run("g.V().out('knows').count()").unwrap();
    } // last Arc drops here -> export fires
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    check_chrome_trace(&text);
}

#[test]
fn slow_query_log_retains_full_reports() {
    let options = GraphOptions {
        slow_query_nanos: Some(0), // everything is slow
        slow_log_capacity: Some(4),
        ..Default::default()
    };
    let g = Db2Graph::open_with_options(people_db(), &people_overlay(), options)
        .unwrap();
    g.run("g.V().count()").unwrap();
    g.run("g.V().out('knows').values('name')").unwrap();
    let slow = g.slow_queries();
    assert_eq!(slow.len(), 2);
    // Slowest first; each entry retains its full profile report.
    assert!(slow[0].wall_nanos >= slow[1].wall_nanos);
    for entry in &slow {
        assert!(!entry.report.steps.is_empty(), "entry lacks a report: {entry:?}");
        assert!(!entry.report.statements.is_empty());
    }
    let m = g.metrics();
    assert_eq!(m.slow_queries, 2);
    assert!(m.query_p99_nanos > 0, "query latency histogram must populate");
}

#[test]
fn metrics_surface_trace_counters() {
    let options = GraphOptions {
        trace: Some(true),
        trace_capacity: Some(8), // tiny ring: force drops
        ..Default::default()
    };
    let g = Db2Graph::open_with_options(people_db(), &people_overlay(), options)
        .unwrap();
    for _ in 0..4 {
        g.run("g.V().out('knows').values('name')").unwrap();
    }
    let m = g.metrics();
    assert_eq!(m.trace_spans, 8, "ring holds exactly its capacity");
    assert!(m.dropped_spans > 0, "wrapping must count drops: {m:?}");
    let sink = g.trace_sink().unwrap();
    assert_eq!(sink.dropped(), m.dropped_spans);
    assert!(sink.total() > 8);
}

/// CI hook: when `DB2GRAPH_TRACE_CHECK` names a file (produced by running
/// an example under `DB2GRAPH_TRACE`), validate it as a well-formed Chrome
/// trace. Skipped silently otherwise.
#[test]
fn validate_externally_emitted_trace_file() {
    let Ok(path) = std::env::var("DB2GRAPH_TRACE_CHECK") else { return };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("DB2GRAPH_TRACE_CHECK={path}: {e}"));
    let n = check_chrome_trace(&text);
    assert!(n > 0);
}
