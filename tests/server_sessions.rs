//! The persistent-connection serving path and its transaction sessions:
//! HTTP keep-alive (one TCP connection, many requests), pipelining,
//! cross-request sessions via `X-Db2Graph-Session`, the idle-session
//! reaper, and the protocol hardening that rode along (conflicting
//! `Content-Length`, `Allow` on 405, 501 for `Transfer-Encoding`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use db2graph::core::json::Json;
use db2graph::core::{Db2Graph, GraphOptions, OverlayConfig, VTableConfig};
use db2graph::reldb::Database;
use db2graph::server::{http_call, GraphServer, HttpClient, ServerConfig};

const ACCOUNTS: i64 = 8;
const TOTAL: u64 = ACCOUNTS as u64 * 100;
const TIMEOUT: Duration = Duration::from_secs(10);

fn account_graph() -> (Arc<Database>, Arc<Db2Graph>) {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE Account (aid BIGINT PRIMARY KEY, balance BIGINT)").unwrap();
    let rows: Vec<String> = (0..ACCOUNTS).map(|i| format!("({i}, 100)")).collect();
    db.execute(&format!("INSERT INTO Account VALUES {}", rows.join(", "))).unwrap();
    let overlay = OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Account".into(),
            prefixed_id: true,
            id: "'acct'::aid".into(),
            fix_label: true,
            label: "'acct'".into(),
            properties: Some(vec!["balance".into()]),
        }],
        e_tables: vec![],
    };
    let graph = Db2Graph::open_with_options(db.clone(), &overlay, GraphOptions::default()).unwrap();
    (db, graph)
}

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 16,
        query_timeout: Some(Duration::from_secs(5)),
        read_timeout: Duration::from_secs(2),
        max_header_bytes: 4096,
        max_body_bytes: 65536,
        vacuum_interval: Some(Duration::from_millis(20)),
        checkpoint_interval: None,
        data_dir: None,
        durability: db2graph::reldb::Durability::Always,
        sql_endpoint: true,
        ..Default::default()
    }
}

fn summed_balance(body: &str) -> u64 {
    Json::parse(body)
        .unwrap_or_else(|e| panic!("response not JSON ({e}): {body}"))
        .get("result")
        .and_then(|r| r.as_array())
        .and_then(|a| a.first())
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no numeric result in {body}"))
}

// ------------------------------------------------------- keep-alive

/// The tentpole's core claim: one TCP connection serves a long sequence
/// of requests. 120 sequential queries arrive on a single connection —
/// the server accepts exactly once, admits 120 requests, and counts 119
/// keep-alive reuses; the drain invariant holds at request grain.
#[test]
fn one_connection_serves_a_hundred_sequential_requests() {
    let (_db, graph) = account_graph();
    let handle = GraphServer::start(graph, config()).unwrap();
    let addr = handle.addr();

    let mut client = HttpClient::new(addr, TIMEOUT);
    for i in 0..120usize {
        let r = client.call("POST", "/query", "g.V().values('balance').sum()").unwrap();
        assert_eq!(r.status, 200, "request {i}: {}", r.body);
        assert_eq!(summed_balance(&r.body), TOTAL);
        assert!(client.connected(), "request {i} lost the connection");
    }
    let m = handle.metrics();
    assert_eq!(m.accepted(), 1, "all 120 requests rode one accepted connection");
    assert_eq!(m.admitted(), 120);
    assert_eq!(m.keepalive_reuses(), 119);

    let report = handle.shutdown();
    assert_eq!(report.completed, report.admitted, "request-grain drain invariant");
}

/// A connection that exhausts its request budget is closed politely
/// (`Connection: close` on the last response) and the client reconnects
/// transparently.
#[test]
fn keepalive_budget_closes_politely_and_client_reconnects() {
    let (_db, graph) = account_graph();
    let cfg = ServerConfig { keepalive_requests: 3, ..config() };
    let handle = GraphServer::start(graph, cfg).unwrap();
    let addr = handle.addr();

    let mut client = HttpClient::new(addr, TIMEOUT);
    for i in 0..9usize {
        let r = client.call("GET", "/healthz", "").unwrap();
        assert_eq!(r.status, 200, "request {i}");
    }
    // 9 requests over a budget of 3 = exactly 3 connections.
    assert_eq!(handle.metrics().accepted(), 3);
    let report = handle.shutdown();
    assert_eq!(report.completed, report.admitted);
}

/// Two pipelined requests written in a single `write_all` are both
/// answered in order on the same connection — the surplus bytes after
/// request one become request two, not a 400.
#[test]
fn pipelined_requests_in_one_write_are_served_in_order() {
    let (_db, graph) = account_graph();
    let handle = GraphServer::start(graph, config()).unwrap();
    let addr = handle.addr();

    let body1 = "g.V().count()";
    let body2 = "g.V().values('balance').sum()";
    let wire = format!(
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body1}\
         POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body2}",
        body1.len(),
        body2.len()
    );
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.write_all(wire.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();

    let starts: Vec<usize> = raw.match_indices("HTTP/1.1 200").map(|(i, _)| i).collect();
    assert_eq!(starts.len(), 2, "two pipelined requests, two responses: {raw}");
    let first = &raw[..starts[1]];
    let second = &raw[starts[1]..];
    assert!(first.contains("\"result\":[8]"), "first response answers request one: {first}");
    let body2_start = second.find("\r\n\r\n").unwrap() + 4;
    assert_eq!(summed_balance(&second[body2_start..]), TOTAL);
    assert_eq!(handle.metrics().accepted(), 1);
    let report = handle.shutdown();
    assert_eq!(report.completed, report.admitted);
}

// --------------------------------------------------------- sessions

fn session_headers(sid: &str) -> Vec<(&str, &str)> {
    vec![("X-Db2Graph-Session", sid)]
}

fn begin_session(client: &mut HttpClient) -> String {
    let r = client.call("POST", "/session", "").unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    Json::parse(&r.body)
        .unwrap()
        .get("session")
        .and_then(Json::as_str)
        .expect("session id in begin response")
        .to_string()
}

/// A session transaction survives across separate HTTP requests: begin,
/// three writes in three requests, reads inside the session see the
/// uncommitted state while plain requests do not, then commit publishes
/// everything atomically.
#[test]
fn session_spans_multiple_requests_then_commits() {
    let (_db, graph) = account_graph();
    let handle = GraphServer::start(graph, config()).unwrap();
    let addr = handle.addr();
    let mut client = HttpClient::new(addr, TIMEOUT);

    let sid = begin_session(&mut client);
    let hdrs = session_headers(&sid);

    // Three separate requests, one transaction: move 5 from account 0 to
    // account 1 in two statements, then read the in-session sum.
    for sql in [
        "UPDATE Account SET balance = balance - 5 WHERE aid = 0",
        "UPDATE Account SET balance = balance + 5 WHERE aid = 1",
    ] {
        let r = client
            .call_bytes_with_headers("POST", "/sql", sql.as_bytes(), &hdrs)
            .unwrap();
        assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.bytes));
    }
    let r = client
        .call_bytes_with_headers(
            "POST",
            "/query",
            b"g.V().values('balance').sum()",
            &hdrs,
        )
        .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(summed_balance(&String::from_utf8_lossy(&r.bytes)), TOTAL);

    // Inside the session, account 1 already holds 105…
    let r = client
        .call_bytes_with_headers(
            "POST",
            "/sql",
            b"SELECT balance FROM Account WHERE aid = 1",
            &hdrs,
        )
        .unwrap();
    assert!(
        String::from_utf8_lossy(&r.bytes).contains("105"),
        "in-session read sees the session's writes: {}",
        String::from_utf8_lossy(&r.bytes)
    );
    // …while a plain request (different connection, no session header)
    // still sees the committed 100.
    let plain = http_call(addr, "POST", "/sql", "SELECT balance FROM Account WHERE aid = 1", TIMEOUT)
        .unwrap();
    assert!(plain.body.contains("100"), "uncommitted writes must not leak: {}", plain.body);

    let r = client
        .call_bytes_with_headers("POST", "/session/commit", b"", &hdrs)
        .unwrap();
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.bytes));

    // Now everyone sees it.
    let plain = http_call(addr, "POST", "/sql", "SELECT balance FROM Account WHERE aid = 1", TIMEOUT)
        .unwrap();
    assert!(plain.body.contains("105"), "{}", plain.body);

    // The session is gone: a second commit is 404.
    let r = client
        .call_bytes_with_headers("POST", "/session/commit", b"", &hdrs)
        .unwrap();
    assert_eq!(r.status, 404);

    let m = handle.metrics();
    assert_eq!((m.sessions_began(), m.sessions_committed(), m.sessions_open()), (1, 1, 0));
    handle.shutdown();
}

/// An explicit rollback discards the session's writes.
#[test]
fn session_rollback_discards_writes() {
    let (_db, graph) = account_graph();
    let handle = GraphServer::start(graph, config()).unwrap();
    let addr = handle.addr();
    let mut client = HttpClient::new(addr, TIMEOUT);

    let sid = begin_session(&mut client);
    let hdrs = session_headers(&sid);
    let r = client
        .call_bytes_with_headers(
            "POST",
            "/sql",
            b"UPDATE Account SET balance = balance - 42 WHERE aid = 3",
            &hdrs,
        )
        .unwrap();
    assert_eq!(r.status, 200);
    let r = client
        .call_bytes_with_headers("POST", "/session/rollback", b"", &hdrs)
        .unwrap();
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.bytes));

    let plain = http_call(addr, "POST", "/query", "g.V().values('balance').sum()", TIMEOUT).unwrap();
    assert_eq!(summed_balance(&plain.body), TOTAL, "rollback restored the balance");
    assert_eq!(handle.metrics().sessions_rolled_back(), 1);
    handle.shutdown();
}

/// The reaper rolls back a session its client abandoned: the half-done
/// transfer vanishes (balances conserve), the metrics and the session id
/// both report the reap.
#[test]
fn abandoned_session_is_reaped_and_rolled_back() {
    let (_db, graph) = account_graph();
    let cfg = ServerConfig { session_idle: Duration::from_millis(150), ..config() };
    let handle = GraphServer::start(graph, cfg).unwrap();
    let addr = handle.addr();
    let mut client = HttpClient::new(addr, TIMEOUT);

    let sid = begin_session(&mut client);
    let hdrs = session_headers(&sid);
    // Half a transfer: debit without the matching credit. If the reaper
    // failed to roll back, the committed total would be short 7.
    let r = client
        .call_bytes_with_headers(
            "POST",
            "/sql",
            b"UPDATE Account SET balance = balance - 7 WHERE aid = 2",
            &hdrs,
        )
        .unwrap();
    assert_eq!(r.status, 200);

    // Abandon it past the idle deadline; the reaper ticks at idle/4.
    std::thread::sleep(Duration::from_millis(600));

    assert!(handle.metrics().sessions_reaped() >= 1, "reaper fired");
    assert_eq!(handle.metrics().sessions_open(), 0);
    let plain = http_call(addr, "POST", "/query", "g.V().values('balance').sum()", TIMEOUT).unwrap();
    assert_eq!(summed_balance(&plain.body), TOTAL, "reap rolled the half-transfer back");
    // The id is dead: committing it now is 404.
    let r = client
        .call_bytes_with_headers("POST", "/session/commit", b"", &hdrs)
        .unwrap();
    assert_eq!(r.status, 404, "{}", String::from_utf8_lossy(&r.bytes));

    // The reap is visible in the event stream, tagged with the id.
    let ev = http_call(addr, "GET", "/events", "", TIMEOUT).unwrap();
    assert!(ev.body.contains("session_reaped") && ev.body.contains(&sid), "{}", ev.body);
    handle.shutdown();
}

/// Session endpoints without the header, or with a bogus id, answer with
/// structured errors rather than panics or hangs.
#[test]
fn session_misuse_answers_structured_errors() {
    let (_db, graph) = account_graph();
    let handle = GraphServer::start(graph, config()).unwrap();
    let addr = handle.addr();

    let r = http_call(addr, "POST", "/session/commit", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    let r = http_call_with_session(addr, "/session/rollback", "s-0-999");
    assert_eq!(r.0, 404, "{}", r.1);
    let r = http_call_with_session(addr, "/query", "s-0-999");
    assert_eq!(r.0, 404, "{}", r.1);
    handle.shutdown();
}

fn http_call_with_session(addr: std::net::SocketAddr, path: &str, sid: &str) -> (u16, String) {
    let body = if path == "/query" { "g.V().count()" } else { "" };
    let r = db2graph::server::http_call_bytes_with_headers(
        addr,
        "POST",
        path,
        body.as_bytes(),
        &[("X-Db2Graph-Session", sid)],
        TIMEOUT,
    )
    .unwrap();
    (r.status, String::from_utf8_lossy(&r.bytes).into_owned())
}

// ------------------------------------------------ protocol hardening

/// Raw one-shot exchange helper for malformed-request tests.
fn raw_exchange(addr: std::net::SocketAddr, wire: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.write_all(wire.as_bytes()).unwrap();
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    raw
}

/// Conflicting duplicate `Content-Length` headers are the classic
/// request-smuggling vector: reject with a structured 400. Identical
/// repeats stay tolerated.
#[test]
fn conflicting_content_lengths_are_rejected() {
    let (_db, graph) = account_graph();
    let handle = GraphServer::start(graph, config()).unwrap();
    let addr = handle.addr();

    let raw = raw_exchange(
        addr,
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\nContent-Length: 7\r\n\
         Connection: close\r\n\r\nabcd",
    );
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("conflicting content-length"), "{raw}");

    let body = "g.V().count()";
    let raw = raw_exchange(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {n}\r\nContent-Length: {n}\r\n\
             Connection: close\r\n\r\n{body}",
            n = body.len()
        ),
    );
    assert!(raw.starts_with("HTTP/1.1 200"), "identical repeats are benign: {raw}");
    handle.shutdown();
}

/// `Transfer-Encoding` is honestly unimplemented: 501, not a mangled
/// read. And a known path with the wrong method names its allowed
/// methods.
#[test]
fn transfer_encoding_gets_501_and_405_names_allowed_methods() {
    let (_db, graph) = account_graph();
    let handle = GraphServer::start(graph, config()).unwrap();
    let addr = handle.addr();

    let raw = raw_exchange(
        addr,
        "POST /query HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\
         Connection: close\r\n\r\n0\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 501 Not Implemented"), "{raw}");

    let r = http_call(addr, "GET", "/query", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("POST"), "405 names the allowed methods");
    let r = http_call(addr, "POST", "/metrics", "", TIMEOUT).unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET, HEAD"));
    handle.shutdown();
}
