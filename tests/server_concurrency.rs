//! Serving-layer stress: real sockets, concurrent writers, admission
//! control, and graceful shutdown.
//!
//! * 16 mixed clients — 12 HTTP readers and 4 transactional SQL writers —
//!   hammer one database; every HTTP response must observe the conserved
//!   total balance, proving each request is pinned to one committed
//!   snapshot end to end (the Gremlin wire surface is read-only, so the
//!   writers mutate through SQL transactions, exactly the paper's
//!   synergistic split).
//! * With one worker and a one-deep queue, excess clients are shed with
//!   429 — never queued unboundedly, never dropped silently.
//! * Shutdown mid-load is complete-or-nothing: a client either gets a
//!   full, valid response or provably nothing, and the drain report shows
//!   `completed == admitted`.
//!
//! Scale knob: `DB2GRAPH_STRESS_ROUNDS` (writer iterations, default 200).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use db2graph::core::json::Json;
use db2graph::core::{Db2Graph, GraphOptions, OverlayConfig, VTableConfig};
use db2graph::reldb::Database;
use db2graph::server::{http_call, GraphServer, ServerConfig};

const ACCOUNTS: i64 = 16;
const TOTAL: u64 = ACCOUNTS as u64 * 100;
const TIMEOUT: Duration = Duration::from_secs(10);

fn stress_rounds() -> usize {
    std::env::var("DB2GRAPH_STRESS_ROUNDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(200)
}

fn account_graph() -> (Arc<Database>, Arc<Db2Graph>) {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE Account (aid BIGINT PRIMARY KEY, balance BIGINT)").unwrap();
    let rows: Vec<String> = (0..ACCOUNTS).map(|i| format!("({i}, 100)")).collect();
    db.execute(&format!("INSERT INTO Account VALUES {}", rows.join(", "))).unwrap();
    let overlay = OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Account".into(),
            prefixed_id: true,
            id: "'acct'::aid".into(),
            fix_label: true,
            label: "'acct'".into(),
            properties: Some(vec!["balance".into()]),
        }],
        e_tables: vec![],
    };
    let options = GraphOptions { threads: Some(2), ..Default::default() };
    let graph = Db2Graph::open_with_options(db.clone(), &overlay, options).unwrap();
    (db, graph)
}

fn config(workers: usize, queue_depth: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        query_timeout: Some(Duration::from_secs(10)),
        read_timeout: Duration::from_secs(5),
        max_header_bytes: 8192,
        max_body_bytes: 65536,
        vacuum_interval: Some(Duration::from_millis(20)),
        checkpoint_interval: None,
        data_dir: None,
        durability: db2graph::reldb::Durability::Always,
        sql_endpoint: false,
        ..Default::default()
    }
}

/// Extract the summed balance from a `/query` response body.
fn summed_balance(body: &str) -> u64 {
    Json::parse(body)
        .unwrap_or_else(|e| panic!("response not JSON ({e}): {body}"))
        .get("result")
        .and_then(|r| r.as_array())
        .and_then(|a| a.first())
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no numeric result in {body}"))
}

/// 12 socket readers assert value conservation on every response while 4
/// writer threads transfer balances transactionally. The vacuum daemon
/// churns underneath the whole time.
#[test]
fn sixteen_mixed_clients_observe_one_committed_state_each() {
    let (db, graph) = account_graph();
    let handle = GraphServer::start(graph, config(8, 32)).unwrap();
    let addr = handle.addr();

    let rounds = stress_rounds();
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..4usize)
            .map(|w| {
                let db = db.clone();
                s.spawn(move || {
                    for r in 0..rounds {
                        let from = (r as i64 + w as i64) % ACCOUNTS;
                        let to = (r as i64 * 7 + w as i64 * 3 + 1) % ACCOUNTS;
                        db.transaction(|db| {
                            db.execute(&format!(
                                "UPDATE Account SET balance = balance - 1 WHERE aid = {from}"
                            ))?;
                            db.execute(&format!(
                                "UPDATE Account SET balance = balance + 1 WHERE aid = {to}"
                            ))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for _ in 0..12usize {
            let stop = stop.clone();
            let reads = reads.clone();
            s.spawn(move || {
                let mut looked = false;
                while !looked || !stop.load(Ordering::Relaxed) {
                    let r = http_call(
                        addr,
                        "POST",
                        "/query",
                        "g.V().values('balance').sum()",
                        TIMEOUT,
                    )
                    .expect("reader request failed");
                    assert_eq!(r.status, 200, "{}", r.body);
                    assert_eq!(
                        summed_balance(&r.body),
                        TOTAL,
                        "an HTTP response observed a half-applied transfer"
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                    looked = true;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(reads.load(Ordering::Relaxed) >= 12, "every reader completed at least one read");

    // Quiesced end state conserves, and the daemon actually reclaimed the
    // update churn (16 accounts × 4 writers × rounds of dead versions).
    let r = http_call(addr, "POST", "/query", "g.V().values('balance').sum()", TIMEOUT).unwrap();
    assert_eq!(summed_balance(&r.body), TOTAL);
    let m = http_call(addr, "GET", "/metrics", "", TIMEOUT).unwrap();
    let j = Json::parse(&m.body).unwrap();
    assert!(
        j.get("graph").unwrap().get("vacuumed_versions").and_then(Json::as_u64).unwrap() > 0,
        "vacuum daemon reclaimed superseded versions during churn"
    );

    let report = handle.shutdown();
    assert_eq!(report.completed, report.admitted);
    assert_eq!(report.rejected, 0, "12 clients over 8 workers + depth-32 queue never saturate");
}

/// Admission control, deterministically: one worker held busy by a
/// stalled connection, a one-deep queue filled by a second — every
/// further client must be shed with 429 while nothing is dropped
/// silently.
#[test]
fn saturated_server_sheds_excess_clients_with_429() {
    let (_db, graph) = account_graph();
    let mut cfg = config(1, 1);
    cfg.read_timeout = Duration::from_secs(3);
    let handle = GraphServer::start(graph, cfg).unwrap();
    let addr = handle.addr();

    // Occupy the single worker: connect and send nothing. The worker
    // blocks in its read until the 3 s read timeout.
    let hold_worker = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    // Fill the one queue slot the same way.
    let hold_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Worker busy + queue full ⇒ every further arrival is shed — and
    // every shed carries an honest, finite `Retry-After` hint.
    for i in 0..5 {
        let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT)
            .unwrap_or_else(|e| panic!("shed client {i} got no response: {e}"));
        assert_eq!(r.status, 429, "client {i}: {}", r.body);
        let body = Json::parse(&r.body).unwrap();
        assert!(body.get("error").is_some());
        let hint: u64 = r
            .header("retry-after")
            .unwrap_or_else(|| panic!("shed client {i} got no Retry-After header"))
            .parse()
            .expect("Retry-After is an integer number of seconds");
        assert!((1..=60).contains(&hint), "Retry-After {hint} outside [1, 60]");
        assert_eq!(body.get("retry_after_seconds").and_then(Json::as_u64), Some(hint));
    }
    assert!(handle.metrics().rejected() >= 5);
    assert!(handle.metrics().retry_after_hints() >= 5, "every shed computed a hint");

    // Once the stalled connections age out, capacity returns.
    drop(hold_worker);
    drop(hold_queue);
    std::thread::sleep(Duration::from_millis(100));
    let r = http_call(addr, "POST", "/query", "g.V().count()", TIMEOUT).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    let report = handle.shutdown();
    assert_eq!(report.completed, report.admitted);
    assert!(report.rejected >= 5);
}

/// One raw request/response exchange, returning everything the server
/// sent. `None` means the connection yielded zero bytes (refused mid-dial
/// or dropped before admission) — the acceptable shutdown outcome.
fn raw_post(addr: SocketAddr, path: &str, body: &str) -> Option<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(req.as_bytes()).is_err() {
        return None; // never reached the server's request loop
    }
    let mut bytes = Vec::new();
    match stream.read_to_end(&mut bytes) {
        Ok(_) => Some(bytes),
        // A reset with zero bytes is "provably nothing"; a reset after
        // bytes arrived would be a torn response — surface it.
        Err(_) if bytes.is_empty() => None,
        Err(e) => panic!("connection torn mid-response after {} bytes: {e}", bytes.len()),
    }
}

/// Assert `bytes` is one complete HTTP response: status 200, a
/// Content-Length matching the actual body, and a conserved balance.
fn assert_complete_response(bytes: &[u8]) {
    let text = std::str::from_utf8(bytes).expect("response is UTF-8");
    let head_end = text.find("\r\n\r\n").expect("response has a full header block");
    let (head, body) = (&text[..head_end], &text[head_end + 4..]);
    assert!(head.starts_with("HTTP/1.1 200"), "expected 200, got {head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
        .expect("content-length present")
        .trim()
        .parse()
        .unwrap();
    assert_eq!(body.len(), content_length, "body truncated");
    assert_eq!(summed_balance(body), TOTAL);
}

/// Shutdown fires while clients and writers are mid-load. Every client
/// observes complete-or-nothing; the drain report proves no admitted
/// connection was abandoned.
#[test]
fn shutdown_mid_load_drains_admitted_work_completely() {
    let (db, graph) = account_graph();
    let handle = GraphServer::start(graph, config(2, 16)).unwrap();
    let addr = handle.addr();

    let stop_writers = Arc::new(AtomicBool::new(false));
    let full_responses = Arc::new(AtomicUsize::new(0));
    let empty_outcomes = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..2usize {
            let db = db.clone();
            let stop = stop_writers.clone();
            s.spawn(move || {
                let mut r = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let from = r % ACCOUNTS;
                    let to = (r * 5 + 3) % ACCOUNTS;
                    db.transaction(|db| {
                        db.execute(&format!(
                            "UPDATE Account SET balance = balance - 2 WHERE aid = {from}"
                        ))?;
                        db.execute(&format!(
                            "UPDATE Account SET balance = balance + 2 WHERE aid = {to}"
                        ))?;
                        Ok(())
                    })
                    .unwrap();
                    r += 1;
                }
            });
        }
        let clients: Vec<_> = (0..8usize)
            .map(|_| {
                let full = full_responses.clone();
                let empty = empty_outcomes.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        match raw_post(addr, "/query", "g.V().values('balance').sum()") {
                            Some(bytes) => {
                                assert_complete_response(&bytes);
                                full.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                // Listener gone or connection un-admitted:
                                // the server is shutting down; stop dialing.
                                empty.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                })
            })
            .collect();

        // Let the load establish, then pull the plug mid-flight.
        std::thread::sleep(Duration::from_millis(250));
        let report = handle.shutdown();
        assert_eq!(
            report.completed, report.admitted,
            "an admitted connection was dropped without a response"
        );

        for c in clients {
            c.join().unwrap();
        }
        stop_writers.store(true, Ordering::Relaxed);
    });

    assert!(
        full_responses.load(Ordering::Relaxed) >= 8,
        "load was established before shutdown"
    );
    // The database outlives the server: the final committed state still
    // conserves the total.
    let sum = db
        .execute("SELECT SUM(balance) FROM Account")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(sum as u64, TOTAL);
}
