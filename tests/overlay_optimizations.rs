//! Targeted tests for each of the paper's data-dependent runtime
//! optimizations (Section 6.3) and the SQL Dialect module's workload
//! machinery (Section 6.1), asserting their observable effects through the
//! overlay statistics counters.

use std::sync::Arc;

use db2graph::core::{Db2Graph, ETableConfig, OverlayConfig, VTableConfig};
use db2graph::gremlin::GValue;
use db2graph::reldb::Database;

/// A multi-table social schema: two vertex tables with prefixed ids, one
/// edge table with declared endpoint tables, one without.
fn social_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Person (pid BIGINT PRIMARY KEY, name VARCHAR, age BIGINT);
         CREATE TABLE Company (cid BIGINT PRIMARY KEY, cname VARCHAR, sector VARCHAR);
         CREATE TABLE WorksAt (pid BIGINT, cid BIGINT, since BIGINT,
            FOREIGN KEY (pid) REFERENCES Person(pid),
            FOREIGN KEY (cid) REFERENCES Company(cid));
         CREATE TABLE Knows (a BIGINT, b BIGINT, metIn VARCHAR,
            FOREIGN KEY (a) REFERENCES Person(pid),
            FOREIGN KEY (b) REFERENCES Person(pid));
         CREATE INDEX ix_worksat_pid ON WorksAt (pid);
         CREATE INDEX ix_worksat_cid ON WorksAt (cid);
         CREATE INDEX ix_knows_a ON Knows (a);
         CREATE INDEX ix_knows_b ON Knows (b);
         INSERT INTO Person VALUES (1, 'Ann', 34), (2, 'Bo', 28), (3, 'Cy', 45), (4, 'Di', 31);
         INSERT INTO Company VALUES (1, 'Initech', 'tech'), (2, 'Globex', 'energy');
         INSERT INTO WorksAt VALUES (1, 1, 2015), (2, 1, 2020), (3, 2, 2010);
         INSERT INTO Knows VALUES (1, 2, 'US'), (2, 3, 'DE'), (1, 3, 'US'), (3, 4, 'FR');",
    )
    .unwrap();
    db
}

fn social_overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![
            VTableConfig {
                table_name: "Person".into(),
                prefixed_id: true,
                id: "'person'::pid".into(),
                fix_label: true,
                label: "'person'".into(),
                properties: Some(vec!["name".into(), "age".into()]),
            },
            VTableConfig {
                table_name: "Company".into(),
                prefixed_id: true,
                id: "'company'::cid".into(),
                fix_label: true,
                label: "'company'".into(),
                properties: Some(vec!["cname".into(), "sector".into()]),
            },
        ],
        e_tables: vec![
            ETableConfig {
                table_name: "WorksAt".into(),
                src_v_table: Some("Person".into()),
                src_v: "'person'::pid".into(),
                dst_v_table: Some("Company".into()),
                dst_v: "'company'::cid".into(),
                prefixed_edge_id: false,
                implicit_edge_id: true,
                id: None,
                fix_label: true,
                label: "'worksAt'".into(),
                properties: Some(vec!["since".into()]),
            },
            ETableConfig {
                table_name: "Knows".into(),
                src_v_table: Some("Person".into()),
                src_v: "'person'::a".into(),
                dst_v_table: Some("Person".into()),
                dst_v: "'person'::b".into(),
                prefixed_edge_id: false,
                implicit_edge_id: true,
                id: None,
                fix_label: true,
                label: "'knows'".into(),
                properties: Some(vec!["metIn".into()]),
            },
        ],
    }
}

#[test]
fn prefixed_ids_pin_tables_and_decompose() {
    let db = social_db();
    let g = Db2Graph::open(db, &social_overlay()).unwrap();
    let before = g.stats();
    let out = g.run("g.V('person::1').values('name')").unwrap();
    assert_eq!(out, vec![GValue::Str("Ann".into())]);
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1, "prefix must pin Person only: {d:?}");
    // Wrong-prefix ids return nothing and touch no table at all.
    let before = g.stats();
    assert!(g.run("g.V('warehouse::1')").unwrap().is_empty());
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 0, "{d:?}");
    assert_eq!(d.tables_pruned, 2, "{d:?}");
}

#[test]
fn src_dst_table_links_prune_edge_tables() {
    let db = social_db();
    let g = Db2Graph::open(db, &social_overlay()).unwrap();
    // out('worksAt') from a person: label pruning leaves WorksAt only.
    let before = g.stats();
    let out = g.run("g.V('person::1').out('worksAt').values('cname')").unwrap();
    assert_eq!(out, vec![GValue::Str("Initech".into())]);
    let d = g.stats().since(&before);
    // 1 SQL for Person (V(id)), wait - mutation rewrites V(id).out into
    // edge scan + endpoint lookup: 1 SQL on WorksAt + 1 on Company.
    assert_eq!(d.sql_queries, 2, "{d:?}");
    // in('worksAt') from a company touches WorksAt by dst + Person lookup.
    let before = g.stats();
    let out = g.run("g.V('company::1').in('worksAt').dedup().count()").unwrap();
    assert_eq!(out, vec![GValue::Long(2)]);
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 2, "{d:?}");
}

#[test]
fn property_name_elimination() {
    let db = social_db();
    let g = Db2Graph::open(db, &social_overlay()).unwrap();
    // 'sector' only exists on Company: Person is eliminated without SQL.
    let before = g.stats();
    let out = g.run("g.V().has('sector', 'tech').count()").unwrap();
    assert_eq!(out, vec![GValue::Long(1)]);
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1, "{d:?}");
    assert!(d.tables_pruned >= 1, "{d:?}");
    // Projection pushdown on a single-table property also prunes.
    let before = g.stats();
    let out = g.run("g.V().values('sector').dedup().count()").unwrap();
    assert_eq!(out, vec![GValue::Long(2)]);
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1, "{d:?}");
}

#[test]
fn label_elimination_on_edges() {
    let db = social_db();
    let g = Db2Graph::open(db, &social_overlay()).unwrap();
    let before = g.stats();
    let out = g.run("g.E().hasLabel('knows').count()").unwrap();
    assert_eq!(out, vec![GValue::Long(4)]);
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1, "only Knows queried: {d:?}");
}

#[test]
fn combined_strategy_example_from_section_6_2() {
    // The paper's end-to-end example:
    // g.V(ids).outE().has('metIn','US').count()
    //   -> SELECT COUNT(*) FROM Knows WHERE a IN (...) AND metIn = 'US'
    let db = social_db();
    let g = Db2Graph::open(db, &social_overlay()).unwrap();
    let before = g.stats();
    let out = g
        .run("g.V('person::1', 'person::2').outE().has('metIn', 'US').count()")
        .unwrap();
    assert_eq!(out, vec![GValue::Long(2)]);
    let d = g.stats().since(&before);
    // metIn exists only on Knows -> WorksAt pruned; single aggregate SQL.
    assert_eq!(d.sql_queries, 1, "{d:?}");
    let plan = g
        .explain("g.V('person::1').outE().has('metIn', 'US').count()")
        .unwrap();
    assert!(plan.contains("src_ids"), "{plan}");
    assert!(plan.contains("agg"), "{plan}");
    assert!(plan.contains("preds"), "{plan}");
}

#[test]
fn vertex_from_edge_shortcut_when_table_is_both() {
    // A fact table serving as vertex AND edge table: Order rows are both
    // `order` vertices and person->order edges... here modelled as the
    // paper describes for e.outV(): edge table == src_v_table with vertex
    // properties subsumed by edge properties.
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Person (pid BIGINT PRIMARY KEY, name VARCHAR);
         CREATE TABLE Orders (oid BIGINT PRIMARY KEY, pid BIGINT, total DOUBLE,
            FOREIGN KEY (pid) REFERENCES Person(pid));
         INSERT INTO Person VALUES (1, 'Ann'), (2, 'Bo');
         INSERT INTO Orders VALUES (100, 1, 30.5), (101, 1, 99.0), (102, 2, 12.0);",
    )
    .unwrap();
    let cfg = OverlayConfig {
        v_tables: vec![
            VTableConfig {
                table_name: "Person".into(),
                prefixed_id: true,
                id: "'person'::pid".into(),
                fix_label: true,
                label: "'person'".into(),
                properties: Some(vec!["name".into()]),
            },
            VTableConfig {
                table_name: "Orders".into(),
                prefixed_id: true,
                id: "'order'::oid".into(),
                fix_label: true,
                label: "'order'".into(),
                properties: Some(vec!["total".into()]),
            },
        ],
        e_tables: vec![ETableConfig {
            table_name: "Orders".into(),
            src_v_table: Some("Orders".into()),
            src_v: "'order'::oid".into(),
            dst_v_table: Some("Person".into()),
            dst_v: "'person'::pid".into(),
            prefixed_edge_id: false,
            implicit_edge_id: true,
            id: None,
            fix_label: true,
            label: "'placedBy'".into(),
            properties: Some(vec!["total".into()]),
        }],
    };
    let g = Db2Graph::open(db, &cfg).unwrap();
    // e.outV(): source vertex table == edge table, vertex props (total)
    // subsumed by edge props -> constructed from the edge, zero SQL.
    let before = g.stats();
    let out = g.run("g.E().hasLabel('placedBy').outV().values('total').sum()").unwrap();
    assert_eq!(out, vec![GValue::Double(141.5)]);
    let d = g.stats().since(&before);
    assert!(d.vertices_from_edges >= 3, "{d:?}");
    assert_eq!(d.sql_queries, 1, "only the edge fetch needs SQL: {d:?}");
    // The constructed vertices carry the right ids and label.
    let out = g.run("g.E().hasLabel('placedBy').outV().hasLabel('order').count()").unwrap();
    assert_eq!(out, vec![GValue::Long(3)]);
    // inV() goes to a different table -> needs SQL, no shortcut.
    let out = g.run("g.E().hasLabel('placedBy').inV().dedup().values('name')").unwrap();
    assert_eq!(out.len(), 2);
}

#[test]
fn dialect_suggests_and_applies_indexes_from_workload() {
    let db = social_db();
    // Drop the workload-relevant index to give the advisor something to do.
    db.execute("DROP INDEX ix_knows_a").unwrap();
    let g = Db2Graph::open(db.clone(), &social_overlay()).unwrap();
    // Hammer the same pattern (outE by source id on Knows).
    for i in 0..40 {
        let pid = 1 + (i % 4);
        g.run(&format!("g.V('person::{pid}').outE('knows').count()")).unwrap();
    }
    let suggestions = g.dialect().suggested_indexes();
    assert!(
        suggestions.iter().any(|s| s.table == "Knows" && s.columns == vec!["a".to_string()]),
        "expected a Knows(a) suggestion, got {suggestions:?}"
    );
    let created = g.dialect().apply_suggested_indexes().unwrap();
    assert!(created >= 1);
    // The index is real: the SQL plan for the pattern now probes it.
    let plan = db.explain("SELECT * FROM Knows WHERE a = 1").unwrap();
    assert!(plan.contains("INDEX"), "{plan}");
}

#[test]
fn template_cache_reuses_prepared_statements() {
    let db = social_db();
    let g = Db2Graph::open(db, &social_overlay()).unwrap();
    for pid in [1, 2, 3, 4, 1, 2] {
        g.run(&format!("g.V('person::{pid}').values('name')")).unwrap();
    }
    let stats = g.stats();
    // Six queries, but after the first the SQL template is cached.
    assert!(stats.template_hits >= 5, "{stats:?}");
    assert!(g.dialect().template_count() <= 2, "{}", g.dialect().template_count());
}

#[test]
fn implicit_edge_id_decomposition_pins_table_and_row() {
    let db = social_db();
    let g = Db2Graph::open(db, &social_overlay()).unwrap();
    let before = g.stats();
    let out = g
        .run("g.E('person::1::knows::person::2').values('metIn')")
        .unwrap();
    assert_eq!(out, vec![GValue::Str("US".into())]);
    let d = g.stats().since(&before);
    // The embedded label eliminates WorksAt; parts become predicates.
    assert_eq!(d.sql_queries, 1, "{d:?}");
    assert!(d.tables_pruned >= 1, "{d:?}");
    // An id embedding a label of the *other* table returns nothing.
    assert!(g.run("g.E('person::1::worksFor::person::2')").unwrap().is_empty());
}
