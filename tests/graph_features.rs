//! Feature tests beyond the core benchmarks: multiple overlays on the same
//! tables, temporal "as of" graphs through views, and the long tail of
//! Gremlin steps running against the SQL overlay backend.

use std::sync::Arc;

use db2graph::core::{Db2Graph, ETableConfig, OverlayConfig, VTableConfig};
use db2graph::gremlin::GValue;
use db2graph::reldb::Database;

fn flights_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE City (code VARCHAR PRIMARY KEY, cname VARCHAR, country VARCHAR);
         CREATE TABLE Flight (fid BIGINT PRIMARY KEY, orig VARCHAR, dest VARCHAR,
                              price DOUBLE, validFrom BIGINT, validTo BIGINT,
            FOREIGN KEY (orig) REFERENCES City(code),
            FOREIGN KEY (dest) REFERENCES City(code));
         CREATE INDEX ix_flight_orig ON Flight (orig);
         CREATE INDEX ix_flight_dest ON Flight (dest);
         INSERT INTO City VALUES
            ('ZRH', 'Zurich', 'CH'), ('OSL', 'Oslo', 'NO'),
            ('NRT', 'Tokyo', 'JP'), ('GIG', 'Rio', 'BR');
         -- validity windows make the graph temporal
         INSERT INTO Flight VALUES
            (1, 'ZRH', 'OSL', 120.0, 0, 100),
            (2, 'OSL', 'NRT', 700.0, 0, 50),
            (3, 'ZRH', 'NRT', 900.0, 50, 200),
            (4, 'NRT', 'GIG', 1100.0, 0, 200);",
    )
    .unwrap();
    db
}

fn city_vtable() -> VTableConfig {
    VTableConfig {
        table_name: "City".into(),
        prefixed_id: false,
        id: "code".into(),
        fix_label: true,
        label: "'city'".into(),
        properties: Some(vec!["cname".into(), "country".into()]),
    }
}

fn flight_etable(table: &str) -> ETableConfig {
    ETableConfig {
        table_name: table.into(),
        src_v_table: Some("City".into()),
        src_v: "orig".into(),
        dst_v_table: Some("City".into()),
        dst_v: "dest".into(),
        prefixed_edge_id: true,
        implicit_edge_id: false,
        id: Some("'f'::fid".into()),
        fix_label: true,
        label: "'flight'".into(),
        properties: Some(vec!["price".into()]),
    }
}

#[test]
fn string_vertex_ids_work_end_to_end() {
    let db = flights_db();
    let cfg = OverlayConfig { v_tables: vec![city_vtable()], e_tables: vec![flight_etable("Flight")] };
    let g = Db2Graph::open(db, &cfg).unwrap();
    let out = g.run("g.V('ZRH').out('flight').values('cname').order()").unwrap();
    assert_eq!(
        out,
        vec![GValue::Str("Oslo".into()), GValue::Str("Tokyo".into())]
    );
    let out = g.run("g.E('f::2').inV().values('country')").unwrap();
    assert_eq!(out, vec![GValue::Str("JP".into())]);
}

#[test]
fn two_overlays_on_the_same_tables() {
    // One set of tables, two different graphs: the full network and a
    // budget network (price-capped via a view) — the paper's "one can
    // create multiple overlay configuration files on the same set of
    // tables, so that they can be queried as different graphs".
    let db = flights_db();
    db.execute(
        "CREATE VIEW CheapFlight AS \
         SELECT fid, orig, dest, price, validFrom, validTo FROM Flight WHERE price < 800",
    )
    .unwrap();
    let full = Db2Graph::open(
        db.clone(),
        &OverlayConfig { v_tables: vec![city_vtable()], e_tables: vec![flight_etable("Flight")] },
    )
    .unwrap();
    let budget = Db2Graph::open(
        db.clone(),
        &OverlayConfig {
            v_tables: vec![city_vtable()],
            e_tables: vec![flight_etable("CheapFlight")],
        },
    )
    .unwrap();
    assert_eq!(full.run("g.E().count()").unwrap(), vec![GValue::Long(4)]);
    assert_eq!(budget.run("g.E().count()").unwrap(), vec![GValue::Long(2)]);
    // Tokyo unreachable from Zurich on the budget graph in one hop that
    // exists on the full graph.
    assert_eq!(full.run("g.V('ZRH').out('flight').hasId('NRT').count()").unwrap(), vec![GValue::Long(1)]);
    assert_eq!(budget.run("g.V('ZRH').out('flight').hasId('NRT').count()").unwrap(), vec![GValue::Long(0)]);
}

#[test]
fn temporal_as_of_graphs_via_views() {
    // The paper: "The temporal support in Db2 allows all of our graphs to
    // be temporal as well. For example, one can view a graph 'as of'
    // different time snapshots." Model: validity-windowed rows + one view
    // per snapshot.
    let db = flights_db();
    for t in [25, 75] {
        db.execute(&format!(
            "CREATE VIEW FlightAsOf{t} AS \
             SELECT fid, orig, dest, price, validFrom, validTo FROM Flight \
             WHERE validFrom <= {t} AND validTo > {t}"
        ))
        .unwrap();
    }
    let at25 = Db2Graph::open(
        db.clone(),
        &OverlayConfig {
            v_tables: vec![city_vtable()],
            e_tables: vec![flight_etable("FlightAsOf25")],
        },
    )
    .unwrap();
    let at75 = Db2Graph::open(
        db.clone(),
        &OverlayConfig {
            v_tables: vec![city_vtable()],
            e_tables: vec![flight_etable("FlightAsOf75")],
        },
    )
    .unwrap();
    // At t=25 the OSL->NRT leg exists, the direct ZRH->NRT doesn't.
    let via = at25.run("g.V('ZRH').out('flight').out('flight').hasId('NRT').count()").unwrap();
    assert_eq!(via, vec![GValue::Long(1)]);
    let direct = at25.run("g.V('ZRH').out('flight').hasId('NRT').count()").unwrap();
    assert_eq!(direct, vec![GValue::Long(0)]);
    // At t=75 it's the other way around.
    let via = at75.run("g.V('ZRH').out('flight').out('flight').hasId('NRT').count()").unwrap();
    assert_eq!(via, vec![GValue::Long(0)]);
    let direct = at75.run("g.V('ZRH').out('flight').hasId('NRT').count()").unwrap();
    assert_eq!(direct, vec![GValue::Long(1)]);
}

#[test]
fn long_tail_gremlin_steps_on_the_overlay() {
    let db = flights_db();
    let cfg = OverlayConfig { v_tables: vec![city_vtable()], e_tables: vec![flight_etable("Flight")] };
    let g = Db2Graph::open(db, &cfg).unwrap();

    // union of out and in neighbourhoods.
    let mut out = g.run("g.V('NRT').union(out('flight'), in('flight')).values('cname')").unwrap();
    out.sort();
    assert_eq!(
        out,
        vec![GValue::Str("Oslo".into()), GValue::Str("Rio".into()), GValue::Str("Zurich".into())]
    );
    // as/select across a hop.
    let out = g
        .run("g.V('ZRH').as('from').out('flight').as('to').select('from').dedup().values('cname')")
        .unwrap();
    assert_eq!(out, vec![GValue::Str("Zurich".into())]);
    // path over two hops.
    let out = g.run("g.V('ZRH').out('flight').out('flight').path()").unwrap();
    assert!(!out.is_empty());
    for p in &out {
        match p {
            GValue::Path(steps) => assert_eq!(steps.len(), 3),
            other => panic!("{other:?}"),
        }
    }
    // valueMap with multiple keys on edges.
    let out = g.run("g.E('f::1').valueMap('price')").unwrap();
    match &out[0] {
        GValue::Map(m) => assert_eq!(m.get("price"), Some(&GValue::Double(120.0))),
        other => panic!("{other:?}"),
    }
    // is() on scalar stream; fold/unfold roundtrip.
    let out = g.run("g.E().values('price').is(gte(900)).count()").unwrap();
    assert_eq!(out, vec![GValue::Long(2)]);
    let out = g.run("g.V().id().fold()").unwrap();
    assert_eq!(out.len(), 1);
    let out = g.run("g.V().id().fold().unfold().count()").unwrap();
    assert_eq!(out, vec![GValue::Long(4)]);
    // where() with a sub-traversal; not().
    let out = g.run("g.V().where(__.out('flight').has('country', 'JP')).values('cname').order()").unwrap();
    assert_eq!(out, vec![GValue::Str("Oslo".into()), GValue::Str("Zurich".into())]);
    let out = g.run("g.V().not(out('flight')).values('cname')").unwrap();
    assert_eq!(out, vec![GValue::Str("Rio".into())]);
    // range pagination.
    let out = g.run("g.V().order().by('cname').range(1, 3).values('cname')").unwrap();
    assert_eq!(out, vec![GValue::Str("Rio".into()), GValue::Str("Tokyo".into())]);
    // repeat with until on the overlay.
    let out = g
        .run("g.V('ZRH').repeat(out('flight')).until(hasId('GIG')).dedup().values('cname')")
        .unwrap();
    assert_eq!(out, vec![GValue::Str("Rio".into())]);
    // properties() entries.
    let out = g.run("g.V('ZRH').properties('country')").unwrap();
    match &out[0] {
        GValue::Map(m) => {
            assert_eq!(m.get("key"), Some(&GValue::Str("country".into())));
            assert_eq!(m.get("value"), Some(&GValue::Str("CH".into())));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn graph_query_rows_shaping_variants() {
    use db2graph::reldb::DataType;
    let db = flights_db();
    let cfg = OverlayConfig { v_tables: vec![city_vtable()], e_tables: vec![flight_etable("Flight")] };
    let g = Db2Graph::open(db, &cfg).unwrap();
    // Map-shaped results.
    let rs = g
        .query_rows(
            "g.V().valueMap('cname', 'country')",
            &[("cname".into(), DataType::Varchar), ("country".into(), DataType::Varchar)],
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    assert_eq!(rs.columns, vec!["cname", "country"]);
    // Element-shaped results use property/pseudo-column lookup.
    let rs = g
        .query_rows(
            "g.V().hasLabel('city')",
            &[("id".into(), DataType::Varchar), ("cname".into(), DataType::Varchar)],
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    assert!(rs.rows.iter().any(|r| r[0] == db2graph::reldb::Value::Varchar("ZRH".into())));
    // Scalar chunking: 4 values into rows of 2 declared columns.
    let rs = g
        .query_rows(
            "g.V().order().by('cname').values('cname')",
            &[("a".into(), DataType::Varchar), ("b".into(), DataType::Varchar)],
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    // A width mismatch (4 values, 3 columns) errors cleanly.
    let err = g
        .query_rows(
            "g.V().values('cname')",
            &[
                ("a".into(), DataType::Varchar),
                ("b".into(), DataType::Varchar),
                ("c".into(), DataType::Varchar),
            ],
        )
        .unwrap_err();
    assert!(err.to_string().contains("divisible"), "{err}");
}

#[test]
fn deep_traversal_with_emit_collects_every_hop() {
    let db = flights_db();
    let cfg = OverlayConfig { v_tables: vec![city_vtable()], e_tables: vec![flight_etable("Flight")] };
    let g = Db2Graph::open(db, &cfg).unwrap();
    let mut out = g
        .run("g.V('ZRH').repeat(out('flight')).emit().times(3).dedup().values('cname')")
        .unwrap();
    out.sort();
    assert_eq!(
        out,
        vec![
            GValue::Str("Oslo".into()),
            GValue::Str("Rio".into()),
            GValue::Str("Tokyo".into())
        ]
    );
}

#[test]
fn has_not_and_coalesce() {
    let db = flights_db();
    // Give one city a nullable extra property via schema evolution: model
    // it with NULLs instead (country NULL for a new city).
    db.execute("INSERT INTO City VALUES ('XXX', 'Nowhere', NULL)").unwrap();
    let cfg = OverlayConfig { v_tables: vec![city_vtable()], e_tables: vec![flight_etable("Flight")] };
    let g = Db2Graph::open(db.clone(), &cfg).unwrap();
    // hasNot: the NULL country surfaces as an absent property.
    let out = g.run("g.V().hasNot('country').values('cname')").unwrap();
    assert_eq!(out, vec![GValue::Str("Nowhere".into())]);
    let out = g.run("g.V().hasNot('country').count()").unwrap();
    assert_eq!(out, vec![GValue::Long(1)]);
    // hasNot on a property NO table has matches every vertex.
    let out = g.run("g.V().hasNot('nosuchproperty').count()").unwrap();
    assert_eq!(out, vec![GValue::Long(5)]);
    // coalesce: first non-empty branch wins per traverser. Rio has no
    // outgoing flights, so it falls back to incoming.
    let out = g
        .run("g.V('GIG').coalesce(out('flight'), in('flight')).values('cname')")
        .unwrap();
    assert_eq!(out, vec![GValue::Str("Tokyo".into())]);
    // A vertex WITH outgoing flights takes the first branch only.
    let out = g
        .run("g.V('ZRH').coalesce(out('flight'), in('flight')).dedup().count()")
        .unwrap();
    assert_eq!(out, vec![GValue::Long(2)]);
}

#[test]
fn composite_primary_key_vertices() {
    // Vertices identified by a two-column key: id = 'route'::orig::dest.
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Route (orig VARCHAR, dest VARCHAR, miles BIGINT, PRIMARY KEY (orig, dest));
         INSERT INTO Route VALUES ('ZRH', 'OSL', 1010), ('OSL', 'NRT', 5200);",
    )
    .unwrap();
    let cfg = OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Route".into(),
            prefixed_id: true,
            id: "'route'::orig::dest".into(),
            fix_label: true,
            label: "'route'".into(),
            properties: Some(vec!["miles".into()]),
        }],
        e_tables: vec![],
    };
    let g = Db2Graph::open(db, &cfg).unwrap();
    // Composite id decomposes into conjunctive predicates (orig = ? AND
    // dest = ?) and pins the row.
    let out = g.run("g.V('route::ZRH::OSL').values('miles')").unwrap();
    assert_eq!(out, vec![GValue::Long(1010)]);
    let before = g.stats();
    g.run("g.V('route::OSL::NRT')").unwrap();
    let d = g.stats().since(&before);
    assert_eq!(d.sql_queries, 1);
    // Wrong arity or prefix finds nothing.
    assert!(g.run("g.V('route::ZRH')").unwrap().is_empty());
    assert!(g.run("g.V('flight::ZRH::OSL')").unwrap().is_empty());
    assert_eq!(g.run("g.V().count()").unwrap(), vec![GValue::Long(2)]);
}

#[test]
fn group_and_group_count() {
    let db = flights_db();
    let cfg = OverlayConfig { v_tables: vec![city_vtable()], e_tables: vec![flight_etable("Flight")] };
    let g = Db2Graph::open(db, &cfg).unwrap();
    // groupCount by country.
    let out = g.run("g.V().groupCount().by('country')").unwrap();
    match &out[0] {
        GValue::Map(m) => {
            assert_eq!(m.len(), 4);
            assert_eq!(m.get("CH"), Some(&GValue::Long(1)));
            assert_eq!(m.get("JP"), Some(&GValue::Long(1)));
        }
        other => panic!("{other:?}"),
    }
    // group collects the elements themselves.
    let out = g.run("g.V().group().by('country')").unwrap();
    match &out[0] {
        GValue::Map(m) => match m.get("NO") {
            Some(GValue::List(items)) => assert_eq!(items.len(), 1),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    // group over scalars groups by value.
    let out = g.run("g.E().values('price').groupCount()").unwrap();
    match &out[0] {
        GValue::Map(m) => assert_eq!(m.len(), 4),
        other => panic!("{other:?}"),
    }
    // destination fan-in per city: hop then groupCount.
    let out = g.run("g.V('ZRH').out('flight').groupCount().by('cname')").unwrap();
    match &out[0] {
        GValue::Map(m) => {
            assert_eq!(m.get("Oslo"), Some(&GValue::Long(1)));
            assert_eq!(m.get("Tokyo"), Some(&GValue::Long(1)));
        }
        other => panic!("{other:?}"),
    }
}
