//! Observability-layer integration tests: `explain()` (data-independent
//! plan + SQL + table elimination), `profile()` (per-step report), the
//! `.profile()`/`.explain()` Gremlin terminators, and the aggregate
//! metrics snapshot — all on the paper's Figure 2 healthcare overlay.

use std::sync::Arc;

use db2graph_core::config::healthcare_example_json;
use db2graph_core::{Db2Graph, TableAction, TablePlan};
use gremlin::GValue;
use reldb::Database;

fn healthcare_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
         CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
         CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR,
            FOREIGN KEY (sourceID) REFERENCES Disease(diseaseID),
            FOREIGN KEY (targetID) REFERENCES Disease(diseaseID));
         CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
            FOREIGN KEY (patientID) REFERENCES Patient(patientID),
            FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
         INSERT INTO Patient VALUES
            (1, 'Alice', '12 Oak St', 100),
            (2, 'Bob', '9 Elm St', 101),
            (3, 'Carol', '4 Pine St', 102);
         INSERT INTO Disease VALUES
            (10, 'E11', 'type 2 diabetes'),
            (11, 'E10', 'type 1 diabetes'),
            (12, 'E08', 'diabetes');
         INSERT INTO DiseaseOntology VALUES (10, 12, 'isa'), (11, 12, 'isa');
         INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019'), (2, 11, 'diagnosed 2020');",
    )
    .unwrap();
    db
}

fn open(db: &Arc<Database>) -> Arc<Db2Graph> {
    Db2Graph::open_json(db.clone(), healthcare_example_json()).unwrap()
}

/// A fixed label (`hasLabel('patient')`) eliminates every vertex table
/// whose fixed label differs, before any SQL — and explain says so.
#[test]
fn explain_shows_fixed_label_elimination() {
    let db = healthcare_db();
    let g = open(&db);
    let report = g.explain_report("g.V().hasLabel('patient').values('name')").unwrap();
    // Both vertex tables are considered; only Patient survives.
    assert_eq!(report.tables_considered(), 2, "{report}");
    assert_eq!(report.tables_queried(), 1, "{report}");
    assert_eq!(report.tables_pruned(), 1, "{report}");
    let pruned: Vec<_> = report
        .steps
        .iter()
        .flat_map(|s| &s.tables)
        .filter(|t| matches!(t.plan, TablePlan::Pruned { .. }))
        .collect();
    assert_eq!(pruned.len(), 1);
    assert_eq!(pruned[0].table, "Disease");
    let TablePlan::Pruned { reason } = &pruned[0].plan else { unreachable!() };
    assert!(reason.contains("label"), "unexpected prune reason: {reason}");
    // The surviving table carries real generated SQL.
    let sql = report.sql_statements();
    assert_eq!(sql.len(), 1, "{report}");
    assert!(sql[0].contains("Patient"), "{}", sql[0]);
    // The rendered text shows both the plan and the elimination.
    let text = g.explain("g.V().hasLabel('patient').values('name')").unwrap();
    assert!(text.starts_with("plan: "), "{text}");
    assert!(text.contains("pruned ("), "{text}");
}

/// A prefixed id (`patient::1`) pins the lookup to the one table whose id
/// prefix matches; plain-integer ids can only come from Bigint-id tables.
#[test]
fn explain_shows_prefixed_id_pinning() {
    let db = healthcare_db();
    let g = open(&db);
    let report = g.explain_report("g.V('patient::1')").unwrap();
    assert_eq!(report.tables_considered(), 2, "{report}");
    assert!(
        report.tables_queried() < report.tables_considered(),
        "prefixed id should eliminate non-matching tables: {report}"
    );
    let pruned: Vec<_> = report
        .steps
        .iter()
        .flat_map(|s| &s.tables)
        .filter(|t| matches!(t.plan, TablePlan::Pruned { .. }))
        .map(|t| t.table.as_str())
        .collect();
    assert_eq!(pruned, vec!["Disease"], "{report}");

    // The mirror case: a plain integer id cannot live in a prefixed table.
    let report = g.explain_report("g.V(10)").unwrap();
    let pruned: Vec<_> = report
        .steps
        .iter()
        .flat_map(|s| &s.tables)
        .filter(|t| matches!(t.plan, TablePlan::Pruned { .. }))
        .map(|t| t.table.as_str())
        .collect();
    assert_eq!(pruned, vec!["Patient"], "{report}");
}

/// explain() is a dry run: it never executes SQL or touches data.
#[test]
fn explain_touches_no_data() {
    let db = healthcare_db();
    let g = open(&db);
    let before = g.metrics();
    g.explain("g.V().hasLabel('patient').out('hasDisease').values('conceptName')").unwrap();
    g.explain_report("g.E().hasLabel('isa').count()").unwrap();
    let after = g.metrics();
    assert_eq!(after.sql_statements, before.sql_statements);
    assert_eq!(after.rows_returned, before.rows_returned);
}

/// profile() returns the results *and* a per-step report covering strategy
/// rewrites, step timings, table decisions, and executed SQL.
#[test]
fn profile_reports_steps_tables_and_sql() {
    let db = healthcare_db();
    let g = open(&db);
    let (values, report) = g
        .profile("g.V().hasLabel('patient').has('name', 'Alice').out('hasDisease').values('conceptName')")
        .unwrap();
    assert_eq!(values, vec![GValue::Str("type 2 diabetes".into())]);
    // The optimizer rewrote the plan (predicate pushdown at minimum).
    assert!(
        report.strategies.iter().any(|s| s.strategy == "PredicatePushdown"),
        "expected a PredicatePushdown rewrite: {report}"
    );
    // Every top-level step is timed with frontier sizes.
    assert!(!report.steps.is_empty(), "{report}");
    assert!(report.steps.iter().all(|s| s.index < report.steps.len()));
    // Table elimination is visible: Disease is pruned for the hasLabel
    // scan, the adjacency step prunes DiseaseOntology ('isa' != 'hasDisease').
    assert!(report.tables_queried() >= 1, "{report}");
    assert!(report.tables_pruned() >= 1, "{report}");
    assert!(
        report.tables_queried() < report.tables_considered(),
        "table elimination should have pruned something: {report}"
    );
    assert!(
        report.tables.iter().any(|d| {
            d.table == "DiseaseOntology" && matches!(d.action, TableAction::Pruned(_))
        }),
        "{report}"
    );
    // SQL statements carry wall time and row counts.
    assert!(!report.statements.is_empty(), "{report}");
    assert!(report.total_rows() >= 1, "{report}");
    // The rendered report has all four sections.
    let text = report.to_string();
    for needle in ["strategies:", "steps:", "tables: considered=", "sql: statements="] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

/// The dst-vertex-table link pins the vertex lookup after an adjacency
/// step instead of fanning out over all vertex tables.
#[test]
fn profile_shows_link_pinning() {
    let db = healthcare_db();
    let g = open(&db);
    let (_, report) = g.profile("g.V('patient::1').out('hasDisease')").unwrap();
    assert!(
        report.tables.iter().any(|d| d.table == "Disease" && d.action == TableAction::Pinned),
        "dst link should pin the Disease lookup: {report}"
    );
}

/// The `.profile()` Gremlin terminator returns the rendered report as the
/// traversal's value, like TinkerPop's.
#[test]
fn profile_terminator_returns_report_text() {
    let db = healthcare_db();
    let g = open(&db);
    let out = g.run("g.V().hasLabel('patient').count().profile()").unwrap();
    assert_eq!(out.len(), 1);
    let GValue::Str(text) = &out[0] else { panic!("expected report text, got {out:?}") };
    assert!(text.starts_with("profile"), "{text}");
    assert!(text.contains("tables: considered="), "{text}");
    assert!(text.contains("sql: statements="), "{text}");
}

/// Repeated identical traversals re-use prepared templates: the second run
/// hits the cache for every statement the first run prepared.
#[test]
fn repeated_traversals_hit_template_cache() {
    let db = healthcare_db();
    let g = open(&db);
    let query = "g.V().hasLabel('patient').has('name', 'Alice').out('hasDisease').values('conceptName')";

    let (_, first) = g.profile(query).unwrap();
    assert!(first.template_misses() > 0, "first run must prepare: {first}");

    let before = g.metrics();
    let (_, second) = g.profile(query).unwrap();
    let delta = g.metrics().since(&before);

    // Per-query view: every statement of the identical re-run is a hit.
    assert_eq!(second.template_misses(), 0, "{second}");
    assert!(second.template_hits() > 0, "{second}");
    // Aggregate view: the registry counted those hits too.
    assert!(delta.template_hits >= second.template_hits() as u64);
    assert_eq!(delta.template_misses, 0);
}

/// The aggregate snapshot accumulates across queries and diffs cleanly.
#[test]
fn metrics_snapshot_accumulates() {
    let db = healthcare_db();
    let g = open(&db);
    let zero = g.metrics();
    assert_eq!(zero.traversals, 0);
    assert_eq!(zero.sql_statements, 0);

    g.run("g.V().count()").unwrap();
    g.run("g.E().count()").unwrap();
    let after = g.metrics();
    assert_eq!(after.traversals, 2);
    assert!(after.sql_statements >= 2, "{after:?}");
    assert!(after.rows_returned >= 1, "{after:?}");

    let delta = after.since(&zero);
    assert_eq!(delta.traversals, 2);

    // The snapshot exports as JSON (the bench harness prints this).
    let json = after.to_json().to_compact();
    assert!(json.contains("\"traversals\":2"), "{json}");
    assert!(json.contains("\"sql_statements\":"), "{json}");

    // Latency percentiles populate from the always-on histograms; the
    // telemetry counters stay zero without tracing or a slow-query
    // threshold configured.
    assert!(after.query_p99_nanos > 0, "{after:?}");
    assert!(after.sql_p99_nanos > 0, "{after:?}");
    assert!(after.query_p50_nanos <= after.query_p99_nanos, "{after:?}");
    assert_eq!(after.slow_queries, 0);
    assert_eq!(after.trace_spans, 0);
    assert_eq!(after.dropped_spans, 0);
    assert!(json.contains("\"query_p50_nanos\":"), "{json}");
    assert!(json.contains("\"sql_p99_nanos\":"), "{json}");
}

/// Profiling is opt-in: plain runs leave no per-query residue and return
/// identical results.
#[test]
fn unprofiled_runs_match_profiled_results() {
    let db = healthcare_db();
    let g = open(&db);
    let query = "g.V().hasLabel('patient').out('hasDisease').values('conceptCode')";
    let mut plain = g.run(query).unwrap();
    let (mut profiled, report) = g.profile(query).unwrap();
    let key = |v: &GValue| format!("{v:?}");
    plain.sort_by_key(key);
    profiled.sort_by_key(key);
    assert_eq!(plain, profiled);
    assert!(!report.statements.is_empty());
}
