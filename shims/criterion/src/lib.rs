//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! minimal harness API the workspace's `micro_ops` bench uses:
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple calibrated wall-clock loop reporting mean ns/iter — good enough
//! for relative comparisons, with none of criterion's statistics.

use std::time::{Duration, Instant};

/// How a batched setup is amortized. Only a hint here; all variants batch
/// identically in the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by iter/iter_batched.
    ns_per_iter: f64,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count that fills the
        // measurement window, then time it.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measure_for || n >= 1 << 30 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                self.iters = n;
                break;
            }
            n = n.saturating_mul(if elapsed.as_micros() < 100 { 10 } else { 2 });
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut n = 1u64;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measure_for || n >= 1 << 24 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                self.iters = n;
                break;
            }
            n = n.saturating_mul(if elapsed.as_micros() < 100 { 10 } else { 2 });
        }
    }
}

#[derive(Debug)]
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion { measure_for: Duration::from_millis(ms) }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0, iters: 0, measure_for: self.measure_for };
        f(&mut b);
        let per = b.ns_per_iter;
        let human = if per >= 1_000_000.0 {
            format!("{:.3} ms", per / 1_000_000.0)
        } else if per >= 1_000.0 {
            format!("{:.3} µs", per / 1_000.0)
        } else {
            format!("{per:.1} ns")
        };
        println!("{id:<40} time: {human}/iter  ({} iters)", b.iters);
        self
    }
}

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        assert!(ran);
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }
}
