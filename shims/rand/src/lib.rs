//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment cannot reach crates.io, so this crate vendors
//! exactly what the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range(low..high)` over the integer types, and `Rng::gen::<f64>()`.
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, which is all the workload generators need. The stream differs
//! from upstream `StdRng` (ChaCha12), so seeds produce different — but still
//! reproducible — datasets.

use std::ops::Range;

/// Minimal core trait: everything derives from a 64-bit output.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64,
                // irrelevant for workload generation.
                let x = rng.next_u64() as u128;
                let off = (x * span) >> 64;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i64, u64, i32, u32, usize, u16, u8, i8);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64::standard(rng) * (range.end - range.start)
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of uniform [0,1) samples should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
