//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! subset of the proptest API the workspace's property tests use:
//!
//! - the [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_flat_map`
//! - [`Just`], [`any`], integer-range strategies, tuple strategies, and a
//!   regex-lite string strategy (`"[a-z]{1,8}"` character-class form)
//! - `prop::collection::{vec, btree_set}`
//! - the `proptest!`, `prop_oneof!`, `prop_assert*!`, and `prop_assume!`
//!   macros, plus [`ProptestConfig`]
//! - replay of `*.proptest-regressions` seed files before novel cases
//!
//! There is no shrinking: a failing case reports its seed so it can be
//! replayed by appending a `cc <seed>` line to the regression file.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

// ------------------------------------------------------------------ errors

/// Why a test case did not pass: a genuine failure or a rejected input.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Generation-time rejection (e.g. a filter that never passed).
#[derive(Debug, Clone)]
pub struct Reject(pub String);

// -------------------------------------------------------------------- rng

/// The RNG handed to strategies while generating one test case.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }
}

// --------------------------------------------------------------- strategy

/// A generator of values of one type. Unlike upstream proptest there is no
/// value tree / shrinking; `generate` either yields a value or rejects.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<R, F>(self, whence: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A heap-allocated, type-erased strategy (what `prop_oneof!` arms become).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Reject> {
        (**self).generate(rng)
    }
}

#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Reject> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        for _ in 0..100 {
            let v = self.inner.generate(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Reject(format!("filter never satisfied: {}", self.whence)))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<T::Value, Reject> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Reject> {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

// ------------------------------------------------------------ `any::<T>()`

/// Types with a canonical full-domain strategy (upstream: `Arbitrary`).
pub trait ArbValue: Sized {
    fn arb(rng: &mut TestRng) -> Self;
}

impl ArbValue for bool {
    fn arb(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arb_int {
    ($($t:ty),*) => {$(
        impl ArbValue for $t {
            fn arb(rng: &mut TestRng) -> Self {
                // Mix edge cases in: zero, extremes, and small values show up
                // far more often than a uniform draw would give them.
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ArbValue for f64 {
    fn arb(rng: &mut TestRng) -> Self {
        // Like upstream's default `any::<f64>()` domain: zeros, subnormals,
        // and normal values of either sign — no NaN, no infinities.
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MIN_POSITIVE / 2.0,
            3 => {
                let finite = f64::from_bits(rng.next_u64());
                if finite.is_finite() {
                    finite
                } else {
                    f64::MAX
                }
            }
            _ => {
                // A "normal looking" value.
                let m = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let exp = (rng.next_u64() % 40) as i32 - 20;
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                sign * m * 10f64.powi(exp)
            }
        }
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Reject> {
        Ok(T::arb(rng))
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: ArbValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ----------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                if self.start >= self.end {
                    return Err(Reject(format!("empty range {:?}", self)));
                }
                Ok(rng.0.gen_range(self.start..self.end))
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, i32, u32, usize, u16, u8, i8);

// ----------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                let ($($name,)*) = self;
                Ok(($($name.generate(rng)?,)*))
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ----------------------------------------------------- regex-lite strings

/// `&str` as a strategy: a regex-lite pattern over character classes.
///
/// Supported syntax — the subset the workspace's tests use, i.e. sequences
/// of atoms with counted repetition:
///
/// - `[abc]`, `[a-z0-9 ]` character classes (no negation)
/// - literal characters
/// - `{n}`, `{m,n}`, `?`, `*`, `+` repetition (unbounded capped at 8)
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Result<String, Reject> {
        let atoms = parse_pattern(self)
            .map_err(|e| Reject(format!("bad pattern {self:?}: {e}")))?;
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if lo == hi { *lo } else { *lo + rng.below(hi - lo + 1) };
            for _ in 0..n {
                out.push(chars[rng.below(chars.len())]);
            }
        }
        Ok(out)
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Result<Vec<Atom>, String> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let class = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .ok_or("unclosed class")?
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    if lo > hi {
                        return Err("reversed class range".into());
                    }
                    for c in lo..=hi {
                        set.push(char::from_u32(c).ok_or("bad range char")?);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            if set.is_empty() {
                return Err("empty class".into());
            }
            i = close + 1;
            set
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unclosed repetition")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            if let Some((a, b)) = body.split_once(',') {
                (
                    a.trim().parse().map_err(|_| "bad repeat lower bound")?,
                    b.trim().parse().map_err(|_| "bad repeat upper bound")?,
                )
            } else {
                let n = body.trim().parse().map_err(|_| "bad repeat count")?;
                (n, n)
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        if lo > hi {
            return Err("reversed repetition".into());
        }
        atoms.push((class, lo, hi));
    }
    Ok(atoms)
}

// ------------------------------------------------------------ collections

pub mod collection {
    use super::{Reject, Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let n = self.size.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::btree_set(element, len_range)`. Best-effort: if the
    /// element domain is too small to reach the sampled size, a smaller set
    /// is produced (matching upstream's behavior under rejection limits).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<BTreeSet<S::Value>, Reject> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let target = self.size.start + rng.below(span);
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < target && tries < target * 20 + 20 {
                out.insert(self.element.generate(rng)?);
                tries += 1;
            }
            if out.len() < self.size.start {
                return Err(Reject("btree_set: domain exhausted".into()));
            }
            Ok(out)
        }
    }
}

/// The `prop::` module path used by `prop::collection::vec(...)` call sites.
pub mod prop {
    pub use crate::collection;
}

// ----------------------------------------------------------------- runner

/// Runner configuration; `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Parse `cc <token>` lines from a `*.proptest-regressions` file into replay
/// seeds. Upstream's tokens are 256-bit hex blobs; we fold whatever we find
/// down to a u64 so recorded failures keep replaying first, forever.
fn regression_seeds(source_file: &str) -> Vec<u64> {
    let path = std::path::Path::new(source_file).with_extension("proptest-regressions");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            Some(token.parse::<u64>().unwrap_or_else(|_| fnv1a(token.as_bytes())))
        })
        .collect()
}

/// Drive one property: replay regression seeds, then run `config.cases`
/// novel cases. Rejected cases (assume/filter) are retried with fresh seeds
/// up to `max_global_rejects`. Panics (with the seed) on the first failure.
pub fn run_proptest<F>(config: ProptestConfig, source_file: &str, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
        Err(_) => fnv1a(test_name.as_bytes()),
    };
    let replay = regression_seeds(source_file);
    let mut rejects = 0u32;
    let mut run_one = |seed: u64, label: &str| {
        let mut rng = TestRng::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => true,
            Ok(Err(TestCaseError::Reject(_))) => false,
            Ok(Err(TestCaseError::Fail(msg))) => panic!(
                "proptest '{test_name}' failed ({label}, seed={seed}): {msg}\n\
                 replay with: PROPTEST_SEED={seed} PROPTEST_CASES=1 cargo test {test_name}"
            ),
            Err(payload) => {
                eprintln!(
                    "proptest '{test_name}' panicked ({label}, seed={seed}); \
                     replay with: PROPTEST_SEED={seed} PROPTEST_CASES=1 cargo test {test_name}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    };
    for (i, &seed) in replay.iter().enumerate() {
        // Regression replays that reject (e.g. an assume) are simply skipped.
        run_one(seed, &format!("regression #{i}"));
    }
    let mut completed = 0u32;
    let mut next = 0u64;
    while completed < config.cases {
        let seed = base.wrapping_add(next.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        next += 1;
        if run_one(seed, &format!("case #{completed}")) {
            completed += 1;
        } else {
            rejects += 1;
            if rejects > config.max_global_rejects {
                panic!(
                    "proptest '{test_name}': too many rejected inputs \
                     ({rejects} rejects for {completed}/{} cases)",
                    config.cases
                );
            }
        }
    }
}

// ----------------------------------------------------------------- macros

/// Declare property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` driven by [`run_proptest`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(config, file!(), stringify!($name), |__rng| {
                    $(
                        let $pat = match $crate::Strategy::generate(&($strat), __rng) {
                            Ok(v) => v,
                            Err(r) => return Err($crate::TestCaseError::Reject(r.0)),
                        };
                    )*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::__boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Discard this case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assume failed: ",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Any, ArbValue, BoxedStrategy, Just, OneOf, ProptestConfig, Reject,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_lite_classes() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng).unwrap();
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[ab%_]{0,8}", &mut rng).unwrap();
            assert!(t.len() <= 8);
            assert!(t.chars().all(|c| "ab%_".contains(c)));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1), Just(2), Just(3)];
        let mut rng = TestRng::from_seed(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn collections_respect_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let v = collection::vec(0i64..10, 1..6).generate(&mut rng).unwrap();
            assert!((1..6).contains(&v.len()));
            let s = collection::btree_set((0usize..4, 0usize..4), 0..10)
                .generate(&mut rng)
                .unwrap();
            assert!(s.len() <= 16); // domain has only 16 distinct tuples
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_smoke(a in 0i64..100, (x, y) in (0usize..4, 0usize..4)) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(a, 13);
        }
    }
}
