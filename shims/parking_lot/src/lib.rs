//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal lock API it actually uses: `Mutex` and
//! `RwLock` with panic-free (non-poisoning) guard acquisition, backed by
//! the std primitives. Guard types are re-exported as aliases of the std
//! guards so they can appear in public signatures (e.g.
//! `reldb::storage::Table::read`).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that recovers from poisoning instead of
/// propagating panics from other threads.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that recovers from poisoning instead of
/// propagating panics from other threads.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
