//! Id definitions: prefixed ids, composite ids, implicit edge ids.
//!
//! Section 5 of the paper: a vertex/edge id is defined by a sequence of
//! string constants and table columns joined by `::`, e.g.
//! `'patient'::patientID`. The constant prefix makes ids unique across
//! tables and — crucially for Section 6.3's "Using Prefixed Id Values"
//! optimization — lets the runtime *pin down the exact table* an id belongs
//! to and decompose the id into conjunctive column predicates.

use gremlin::ElementId;
use reldb::{DataType, Value};

use crate::error::{GraphError, GraphResult};

/// One component of an id definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdPart {
    /// A string constant, written `'text'` in the configuration.
    Const(String),
    /// A table column reference.
    Column(String),
}

/// A full id definition: ordered parts joined by `::`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdDef {
    pub parts: Vec<IdPart>,
}

impl IdDef {
    /// Parse a definition string like `'patient'::patientID` or
    /// `'ontology'::sourceID::targetID` or plain `diseaseID`.
    pub fn parse(spec: &str) -> GraphResult<IdDef> {
        let mut parts = Vec::new();
        for raw in spec.split("::") {
            let raw = raw.trim();
            if raw.is_empty() {
                return Err(GraphError::Config(format!("empty id component in '{spec}'")));
            }
            if let Some(stripped) = raw.strip_prefix('\'') {
                let inner = stripped.strip_suffix('\'').ok_or_else(|| {
                    GraphError::Config(format!("unterminated constant in id definition '{spec}'"))
                })?;
                parts.push(IdPart::Const(inner.to_string()));
            } else {
                parts.push(IdPart::Column(raw.to_string()));
            }
        }
        if parts.is_empty() {
            return Err(GraphError::Config(format!("empty id definition '{spec}'")));
        }
        if !parts.iter().any(|p| matches!(p, IdPart::Column(_))) {
            return Err(GraphError::Config(format!(
                "id definition '{spec}' has no column component"
            )));
        }
        Ok(IdDef { parts })
    }

    /// Column names referenced by this definition, in order.
    pub fn columns(&self) -> Vec<&str> {
        self.parts
            .iter()
            .filter_map(|p| match p {
                IdPart::Column(c) => Some(c.as_str()),
                IdPart::Const(_) => None,
            })
            .collect()
    }

    /// The leading constant (unique table identifier), if the definition
    /// starts with one.
    pub fn prefix(&self) -> Option<&str> {
        match self.parts.first() {
            Some(IdPart::Const(c)) => Some(c),
            _ => None,
        }
    }

    /// True when the definition is a single bare column.
    pub fn is_single_column(&self) -> bool {
        self.parts.len() == 1 && matches!(self.parts[0], IdPart::Column(_))
    }

    /// Encode an id from column values (in [`Self::columns`] order).
    ///
    /// A single-column definition with an integer value stays numeric
    /// (`ElementId::Long`); everything else becomes the `::`-joined text.
    pub fn encode(&self, values: &[Value]) -> GraphResult<ElementId> {
        let cols = self.columns();
        if values.len() != cols.len() {
            return Err(GraphError::Config(format!(
                "id encode expects {} values, got {}",
                cols.len(),
                values.len()
            )));
        }
        if self.is_single_column() {
            if let Value::Bigint(v) = &values[0] {
                return Ok(ElementId::Long(*v));
            }
        }
        let mut out = String::new();
        let mut vi = 0;
        for (i, part) in self.parts.iter().enumerate() {
            if i > 0 {
                out.push_str("::");
            }
            match part {
                IdPart::Const(c) => out.push_str(c),
                IdPart::Column(_) => {
                    out.push_str(&values[vi].to_string());
                    vi += 1;
                }
            }
        }
        Ok(ElementId::Str(out))
    }

    /// Decode an id against this definition: constants must match exactly;
    /// returns the raw text of each column component, or `None` when the id
    /// cannot belong to this definition (wrong prefix, wrong arity, wrong
    /// shape). This is the table-elimination test of Section 6.3.
    pub fn decode(&self, id: &ElementId) -> Option<Vec<String>> {
        match id {
            ElementId::Long(v) => {
                if self.is_single_column() {
                    Some(vec![v.to_string()])
                } else {
                    None
                }
            }
            ElementId::Str(s) => {
                let segments: Vec<&str> = s.split("::").collect();
                if segments.len() != self.parts.len() {
                    return None;
                }
                let mut out = Vec::new();
                for (part, seg) in self.parts.iter().zip(&segments) {
                    match part {
                        IdPart::Const(c) => {
                            if c != seg {
                                return None;
                            }
                        }
                        IdPart::Column(_) => out.push((*seg).to_string()),
                    }
                }
                Some(out)
            }
        }
    }

    /// Coerce decoded text back to a typed value for a SQL predicate.
    pub fn coerce(text: &str, ty: DataType) -> GraphResult<Value> {
        Ok(match ty {
            DataType::Bigint => Value::Bigint(text.parse::<i64>().map_err(|_| {
                GraphError::Config(format!("id component '{text}' is not a BIGINT"))
            })?),
            DataType::Double => Value::Double(text.parse::<f64>().map_err(|_| {
                GraphError::Config(format!("id component '{text}' is not a DOUBLE"))
            })?),
            DataType::Varchar => Value::Varchar(text.to_string()),
            DataType::Boolean => Value::Boolean(text.eq_ignore_ascii_case("true")),
        })
    }
}

/// How an edge table defines its edge ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeIdDef {
    /// An explicit definition (possibly prefixed), like vertex ids.
    Explicit(IdDef),
    /// The implicit `src_v::label::dst_v` combination (Section 5). The
    /// label is materialized into the id text at encode time.
    Implicit,
}

/// Encode an implicit edge id.
pub fn implicit_edge_id(src: &ElementId, label: &str, dst: &ElementId) -> ElementId {
    ElementId::Str(format!("{}::{}::{}", src.as_text(), label, dst.as_text()))
}

/// Decompose an implicit edge id given a known label: splits on the first
/// `::label::` occurrence. Returns `(src_text, dst_text)`.
pub fn split_implicit_edge_id(id: &ElementId, label: &str) -> Option<(String, String)> {
    let text = match id {
        ElementId::Str(s) => s,
        ElementId::Long(_) => return None,
    };
    let needle = format!("::{label}::");
    let pos = text.find(&needle)?;
    let src = &text[..pos];
    let dst = &text[pos + needle.len()..];
    if src.is_empty() || dst.is_empty() {
        return None;
    }
    Some((src.to_string(), dst.to_string()))
}

/// Extract the label from an implicit edge id when the label is unknown but
/// candidate labels are supplied; returns the first candidate that splits
/// the id.
pub fn match_implicit_label<'a>(
    id: &ElementId,
    candidates: impl Iterator<Item = &'a str>,
) -> Option<(&'a str, String, String)> {
    for label in candidates {
        if let Some((src, dst)) = split_implicit_edge_id(id, label) {
            return Some((label, src, dst));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        let d = IdDef::parse("diseaseID").unwrap();
        assert!(d.is_single_column());
        assert_eq!(d.columns(), vec!["diseaseID"]);
        assert_eq!(d.prefix(), None);

        let d = IdDef::parse("'patient'::patientID").unwrap();
        assert_eq!(d.prefix(), Some("patient"));
        assert_eq!(d.columns(), vec!["patientID"]);

        let d = IdDef::parse("'ontology'::sourceID::targetID").unwrap();
        assert_eq!(d.columns(), vec!["sourceID", "targetID"]);

        assert!(IdDef::parse("").is_err());
        assert!(IdDef::parse("'onlyconst'").is_err());
        assert!(IdDef::parse("'unterminated::x").is_err());
    }

    #[test]
    fn encode_numeric_and_prefixed() {
        let d = IdDef::parse("diseaseID").unwrap();
        assert_eq!(d.encode(&[Value::Bigint(10)]).unwrap(), ElementId::Long(10));
        let d = IdDef::parse("'patient'::patientID").unwrap();
        assert_eq!(
            d.encode(&[Value::Bigint(1)]).unwrap(),
            ElementId::Str("patient::1".into())
        );
        let d = IdDef::parse("'o'::a::b").unwrap();
        assert_eq!(
            d.encode(&[Value::Bigint(1), Value::Bigint(2)]).unwrap(),
            ElementId::Str("o::1::2".into())
        );
        assert!(d.encode(&[Value::Bigint(1)]).is_err());
    }

    #[test]
    fn decode_matches_and_rejects() {
        let d = IdDef::parse("'patient'::patientID").unwrap();
        assert_eq!(d.decode(&ElementId::Str("patient::1".into())), Some(vec!["1".to_string()]));
        // Wrong prefix -> table eliminated.
        assert_eq!(d.decode(&ElementId::Str("disease::1".into())), None);
        // Plain long cannot be a prefixed id.
        assert_eq!(d.decode(&ElementId::Long(1)), None);
        // Wrong arity.
        assert_eq!(d.decode(&ElementId::Str("patient::1::2".into())), None);

        let single = IdDef::parse("diseaseID").unwrap();
        assert_eq!(single.decode(&ElementId::Long(10)), Some(vec!["10".to_string()]));
        assert_eq!(single.decode(&ElementId::Str("10".into())), Some(vec!["10".to_string()]));
    }

    #[test]
    fn coercion() {
        assert_eq!(IdDef::coerce("42", DataType::Bigint).unwrap(), Value::Bigint(42));
        assert_eq!(IdDef::coerce("x", DataType::Varchar).unwrap(), Value::Varchar("x".into()));
        assert!(IdDef::coerce("notanint", DataType::Bigint).is_err());
    }

    #[test]
    fn implicit_edge_ids_roundtrip() {
        let src = ElementId::Str("patient::1".into());
        let dst = ElementId::Long(10);
        let id = implicit_edge_id(&src, "hasDisease", &dst);
        assert_eq!(id, ElementId::Str("patient::1::hasDisease::10".into()));
        let (s, d) = split_implicit_edge_id(&id, "hasDisease").unwrap();
        assert_eq!(s, "patient::1");
        assert_eq!(d, "10");
        assert!(split_implicit_edge_id(&id, "isa").is_none());
        // Label matching across candidates.
        let (label, s, _) =
            match_implicit_label(&id, ["isa", "hasDisease"].into_iter()).unwrap();
        assert_eq!(label, "hasDisease");
        assert_eq!(s, "patient::1");
    }
}
