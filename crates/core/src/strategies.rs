//! The optimized traversal strategies of Section 6.2.
//!
//! These are *data-independent* plan rewrites applied at query compile time
//! through the provider strategy API:
//!
//! * **Predicate pushdown with filter steps** — `has(...)` steps following
//!   a GSA step fold into the step's `ElementFilter` and become SQL `WHERE`
//!   conjuncts.
//! * **Projection pushdown with properties steps** — a `values(...)` step
//!   immediately after a GraphStep sets the step's projection, shrinking
//!   the SQL select list to exactly the needed columns.
//! * **Aggregate pushdown with aggregation steps** — `count()`/`sum()`/...
//!   after a GraphStep turns into `SELECT COUNT(*)`/`SUM(col)` in SQL.
//! * **GraphStep::VertexStep mutation** — `g.V(ids).outE()` drops the
//!   useless vertex-table scan and becomes a GraphStep over *edges* with
//!   `src_v IN (ids)`; `g.V(ids).out()` additionally appends the
//!   `EdgeVertexStep` that resolves destination vertices.
//!
//! Each strategy can be disabled independently (the Figure 4 ablation).

use gremlin::backend::{ElementKind, Pred};
use gremlin::step::{EdgeVertexStep, GraphStep, Step, Traversal};
use gremlin::structure::{value_to_id, GValue};
use gremlin::{Direction, EdgeEnd, TraversalStrategy};

/// Which optimized strategies to enable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategyConfig {
    pub graphstep_vertexstep_mutation: bool,
    pub predicate_pushdown: bool,
    pub projection_pushdown: bool,
    pub aggregate_pushdown: bool,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        StrategyConfig {
            graphstep_vertexstep_mutation: true,
            predicate_pushdown: true,
            projection_pushdown: true,
            aggregate_pushdown: true,
        }
    }
}

impl StrategyConfig {
    /// All strategies off — the Figure 4 baseline.
    pub fn none() -> StrategyConfig {
        StrategyConfig {
            graphstep_vertexstep_mutation: false,
            predicate_pushdown: false,
            projection_pushdown: false,
            aggregate_pushdown: false,
        }
    }

    /// Build the strategy list in the paper's application order: mutation
    /// first, then predicate pushdown, then projection, then aggregate
    /// (Section 6.2's combined example).
    pub fn build(&self) -> Vec<std::sync::Arc<dyn TraversalStrategy>> {
        let mut out: Vec<std::sync::Arc<dyn TraversalStrategy>> = Vec::new();
        if self.graphstep_vertexstep_mutation {
            out.push(std::sync::Arc::new(GraphStepVertexStepMutation));
        }
        if self.predicate_pushdown {
            out.push(std::sync::Arc::new(PredicatePushdown));
        }
        if self.projection_pushdown {
            out.push(std::sync::Arc::new(ProjectionPushdown));
        }
        if self.aggregate_pushdown {
            out.push(std::sync::Arc::new(AggregatePushdown));
        }
        out
    }
}

// ------------------------------------------------------ predicate pushdown

/// Fold `has(...)` filter steps into the preceding GSA step's filter.
pub struct PredicatePushdown;

impl TraversalStrategy for PredicatePushdown {
    fn name(&self) -> &str {
        "PredicatePushdown"
    }

    fn apply(&self, traversal: &mut Traversal) {
        let mut out: Vec<Step> = Vec::with_capacity(traversal.steps.len());
        for step in traversal.steps.drain(..) {
            match step {
                Step::Has(preds) => {
                    // Find the filter of the immediately preceding GSA step.
                    let target = match out.last_mut() {
                        Some(Step::Graph(g)) => Some(&mut g.filter),
                        Some(Step::Vertex(v)) => Some(&mut v.filter),
                        Some(Step::EdgeVertex(e)) => Some(&mut e.filter),
                        _ => None,
                    };
                    match target {
                        None => out.push(Step::Has(preds)),
                        Some(filter) => {
                            for p in preds {
                                match (p.key.as_str(), &p.pred) {
                                    // hasLabel folds into the labels set.
                                    ("label", Pred::Within(vals)) => {
                                        let labels: Vec<String> =
                                            vals.iter().map(|v| v.to_string()).collect();
                                        merge_labels(&mut filter.labels, labels);
                                    }
                                    ("label", Pred::Eq(v)) => {
                                        merge_labels(&mut filter.labels, vec![v.to_string()]);
                                    }
                                    // hasId folds into the ids set.
                                    ("id", Pred::Within(vals)) => {
                                        let ids: Vec<_> =
                                            vals.iter().filter_map(value_to_id).collect();
                                        merge_ids(&mut filter.ids, ids);
                                    }
                                    ("id", Pred::Eq(v)) => {
                                        if let Some(id) = value_to_id(v) {
                                            merge_ids(&mut filter.ids, vec![id]);
                                        }
                                    }
                                    _ => filter.predicates.push(p),
                                }
                            }
                        }
                    }
                }
                Step::Filter(spec) => {
                    // Fold `filter(inV().id() == X)` / `filter(outV().id()
                    // == X)` after an edge-producing GSA step into a
                    // dst/src id constraint — the Table 1 getLink shape.
                    // (Assumes referentially intact edges: an edge whose
                    // endpoint row is missing would be kept rather than
                    // dropped, but such edges cannot express the filter's
                    // comparison anyway.)
                    let folded = try_fold_endpoint_filter(&mut out, &spec);
                    if !folded {
                        out.push(Step::Filter(spec));
                    }
                }
                other => out.push(other),
            }
        }
        traversal.steps = out;
    }
}

/// Attempt to fold an endpoint-id comparison filter into the preceding
/// edge-producing GSA step. Returns true when folded.
fn try_fold_endpoint_filter(out: &mut [Step], spec: &gremlin::step::FilterSpec) -> bool {
    use gremlin::step::CompareOp;
    let Some((CompareOp::Eq, value)) = &spec.compare else { return false };
    let Some(id) = value_to_id(value) else { return false };
    // The sub-traversal must be exactly endpoint -> id().
    let end = match spec.traversal.steps.as_slice() {
        [Step::EdgeVertex(ev), Step::Id] if ev.filter.is_empty() => ev.end,
        _ => return false,
    };
    let produces_edges = |s: &Step| match s {
        Step::Graph(g) => g.kind == ElementKind::Edges,
        Step::Vertex(v) => v.to == ElementKind::Edges,
        _ => false,
    };
    let Some(last) = out.last_mut() else { return false };
    if !produces_edges(last) {
        return false;
    }
    let filter = match last {
        Step::Graph(g) => &mut g.filter,
        Step::Vertex(v) => &mut v.filter,
        _ => unreachable!("produces_edges checked"),
    };
    match end {
        EdgeEnd::In => merge_ids(&mut filter.dst_ids, vec![id]),
        EdgeEnd::Out => merge_ids(&mut filter.src_ids, vec![id]),
        _ => return false,
    }
    true
}

fn merge_labels(slot: &mut Option<Vec<String>>, labels: Vec<String>) {
    match slot {
        None => *slot = Some(labels),
        Some(existing) => {
            // Intersection: both constraints must hold.
            existing.retain(|l| labels.contains(l));
        }
    }
}

fn merge_ids(slot: &mut Option<Vec<gremlin::ElementId>>, ids: Vec<gremlin::ElementId>) {
    match slot {
        None => *slot = Some(ids),
        Some(existing) => existing.retain(|i| ids.contains(i)),
    }
}

// ----------------------------------------------------- projection pushdown

/// Fold a `values(keys)` step immediately following a GraphStep into the
/// step's projection, so SQL selects only those columns.
pub struct ProjectionPushdown;

impl TraversalStrategy for ProjectionPushdown {
    fn name(&self) -> &str {
        "ProjectionPushdown"
    }

    fn apply(&self, traversal: &mut Traversal) {
        let mut out: Vec<Step> = Vec::with_capacity(traversal.steps.len());
        for step in traversal.steps.drain(..) {
            match step {
                Step::Values(keys) if !keys.is_empty() => {
                    if let Some(Step::Graph(g)) = out.last_mut() {
                        if g.filter.projection.is_none() && g.filter.aggregate.is_none() {
                            g.filter.projection = Some(keys);
                            continue;
                        }
                    }
                    out.push(Step::Values(keys));
                }
                other => out.push(other),
            }
        }
        traversal.steps = out;
    }
}

// ------------------------------------------------------ aggregate pushdown

/// Fold a global aggregate step immediately following a GraphStep into the
/// step's filter so the backend issues `SELECT COUNT(*)` / `SUM(col)` /
/// etc. instead of fetching elements.
pub struct AggregatePushdown;

impl TraversalStrategy for AggregatePushdown {
    fn name(&self) -> &str {
        "AggregatePushdown"
    }

    fn apply(&self, traversal: &mut Traversal) {
        let mut out: Vec<Step> = Vec::with_capacity(traversal.steps.len());
        for step in traversal.steps.drain(..) {
            match step {
                Step::Aggregate(op) => {
                    if let Some(Step::Graph(g)) = out.last_mut() {
                        let can_push = match op {
                            gremlin::AggOp::Count => true,
                            // sum/mean/min/max need a pushed projection to
                            // know which column to aggregate.
                            _ => g.filter.projection.is_some(),
                        };
                        if can_push && g.filter.aggregate.is_none() {
                            g.filter.aggregate = Some(op);
                            continue;
                        }
                    }
                    out.push(Step::Aggregate(op));
                }
                other => out.push(other),
            }
        }
        traversal.steps = out;
    }
}

// ------------------------------------------- GraphStep::VertexStep mutation

/// Rewrite `GraphStep(V, ids-only) -> VertexStep` into a single GraphStep
/// over edges with a src/dst id constraint, eliminating the pointless
/// vertex-table query (Section 6.2).
pub struct GraphStepVertexStepMutation;

impl TraversalStrategy for GraphStepVertexStepMutation {
    fn name(&self) -> &str {
        "GraphStepVertexStepMutation"
    }

    fn apply(&self, traversal: &mut Traversal) {
        let steps = std::mem::take(&mut traversal.steps);
        let mut out: Vec<Step> = Vec::with_capacity(steps.len());
        let mut iter = steps.into_iter().peekable();
        while let Some(step) = iter.next() {
            let applicable = match &step {
                Step::Graph(g) => {
                    g.kind == ElementKind::Vertices
                        && g.filter.ids.is_some()
                        && g.filter.labels.is_none()
                        && g.filter.predicates.is_empty()
                        && g.filter.projection.is_none()
                        && g.filter.aggregate.is_none()
                }
                _ => false,
            };
            if applicable {
                if let Some(Step::Vertex(v)) = iter.peek() {
                    // Only Out and In have a single-sided id constraint.
                    if matches!(v.direction, Direction::Out | Direction::In) {
                        let ids = match &step {
                            Step::Graph(g) => g.filter.ids.clone().unwrap(),
                            _ => unreachable!(),
                        };
                        let v = match iter.next() {
                            Some(Step::Vertex(v)) => v,
                            _ => unreachable!(),
                        };
                        let mut filter = v.filter.clone();
                        match v.direction {
                            Direction::Out => filter.src_ids = Some(ids),
                            Direction::In => filter.dst_ids = Some(ids),
                            Direction::Both => unreachable!(),
                        }
                        if !v.edge_labels.is_empty() {
                            merge_labels(&mut filter.labels, v.edge_labels.clone());
                        }
                        out.push(Step::Graph(GraphStep { kind: ElementKind::Edges, filter }));
                        // out()/in() need the endpoint vertices afterwards.
                        if v.to == ElementKind::Vertices {
                            let end = match v.direction {
                                Direction::Out => EdgeEnd::In,
                                Direction::In => EdgeEnd::Out,
                                Direction::Both => unreachable!(),
                            };
                            out.push(Step::EdgeVertex(EdgeVertexStep {
                                end,
                                filter: Default::default(),
                            }));
                        }
                        continue;
                    }
                }
            }
            out.push(step);
        }
        traversal.steps = out;
    }
}

/// Translate a GValue into a display-stable string (labels are strings).
#[allow(dead_code)]
fn label_string(v: &GValue) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin::backend::ElementFilter;
    use gremlin::step::VertexStep;
    use gremlin::structure::ElementId;
    use gremlin::{AggOp, PropPred, StrategyRegistry};

    fn apply(config: StrategyConfig, mut t: Traversal) -> Traversal {
        let mut reg = StrategyRegistry::new();
        for s in config.build() {
            reg.add(s);
        }
        reg.apply_all(&mut t);
        t
    }

    fn graph_v_ids(ids: Vec<i64>) -> Step {
        Step::Graph(GraphStep {
            kind: ElementKind::Vertices,
            filter: ElementFilter::with_ids(ids.into_iter().map(ElementId::Long).collect()),
        })
    }

    fn out_e(labels: Vec<&str>) -> Step {
        Step::Vertex(VertexStep {
            direction: Direction::Out,
            edge_labels: labels.into_iter().map(str::to_string).collect(),
            to: ElementKind::Edges,
            filter: ElementFilter::default(),
        })
    }

    #[test]
    fn predicate_pushdown_folds_has_into_graphstep() {
        // g.V().hasLabel('patient').has('name','Alice')
        let t = Traversal::new(vec![
            Step::Graph(GraphStep { kind: ElementKind::Vertices, filter: Default::default() }),
            Step::Has(vec![PropPred {
                key: "label".into(),
                pred: Pred::Within(vec![GValue::Str("patient".into())]),
            }]),
            Step::Has(vec![PropPred {
                key: "name".into(),
                pred: Pred::Eq(GValue::Str("Alice".into())),
            }]),
        ]);
        let t = apply(StrategyConfig::default(), t);
        assert_eq!(t.steps.len(), 1);
        match &t.steps[0] {
            Step::Graph(g) => {
                assert_eq!(g.filter.labels, Some(vec!["patient".to_string()]));
                assert_eq!(g.filter.predicates.len(), 1);
                assert_eq!(g.filter.predicates[0].key, "name");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn has_id_folds_into_ids() {
        let t = Traversal::new(vec![
            Step::Graph(GraphStep { kind: ElementKind::Vertices, filter: Default::default() }),
            Step::Has(vec![PropPred {
                key: "id".into(),
                pred: Pred::Within(vec![GValue::Long(1), GValue::Long(2)]),
            }]),
        ]);
        let t = apply(StrategyConfig::default(), t);
        match &t.steps[0] {
            Step::Graph(g) => {
                assert_eq!(
                    g.filter.ids,
                    Some(vec![ElementId::Long(1), ElementId::Long(2)])
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn projection_and_aggregate_pushdown() {
        // g.V().values('w').sum()
        let t = Traversal::new(vec![
            Step::Graph(GraphStep { kind: ElementKind::Vertices, filter: Default::default() }),
            Step::Values(vec!["w".into()]),
            Step::Aggregate(AggOp::Sum),
        ]);
        let t = apply(StrategyConfig::default(), t);
        assert_eq!(t.steps.len(), 1);
        match &t.steps[0] {
            Step::Graph(g) => {
                assert_eq!(g.filter.projection, Some(vec!["w".to_string()]));
                assert_eq!(g.filter.aggregate, Some(AggOp::Sum));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sum_without_projection_stays_in_engine() {
        // g.V().count() pushes; g.V().sum() (nonsensical but legal) doesn't.
        let t = Traversal::new(vec![
            Step::Graph(GraphStep { kind: ElementKind::Vertices, filter: Default::default() }),
            Step::Aggregate(AggOp::Sum),
        ]);
        let t = apply(StrategyConfig::default(), t);
        assert_eq!(t.steps.len(), 2);
    }

    #[test]
    fn graphstep_vertexstep_mutation_oute() {
        // g.V(ids).outE('l') -> Graph(E, src_ids, labels=['l'])
        let t = Traversal::new(vec![graph_v_ids(vec![1, 2]), out_e(vec!["l"])]);
        let t = apply(StrategyConfig::default(), t);
        assert_eq!(t.steps.len(), 1);
        match &t.steps[0] {
            Step::Graph(g) => {
                assert_eq!(g.kind, ElementKind::Edges);
                assert_eq!(
                    g.filter.src_ids,
                    Some(vec![ElementId::Long(1), ElementId::Long(2)])
                );
                assert_eq!(g.filter.labels, Some(vec!["l".to_string()]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn graphstep_vertexstep_mutation_out_adds_edge_vertex() {
        // g.V(ids).out() -> Graph(E, src_ids) + EdgeVertex(In)
        let t = Traversal::new(vec![
            graph_v_ids(vec![7]),
            Step::Vertex(VertexStep {
                direction: Direction::Out,
                edge_labels: vec![],
                to: ElementKind::Vertices,
                filter: ElementFilter::default(),
            }),
        ]);
        let t = apply(StrategyConfig::default(), t);
        assert_eq!(t.steps.len(), 2);
        assert!(matches!(&t.steps[0], Step::Graph(g) if g.kind == ElementKind::Edges));
        assert!(matches!(&t.steps[1], Step::EdgeVertex(e) if e.end == EdgeEnd::In));
        // in() mirrors to dst_ids + EdgeVertex(Out).
        let t = Traversal::new(vec![
            graph_v_ids(vec![7]),
            Step::Vertex(VertexStep {
                direction: Direction::In,
                edge_labels: vec![],
                to: ElementKind::Vertices,
                filter: ElementFilter::default(),
            }),
        ]);
        let t = apply(StrategyConfig::default(), t);
        assert!(matches!(&t.steps[0], Step::Graph(g) if g.filter.dst_ids.is_some()));
        assert!(matches!(&t.steps[1], Step::EdgeVertex(e) if e.end == EdgeEnd::Out));
    }

    #[test]
    fn mutation_skipped_for_both_and_non_id_graphsteps() {
        let t = Traversal::new(vec![
            graph_v_ids(vec![1]),
            Step::Vertex(VertexStep {
                direction: Direction::Both,
                edge_labels: vec![],
                to: ElementKind::Edges,
                filter: ElementFilter::default(),
            }),
        ]);
        let t = apply(StrategyConfig::default(), t);
        assert_eq!(t.steps.len(), 2); // unchanged
        // GraphStep without ids is not mutated.
        let t = Traversal::new(vec![
            Step::Graph(GraphStep { kind: ElementKind::Vertices, filter: Default::default() }),
            out_e(vec![]),
        ]);
        let t = apply(StrategyConfig::default(), t);
        assert_eq!(t.steps.len(), 2);
    }

    #[test]
    fn combined_paper_example() {
        // g.V(ids).outE().has('metIn','US').count()
        //   -> one GraphStep(E, src_ids, pred, agg=Count)
        let t = Traversal::new(vec![
            graph_v_ids(vec![1, 2, 3]),
            out_e(vec![]),
            Step::Has(vec![PropPred {
                key: "metIn".into(),
                pred: Pred::Eq(GValue::Str("US".into())),
            }]),
            Step::Aggregate(AggOp::Count),
        ]);
        let t = apply(StrategyConfig::default(), t);
        assert_eq!(t.steps.len(), 1, "{}", t.describe());
        match &t.steps[0] {
            Step::Graph(g) => {
                assert_eq!(g.kind, ElementKind::Edges);
                assert!(g.filter.src_ids.is_some());
                assert_eq!(g.filter.predicates.len(), 1);
                assert_eq!(g.filter.aggregate, Some(AggOp::Count));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disabled_strategies_leave_plan_alone() {
        let t = Traversal::new(vec![
            graph_v_ids(vec![1]),
            out_e(vec![]),
            Step::Has(vec![PropPred {
                key: "x".into(),
                pred: Pred::Eq(GValue::Long(1)),
            }]),
            Step::Aggregate(AggOp::Count),
        ]);
        let before = t.clone();
        let t = apply(StrategyConfig::none(), t);
        assert_eq!(t, before);
    }
}
