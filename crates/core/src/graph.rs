//! The `Db2Graph` entry point: open a graph over a database, run Gremlin,
//! and register the `graphQuery` polymorphic table function.

use std::sync::Arc;

use gremlin::exec::ExecOptions;
use gremlin::strategy::{IdentityRemoval, StrategyRegistry};
use gremlin::structure::{Element, GValue};
use gremlin::ScriptRunner;
use reldb::{DataType, Database, DbError, DbResult, RowSet, TableFunction, Value};

use crate::config::OverlayConfig;
use crate::error::{GraphError, GraphResult};
use crate::graph_structure::{to_value, Db2GraphBackend};
use crate::metrics::{ExplainReport, MetricsSnapshot, ProfileReport, Profiler, StepExplain};
use crate::sql_dialect::SqlDialect;
use crate::stats::OverlayStatsSnapshot;
use crate::strategies::StrategyConfig;
use crate::topology::Topology;

/// Options controlling a graph's optimizer and executor.
#[derive(Debug, Clone, Default)]
pub struct GraphOptions {
    pub strategies: StrategyConfig,
    pub exec: ExecOptions,
    /// Intra-query worker threads for the backend's probe fan-out.
    /// `None` defers to `DB2GRAPH_THREADS` / available parallelism;
    /// `Some(1)` forces fully sequential execution.
    pub threads: Option<usize>,
}

/// A property graph overlaid on a relational database.
///
/// The analogue of the paper's
/// `g = Db2Graph.open('config.properties').traversal()`: opening resolves
/// the overlay topology against the catalog; afterwards every Gremlin query
/// executes as SQL against the *live* tables — updates made through SQL are
/// immediately visible to graph queries, because there is no second copy of
/// the data.
pub struct Db2Graph {
    db: Arc<Database>,
    backend: Arc<Db2GraphBackend>,
    registry: StrategyRegistry,
    options: GraphOptions,
}

impl Db2Graph {
    /// Open a graph with default options (all optimized strategies on).
    pub fn open(db: Arc<Database>, config: &OverlayConfig) -> GraphResult<Arc<Db2Graph>> {
        Self::open_with_options(db, config, GraphOptions::default())
    }

    /// Open a graph from a JSON overlay configuration string.
    pub fn open_json(db: Arc<Database>, config_json: &str) -> GraphResult<Arc<Db2Graph>> {
        let config = OverlayConfig::from_json(config_json)?;
        Self::open(db, &config)
    }

    /// Open with explicit optimizer/executor options.
    pub fn open_with_options(
        db: Arc<Database>,
        config: &OverlayConfig,
        options: GraphOptions,
    ) -> GraphResult<Arc<Db2Graph>> {
        let topo = Arc::new(Topology::resolve(&db, config)?);
        let mut backend = Db2GraphBackend::new(db.clone(), topo);
        if let Some(n) = options.threads {
            backend = backend.with_threads(n);
        }
        let backend = Arc::new(backend);
        let mut registry = StrategyRegistry::new();
        registry.add(Arc::new(IdentityRemoval));
        for s in options.strategies.build() {
            registry.add(s);
        }
        Ok(Arc::new(Db2Graph { db, backend, registry, options }))
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The resolved overlay topology.
    pub fn topology(&self) -> &Topology {
        self.backend.topology()
    }

    /// The backend's intra-query worker count.
    pub fn threads(&self) -> usize {
        self.backend.threads()
    }

    /// The SQL Dialect module (template cache, index advisor).
    pub fn dialect(&self) -> &SqlDialect {
        self.backend.dialect()
    }

    /// Overlay execution counters.
    pub fn stats(&self) -> OverlayStatsSnapshot {
        self.backend.stats().snapshot()
    }

    /// Aggregate metrics for this graph: traversal and SQL statement
    /// counts, SQL wall time, rows returned, template cache hit rate, and
    /// the overlay's table-elimination counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.backend.registry().snapshot_with(self.backend.stats().snapshot())
    }

    /// Run a Gremlin script; returns the final statement's results.
    pub fn run(&self, gremlin: &str) -> GraphResult<Vec<GValue>> {
        self.backend.registry().record_traversal();
        // A `.profile()` terminator needs an observing pipeline; the
        // substring check may rarely false-positive (e.g. inside a string
        // literal), which only costs the observation overhead.
        if gremlin.contains(".profile()") {
            return self.run_profiled(gremlin).map(|(values, _)| values);
        }
        let runner = ScriptRunner::new(self.backend.as_ref())
            .with_strategies(self.registry.clone())
            .with_options(self.options.exec.clone());
        runner.run(gremlin).map_err(GraphError::Gremlin)
    }

    /// Run a Gremlin script with profiling enabled; returns the results
    /// and the structured per-step report (strategy rewrites, step
    /// timings, table decisions, SQL statements).
    pub fn profile(&self, gremlin: &str) -> GraphResult<(Vec<GValue>, ProfileReport)> {
        self.backend.registry().record_traversal();
        self.run_profiled(gremlin)
    }

    fn run_profiled(&self, gremlin: &str) -> GraphResult<(Vec<GValue>, ProfileReport)> {
        let profiler = Profiler::enabled();
        let backend = self.backend.with_profiler(profiler.clone());
        let runner = ScriptRunner::new(&backend)
            .with_strategies(self.registry.clone())
            .with_options(self.options.exec.clone())
            .with_observer(Arc::new(profiler.clone()));
        let values = runner.run(gremlin).map_err(GraphError::Gremlin)?;
        Ok((values, profiler.report()))
    }

    /// The optimized step plan for a single-statement script.
    pub fn plan(&self, gremlin: &str) -> GraphResult<gremlin::Traversal> {
        let runner = ScriptRunner::new(self.backend.as_ref())
            .with_strategies(self.registry.clone())
            .with_options(self.options.exec.clone());
        runner.plan(gremlin).map_err(GraphError::Gremlin)
    }

    /// Plan description string (EXPLAIN for graph queries): the optimized
    /// plan plus, per GSA step and per overlay table, the SQL that would
    /// be generated or the reason the table is eliminated. Nothing is
    /// executed and no data is touched.
    pub fn explain(&self, gremlin: &str) -> GraphResult<String> {
        Ok(self.explain_report(gremlin)?.to_string())
    }

    /// Structured form of [`Self::explain`].
    pub fn explain_report(&self, gremlin: &str) -> GraphResult<ExplainReport> {
        let traversal = self.plan(gremlin)?;
        let mut steps = Vec::new();
        for (i, step) in traversal.steps.iter().enumerate() {
            let tables = self.backend.explain_compiled_step(step);
            if !tables.is_empty() {
                steps.push(StepExplain { index: i, description: step.describe(), tables });
            }
        }
        Ok(ExplainReport { plan: traversal.describe(), steps })
    }

    /// Run a Gremlin script and shape the results into rows for the given
    /// declared columns — the conversion behind the `graphQuery` table
    /// function (Section 4). Shaping rules:
    ///
    /// * map results (`valueMap`, `select('a','b')`) become rows by column
    ///   name;
    /// * element results become rows from their properties (plus `id` and
    ///   `label` pseudo-columns);
    /// * scalar results are chunked into rows of the declared width, in
    ///   stream order (so `values('a','b')` with two declared columns
    ///   yields one row per element);
    /// * a single list result (from `cap`/`fold`) is unwrapped first.
    pub fn query_rows(&self, gremlin: &str, columns: &[(String, DataType)]) -> GraphResult<RowSet> {
        let mut results = self.run(gremlin)?;
        if results.len() == 1 {
            if let GValue::List(items) = &results[0] {
                results = items.clone();
            }
        }
        let names: Vec<String> = columns.iter().map(|(n, _)| n.clone()).collect();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let all_maps = !results.is_empty()
            && results.iter().all(|v| matches!(v, GValue::Map(_)));
        let all_elements = !results.is_empty()
            && results
                .iter()
                .all(|v| matches!(v, GValue::Vertex(_) | GValue::Edge(_)));
        if all_maps {
            for v in &results {
                let GValue::Map(m) = v else { unreachable!() };
                let row: Vec<Value> = names
                    .iter()
                    .map(|n| {
                        m.iter()
                            .find(|(k, _)| k.eq_ignore_ascii_case(n))
                            .and_then(|(_, v)| to_value(v))
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                rows.push(row);
            }
        } else if all_elements {
            for v in &results {
                let e = v.as_element().expect("checked");
                let row: Vec<Value> = names
                    .iter()
                    .map(|n| {
                        gremlin::backend::element_property(&e, n)
                            .and_then(|v| to_value(&v))
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                rows.push(row);
            }
        } else {
            // Scalars chunked into rows of the declared width.
            let width = columns.len().max(1);
            if !results.is_empty() && results.len() % width != 0 {
                return Err(GraphError::Config(format!(
                    "graphQuery returned {} values, not divisible into rows of {} declared columns",
                    results.len(),
                    width
                )));
            }
            for chunk in results.chunks(width) {
                let row: Vec<Value> = chunk
                    .iter()
                    .map(|v| to_value(v).unwrap_or(Value::Null))
                    .collect();
                rows.push(row);
            }
        }
        Ok(RowSet::with_rows(names, rows))
    }

    /// Register this graph's `graphQuery` table function in its database
    /// under the given name (conventionally `graphQuery`), enabling the
    /// Section 4 synergy pattern:
    ///
    /// ```sql
    /// SELECT ... FROM T, TABLE(graphQuery('gremlin', '<script>'))
    ///   AS P (col1 BIGINT, col2 BIGINT) WHERE ...
    /// ```
    pub fn register_graph_query(self: &Arc<Self>, name: &str) {
        let graph = Arc::clone(self);
        self.db.register_function(name, Arc::new(GraphQueryFunction { graph }));
    }

    /// Convert a list of elements into their ids (convenience for callers).
    pub fn element_ids(values: &[GValue]) -> Vec<GValue> {
        values
            .iter()
            .map(|v| match v {
                GValue::Vertex(vx) => gremlin::structure::id_value(&vx.id),
                GValue::Edge(e) => gremlin::structure::id_value(&e.id),
                other => other.clone(),
            })
            .collect()
    }
}

/// The `graphQuery` polymorphic table function.
struct GraphQueryFunction {
    graph: Arc<Db2Graph>,
}

impl TableFunction for GraphQueryFunction {
    fn eval(&self, args: &[Value], columns: &[(String, DataType)]) -> DbResult<RowSet> {
        // Accept graphQuery('gremlin', '<script>') and graphQuery('<script>').
        let script = match args {
            [lang, script] => {
                let l = lang.as_str()?;
                if !l.eq_ignore_ascii_case("gremlin") {
                    return Err(DbError::Unsupported(format!(
                        "graphQuery language '{l}' (only 'gremlin' is supported)"
                    )));
                }
                script.as_str()?
            }
            [script] => script.as_str()?,
            _ => {
                return Err(DbError::Execution(
                    "graphQuery expects (language, script) or (script)".into(),
                ))
            }
        };
        self.graph
            .query_rows(script, columns)
            .map_err(|e| DbError::Execution(e.to_string()))
    }
}

/// Helper used in docs and tests: true when a Gremlin result set consists
/// of elements only.
pub fn all_elements(values: &[GValue]) -> bool {
    values.iter().all(|v| v.as_element().map(|_: Element| true).unwrap_or(false))
}
