//! The `Db2Graph` entry point: open a graph over a database, run Gremlin,
//! and register the `graphQuery` polymorphic table function.

use std::sync::Arc;

use gremlin::exec::ExecOptions;
use gremlin::strategy::{IdentityRemoval, StrategyRegistry};
use gremlin::structure::{Element, GValue};
use gremlin::ScriptRunner;
use reldb::{DataType, Database, DbError, DbResult, RowSet, TableFunction, Value};

use crate::adjcache::{AdjCache, ADJ_CACHE_MB_ENV, DEFAULT_ADJ_CACHE_MB};
use crate::config::OverlayConfig;
use crate::error::{from_gremlin, GraphError, GraphResult};
use crate::events::record_config_warning;
use crate::graph_structure::{to_value, Db2GraphBackend};
use crate::metrics::{
    step_kind, ExplainReport, MetricsSnapshot, ProfileReport, Profiler, SlowQueryEntry,
    SlowQueryLog, StepExplain, DEFAULT_SLOW_LOG_CAPACITY,
};
use crate::sql_dialect::{SqlDialect, WorkloadReport};
use crate::stats::OverlayStatsSnapshot;
use crate::strategies::StrategyConfig;
use crate::topology::Topology;
use crate::trace::{SpanKind, TraceSink, Tracer, DEFAULT_TRACE_CAPACITY};

/// Options controlling a graph's optimizer and executor.
#[derive(Debug, Clone, Default)]
pub struct GraphOptions {
    pub strategies: StrategyConfig,
    pub exec: ExecOptions,
    /// Intra-query worker threads for the backend's probe fan-out.
    /// `None` defers to `DB2GRAPH_THREADS` / available parallelism;
    /// `Some(1)` forces fully sequential execution.
    pub threads: Option<usize>,
    /// Collect hierarchical trace spans for every query. `None` defers to
    /// the environment: tracing turns on when `DB2GRAPH_TRACE` is set (or
    /// when `trace_path` is). `Some(false)` forces it off regardless.
    pub trace: Option<bool>,
    /// Span ring-buffer capacity (spans, not bytes); default
    /// [`DEFAULT_TRACE_CAPACITY`].
    pub trace_capacity: Option<usize>,
    /// File the Chrome trace JSON is written to when the graph is dropped
    /// (also exportable any time via [`Db2Graph::export_trace`]). `None`
    /// defers to `DB2GRAPH_TRACE=<path>`.
    pub trace_path: Option<String>,
    /// Wall-time threshold (nanoseconds) above which a completed query
    /// enters the slow-query log. `None` defers to
    /// `DB2GRAPH_SLOW_QUERY_MS`; unset means no slow-query log.
    pub slow_query_nanos: Option<u64>,
    /// Worst-N capacity of the slow-query log; default
    /// [`DEFAULT_SLOW_LOG_CAPACITY`].
    pub slow_log_capacity: Option<usize>,
    /// Directory the underlying database persists to (WAL + checkpoints);
    /// consumed by [`GraphOptions::open_database`]. `None` defers to
    /// `DB2GRAPH_DATA_DIR`; unset means a purely in-memory database.
    pub data_dir: Option<String>,
    /// Durability mode for the data directory. `None` defers to
    /// `DB2GRAPH_DURABILITY` (`always`/`batch`/`off`), then `always`.
    pub durability: Option<reldb::Durability>,
    /// Byte budget (MiB) for the columnar adjacency cache; `Some(0)`
    /// disables it. `None` defers to `DB2GRAPH_ADJ_CACHE_MB`, then
    /// [`DEFAULT_ADJ_CACHE_MB`].
    pub adj_cache_mb: Option<usize>,
}

impl GraphOptions {
    /// Open the database these options describe: durable (with crash
    /// recovery) when a data directory is configured here or via
    /// `DB2GRAPH_DATA_DIR`, in-memory otherwise.
    pub fn open_database(&self) -> DbResult<Arc<Database>> {
        let dir = self
            .data_dir
            .clone()
            .or_else(|| std::env::var("DB2GRAPH_DATA_DIR").ok().filter(|s| !s.is_empty()));
        let Some(dir) = dir else {
            return Ok(Arc::new(Database::new()));
        };
        let mode = self
            .durability
            .or_else(|| {
                let raw = std::env::var("DB2GRAPH_DURABILITY").ok()?;
                let parsed = reldb::Durability::parse(&raw);
                if parsed.is_none() {
                    record_config_warning(
                        "DB2GRAPH_DURABILITY",
                        &raw,
                        "default durability (always)",
                    );
                }
                parsed
            })
            .unwrap_or_default();
        Ok(Arc::new(Database::open_with(dir, mode)?))
    }
}

/// A property graph overlaid on a relational database.
///
/// The analogue of the paper's
/// `g = Db2Graph.open('config.properties').traversal()`: opening resolves
/// the overlay topology against the catalog; afterwards every Gremlin query
/// executes as SQL against the *live* tables — updates made through SQL are
/// immediately visible to graph queries, because there is no second copy of
/// the data.
pub struct Db2Graph {
    db: Arc<Database>,
    backend: Arc<Db2GraphBackend>,
    registry: StrategyRegistry,
    options: GraphOptions,
    /// Present when tracing is on; every query's span batch lands here.
    sink: Option<Arc<TraceSink>>,
    /// Where the Chrome trace JSON is written when the graph drops.
    trace_path: Option<String>,
    /// Present when a slow-query threshold is configured.
    slow_log: Option<Arc<SlowQueryLog>>,
    /// The columnar adjacency cache, when enabled (budget > 0).
    adj_cache: Option<Arc<AdjCache>>,
}

impl Db2Graph {
    /// Open a graph with default options (all optimized strategies on).
    pub fn open(db: Arc<Database>, config: &OverlayConfig) -> GraphResult<Arc<Db2Graph>> {
        Self::open_with_options(db, config, GraphOptions::default())
    }

    /// Open a graph from a JSON overlay configuration string.
    pub fn open_json(db: Arc<Database>, config_json: &str) -> GraphResult<Arc<Db2Graph>> {
        let config = OverlayConfig::from_json(config_json)?;
        Self::open(db, &config)
    }

    /// Open with explicit optimizer/executor options.
    pub fn open_with_options(
        db: Arc<Database>,
        config: &OverlayConfig,
        options: GraphOptions,
    ) -> GraphResult<Arc<Db2Graph>> {
        let topo = Arc::new(Topology::resolve(&db, config)?);
        let mut backend = Db2GraphBackend::new(db.clone(), topo);
        if let Some(n) = options.threads {
            backend = backend.with_threads(n);
        }
        // Adjacency-cache budget: explicit option wins, then the
        // environment, then the default. 0 MiB disables the cache.
        let adj_cache_mb = options.adj_cache_mb.unwrap_or_else(|| {
            match std::env::var(ADJ_CACHE_MB_ENV) {
                Ok(raw) => match raw.trim().parse::<usize>() {
                    Ok(mb) => mb,
                    Err(_) => {
                        record_config_warning(
                            ADJ_CACHE_MB_ENV,
                            &raw,
                            &format!("default budget ({DEFAULT_ADJ_CACHE_MB} MiB)"),
                        );
                        DEFAULT_ADJ_CACHE_MB
                    }
                },
                Err(_) => DEFAULT_ADJ_CACHE_MB,
            }
        });
        let adj_cache = (adj_cache_mb > 0).then(|| {
            AdjCache::new(db.clone(), adj_cache_mb, backend.registry().clone())
        });
        let backend = Arc::new(backend.with_adj_cache(adj_cache.clone()));
        let mut registry = StrategyRegistry::new();
        registry.add(Arc::new(IdentityRemoval));
        for s in options.strategies.build() {
            registry.add(s);
        }
        // Telemetry knobs: explicit options win, then the environment.
        let env_trace_path =
            std::env::var("DB2GRAPH_TRACE").ok().filter(|s| !s.is_empty());
        let trace_enabled = options
            .trace
            .unwrap_or(options.trace_path.is_some() || env_trace_path.is_some());
        let sink = trace_enabled.then(|| {
            Arc::new(TraceSink::new(
                options.trace_capacity.unwrap_or(DEFAULT_TRACE_CAPACITY),
            ))
        });
        let trace_path = options.trace_path.clone().or(env_trace_path);
        let slow_query_nanos = options.slow_query_nanos.or_else(|| {
            let raw = std::env::var("DB2GRAPH_SLOW_QUERY_MS").ok()?;
            match raw.trim().parse::<u64>() {
                Ok(ms) => Some(ms.saturating_mul(1_000_000)),
                Err(_) => {
                    record_config_warning(
                        "DB2GRAPH_SLOW_QUERY_MS",
                        &raw,
                        "no slow-query log",
                    );
                    None
                }
            }
        });
        let slow_log = slow_query_nanos.map(|threshold| {
            Arc::new(SlowQueryLog::new(
                threshold,
                options.slow_log_capacity.unwrap_or(DEFAULT_SLOW_LOG_CAPACITY),
            ))
        });
        Ok(Arc::new(Db2Graph {
            db,
            backend,
            registry,
            options,
            sink,
            trace_path,
            slow_log,
            adj_cache,
        }))
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The resolved overlay topology.
    pub fn topology(&self) -> &Topology {
        self.backend.topology()
    }

    /// The backend's intra-query worker count.
    pub fn threads(&self) -> usize {
        self.backend.threads()
    }

    /// The SQL Dialect module (template cache, index advisor).
    pub fn dialect(&self) -> &SqlDialect {
        self.backend.dialect()
    }

    /// Overlay execution counters.
    pub fn stats(&self) -> OverlayStatsSnapshot {
        self.backend.stats().snapshot()
    }

    /// Aggregate metrics for this graph: traversal and SQL statement
    /// counts, SQL wall time, rows returned, template cache hit rate,
    /// latency percentiles, slow-query/trace counters, and the overlay's
    /// table-elimination counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap =
            self.backend.registry().snapshot_with(self.backend.stats().snapshot());
        if let Some(sink) = &self.sink {
            snap.trace_spans = sink.len() as u64;
            snap.dropped_spans = sink.dropped();
        }
        // MVCC gauges read live from the database: where commits have
        // advanced to, the oldest epoch any active snapshot still pins
        // (the vacuum horizon), and how many snapshots pin it there.
        snap.commit_epoch = self.db.commit_epoch();
        snap.snapshot_horizon = self.db.snapshot_horizon();
        snap.active_snapshots = self.db.active_snapshots() as u64;
        // Durability gauges (all zero for an in-memory database): WAL
        // volume, checkpoints completed, and what the last recovery did.
        snap.wal_records = self.db.wal_records();
        snap.wal_bytes = self.db.wal_bytes();
        snap.checkpoints = self.db.checkpoints();
        snap.recovery_replayed_epochs = self.db.recovery_replayed_epochs();
        // Adjacency-cache residency gauge (the hit/miss/eviction/
        // invalidation counters flow through the registry).
        snap.adj_cache_bytes = self.adj_cache.as_ref().map_or(0, |c| c.bytes() as u64);
        snap
    }

    /// The columnar adjacency cache, when enabled.
    pub fn adj_cache(&self) -> Option<&Arc<AdjCache>> {
        self.adj_cache.as_ref()
    }

    /// Eagerly build complete adjacency-cache segments for every edge
    /// table by scanning them once at a fresh snapshot (the explicit warm
    /// call; lazy population happens on every plain query anyway).
    /// Returns the number of edges cached — 0 when the cache is disabled.
    pub fn warm_adjacency_cache(&self) -> GraphResult<usize> {
        if self.adj_cache.is_none() {
            return Ok(0);
        }
        self.backend.with_snapshot(Some(self.db.snapshot())).warm_adj_cache()
    }

    /// True when every query runs through the observing pipeline (tracing
    /// or the slow-query log is configured).
    fn observing(&self) -> bool {
        self.sink.is_some() || self.slow_log.is_some()
    }

    /// Run a Gremlin script; returns the final statement's results.
    ///
    /// The whole script executes against one storage snapshot pinned at
    /// entry: every generated SQL statement — across all traversal steps
    /// and all fan-out worker threads — observes the same committed
    /// database state, even while concurrent writers commit (see
    /// `docs/CONSISTENCY.md`). A nested `graphQuery` call issued *by SQL*
    /// pins its own snapshot at its own start time.
    pub fn run(&self, gremlin: &str) -> GraphResult<Vec<GValue>> {
        self.run_with_deadline(gremlin, None)
    }

    /// [`Self::run`] with a cooperative deadline: once `deadline` passes,
    /// the next SQL-issuing operation (in any traversal step, statement,
    /// or fan-out worker) aborts the script with [`GraphError::Timeout`]
    /// instead of touching storage. The snapshot pinned at entry is
    /// released on abort like on any other error path. `None` never times
    /// out.
    pub fn run_with_deadline(
        &self,
        gremlin: &str,
        deadline: Option<std::time::Instant>,
    ) -> GraphResult<Vec<GValue>> {
        self.backend.registry().record_traversal();
        // A `.profile()` terminator needs an observing pipeline; the
        // substring check may rarely false-positive (e.g. inside a string
        // literal), which only costs the observation overhead. Tracing and
        // the slow-query log likewise need per-step observation.
        if gremlin.contains(".profile()") || self.observing() {
            return self.run_observed(gremlin, deadline, None).map(|(values, _)| values);
        }
        let start = std::time::Instant::now();
        let backend = self
            .backend
            .with_snapshot(Some(self.db.snapshot()))
            .with_deadline(deadline);
        let runner = ScriptRunner::new(&backend)
            .with_strategies(self.registry.clone())
            .with_options(self.options.exec.clone());
        let out = runner.run(gremlin).map_err(from_gremlin);
        self.backend.registry().record_query_latency(start.elapsed().as_nanos() as u64);
        out
    }

    /// Run a Gremlin script with profiling enabled; returns the results
    /// and the structured per-step report (strategy rewrites, step
    /// timings, table decisions, SQL statements).
    pub fn profile(&self, gremlin: &str) -> GraphResult<(Vec<GValue>, ProfileReport)> {
        self.profile_with_deadline(gremlin, None)
    }

    /// [`Self::profile`] under a cooperative deadline (see
    /// [`Self::run_with_deadline`]).
    pub fn profile_with_deadline(
        &self,
        gremlin: &str,
        deadline: Option<std::time::Instant>,
    ) -> GraphResult<(Vec<GValue>, ProfileReport)> {
        self.backend.registry().record_traversal();
        self.run_observed(gremlin, deadline, None)
    }

    /// [`Self::run_with_deadline`] carrying the serving layer's request
    /// id: the observed pipeline stamps it on the trace span root and the
    /// slow-query entry, so one id correlates the HTTP response with its
    /// spans and its slow-query record. On the fast (non-observing) path
    /// the id has nothing to attach to and is simply unused.
    pub fn run_for_request(
        &self,
        gremlin: &str,
        deadline: Option<std::time::Instant>,
        request_id: Option<&str>,
    ) -> GraphResult<Vec<GValue>> {
        self.backend.registry().record_traversal();
        if gremlin.contains(".profile()") || self.observing() {
            return self.run_observed(gremlin, deadline, request_id).map(|(values, _)| values);
        }
        let start = std::time::Instant::now();
        let backend = self
            .backend
            .with_snapshot(Some(self.db.snapshot()))
            .with_deadline(deadline);
        let runner = ScriptRunner::new(&backend)
            .with_strategies(self.registry.clone())
            .with_options(self.options.exec.clone());
        let out = runner.run(gremlin).map_err(from_gremlin);
        self.backend.registry().record_query_latency(start.elapsed().as_nanos() as u64);
        out
    }

    /// [`Self::profile_with_deadline`] carrying the serving layer's
    /// request id (see [`Self::run_for_request`]).
    pub fn profile_for_request(
        &self,
        gremlin: &str,
        deadline: Option<std::time::Instant>,
        request_id: Option<&str>,
    ) -> GraphResult<(Vec<GValue>, ProfileReport)> {
        self.backend.registry().record_traversal();
        self.run_observed(gremlin, deadline, request_id)
    }

    /// The observing pipeline behind [`Self::profile`], `.profile()`,
    /// tracing, and the slow-query log: a per-query `Profiler` (carrying a
    /// `Tracer` when a sink exists) observes strategies, steps, table
    /// decisions and SQL; afterwards the span batch lands in the sink and
    /// the query is offered to the slow-query log with its full report.
    fn run_observed(
        &self,
        gremlin: &str,
        deadline: Option<std::time::Instant>,
        request_id: Option<&str>,
    ) -> GraphResult<(Vec<GValue>, ProfileReport)> {
        let tracer = if self.sink.is_some() { Tracer::enabled() } else { Tracer::disabled() };
        let profiler = Profiler::enabled().with_tracer(tracer.clone());
        let root = tracer.start_with("query", SpanKind::Query, || {
            let mut attrs = vec![("gremlin".to_string(), gremlin.to_string())];
            if let Some(id) = request_id {
                attrs.push(("request_id".to_string(), id.to_string()));
            }
            attrs
        });
        let backend = self
            .backend
            .with_snapshot(Some(self.db.snapshot()))
            .with_deadline(deadline)
            .with_profiler(profiler.clone());
        let runner = ScriptRunner::new(&backend)
            .with_strategies(self.registry.clone())
            .with_options(self.options.exec.clone())
            .with_observer(Arc::new(profiler.clone()));
        let start = std::time::Instant::now();
        let result = runner.run(gremlin).map_err(from_gremlin);
        let wall_nanos = start.elapsed().as_nanos() as u64;
        tracer.end(root);
        let registry = self.backend.registry();
        registry.record_query_latency(wall_nanos);
        let report = profiler.report();
        for step in &report.steps {
            registry.record_step_latency(step_kind(&step.description), step.nanos);
        }
        if let Some(log) = &self.slow_log {
            if log.offer_with_id(gremlin, wall_nanos, &report, request_id) {
                registry.record_slow_query();
            }
        }
        if let Some(sink) = &self.sink {
            // finish() also closes spans left open by an error mid-step.
            sink.push_batch(tracer.finish());
        }
        Ok((result?, report))
    }

    /// The trace sink, when tracing is enabled.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.sink.as_ref()
    }

    /// Write the retained spans as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`). Errors when tracing is off.
    pub fn export_trace(&self, path: &str) -> GraphResult<()> {
        let sink = self.sink.as_ref().ok_or_else(|| {
            GraphError::Config(
                "tracing is not enabled (set DB2GRAPH_TRACE or GraphOptions.trace)".into(),
            )
        })?;
        sink.export_chrome(path)
            .map_err(|e| GraphError::Config(format!("trace export to '{path}': {e}")))
    }

    /// Write the retained spans as JSONL (one span object per line).
    pub fn export_trace_jsonl(&self, path: &str) -> GraphResult<()> {
        let sink = self.sink.as_ref().ok_or_else(|| {
            GraphError::Config(
                "tracing is not enabled (set DB2GRAPH_TRACE or GraphOptions.trace)".into(),
            )
        })?;
        sink.export_jsonl(path)
            .map_err(|e| GraphError::Config(format!("trace export to '{path}': {e}")))
    }

    /// Retained slow queries, slowest first (empty when no threshold is
    /// configured).
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.slow_log.as_ref().map(|l| l.entries()).unwrap_or_default()
    }

    /// The slow-query log as JSON, slowest first (`[]` when no threshold
    /// is configured) — the payload behind the server's `/slow-queries`.
    pub fn slow_queries_json(&self) -> crate::json::Json {
        self.slow_log
            .as_ref()
            .map(|l| l.to_json())
            .unwrap_or_else(|| crate::json::Json::Arr(Vec::new()))
    }

    /// The advisor's workload view: cost-sorted pattern stats plus index
    /// suggestions ranked by observed wall time.
    pub fn workload_report(&self) -> WorkloadReport {
        self.backend.dialect().workload_report()
    }

    /// Latency histogram breakdown (aggregate query/SQL plus per-template
    /// and per-step-kind) as JSON.
    pub fn histogram_report(&self) -> crate::json::Json {
        self.backend.registry().histogram_report()
    }

    /// The optimized step plan for a single-statement script.
    pub fn plan(&self, gremlin: &str) -> GraphResult<gremlin::Traversal> {
        let runner = ScriptRunner::new(self.backend.as_ref())
            .with_strategies(self.registry.clone())
            .with_options(self.options.exec.clone());
        runner.plan(gremlin).map_err(GraphError::Gremlin)
    }

    /// Plan description string (EXPLAIN for graph queries): the optimized
    /// plan plus, per GSA step and per overlay table, the SQL that would
    /// be generated or the reason the table is eliminated. Nothing is
    /// executed and no data is touched.
    pub fn explain(&self, gremlin: &str) -> GraphResult<String> {
        Ok(self.explain_report(gremlin)?.to_string())
    }

    /// Structured form of [`Self::explain`].
    pub fn explain_report(&self, gremlin: &str) -> GraphResult<ExplainReport> {
        let traversal = self.plan(gremlin)?;
        let mut steps = Vec::new();
        for (i, step) in traversal.steps.iter().enumerate() {
            let tables = self.backend.explain_compiled_step(step);
            if !tables.is_empty() {
                steps.push(StepExplain { index: i, description: step.describe(), tables });
            }
        }
        Ok(ExplainReport { plan: traversal.describe(), steps })
    }

    /// Run a Gremlin script and shape the results into rows for the given
    /// declared columns — the conversion behind the `graphQuery` table
    /// function (Section 4). Shaping rules:
    ///
    /// * map results (`valueMap`, `select('a','b')`) become rows by column
    ///   name;
    /// * element results become rows from their properties (plus `id` and
    ///   `label` pseudo-columns);
    /// * scalar results are chunked into rows of the declared width, in
    ///   stream order (so `values('a','b')` with two declared columns
    ///   yields one row per element);
    /// * a single list result (from `cap`/`fold`) is unwrapped first.
    pub fn query_rows(&self, gremlin: &str, columns: &[(String, DataType)]) -> GraphResult<RowSet> {
        let mut results = self.run(gremlin)?;
        if results.len() == 1 {
            if let GValue::List(items) = &results[0] {
                results = items.clone();
            }
        }
        let names: Vec<String> = columns.iter().map(|(n, _)| n.clone()).collect();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let all_maps = !results.is_empty()
            && results.iter().all(|v| matches!(v, GValue::Map(_)));
        let all_elements = !results.is_empty()
            && results
                .iter()
                .all(|v| matches!(v, GValue::Vertex(_) | GValue::Edge(_)));
        if all_maps {
            for v in &results {
                let GValue::Map(m) = v else { unreachable!() };
                let row: Vec<Value> = names
                    .iter()
                    .map(|n| {
                        m.iter()
                            .find(|(k, _)| k.eq_ignore_ascii_case(n))
                            .and_then(|(_, v)| to_value(v))
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                rows.push(row);
            }
        } else if all_elements {
            for v in &results {
                let e = v.as_element().expect("checked");
                let row: Vec<Value> = names
                    .iter()
                    .map(|n| {
                        gremlin::backend::element_property(&e, n)
                            .and_then(|v| to_value(&v))
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                rows.push(row);
            }
        } else {
            // Scalars chunked into rows of the declared width.
            let width = columns.len().max(1);
            if !results.is_empty() && results.len() % width != 0 {
                return Err(GraphError::Config(format!(
                    "graphQuery returned {} values, not divisible into rows of {} declared columns",
                    results.len(),
                    width
                )));
            }
            for chunk in results.chunks(width) {
                let row: Vec<Value> = chunk
                    .iter()
                    .map(|v| to_value(v).unwrap_or(Value::Null))
                    .collect();
                rows.push(row);
            }
        }
        Ok(RowSet::with_rows(names, rows))
    }

    /// Register this graph's `graphQuery` table function in its database
    /// under the given name (conventionally `graphQuery`), enabling the
    /// Section 4 synergy pattern:
    ///
    /// ```sql
    /// SELECT ... FROM T, TABLE(graphQuery('gremlin', '<script>'))
    ///   AS P (col1 BIGINT, col2 BIGINT) WHERE ...
    /// ```
    /// The registration holds only a weak reference: the graph owns the
    /// database, so a strong one would be a reference cycle — the graph
    /// would never drop (leaking it and suppressing the drop-time trace
    /// export). Callers keep their own `Arc` for as long as SQL should be
    /// able to call back into the graph.
    pub fn register_graph_query(self: &Arc<Self>, name: &str) {
        let graph = Arc::downgrade(self);
        self.db.register_function(name, Arc::new(GraphQueryFunction { graph }));
    }

    /// Convert a list of elements into their ids (convenience for callers).
    pub fn element_ids(values: &[GValue]) -> Vec<GValue> {
        values
            .iter()
            .map(|v| match v {
                GValue::Vertex(vx) => gremlin::structure::id_value(&vx.id),
                GValue::Edge(e) => gremlin::structure::id_value(&e.id),
                other => other.clone(),
            })
            .collect()
    }
}

impl Drop for Db2Graph {
    /// `DB2GRAPH_TRACE=<path>` (or `GraphOptions.trace_path`) means "write
    /// the trace when the graph goes away" — the zero-code-change way to
    /// get a Perfetto-loadable file out of any existing program. Export
    /// failure at drop time is reported to stderr, never panicked.
    fn drop(&mut self) {
        let (Some(sink), Some(path)) = (&self.sink, &self.trace_path) else { return };
        if let Err(e) = sink.export_chrome(path) {
            eprintln!("db2graph: trace export to '{path}' failed: {e}");
        }
    }
}

/// The `graphQuery` polymorphic table function.
struct GraphQueryFunction {
    graph: std::sync::Weak<Db2Graph>,
}

impl TableFunction for GraphQueryFunction {
    fn eval(&self, args: &[Value], columns: &[(String, DataType)]) -> DbResult<RowSet> {
        // Accept graphQuery('gremlin', '<script>') and graphQuery('<script>').
        let script = match args {
            [lang, script] => {
                let l = lang.as_str()?;
                if !l.eq_ignore_ascii_case("gremlin") {
                    return Err(DbError::Unsupported(format!(
                        "graphQuery language '{l}' (only 'gremlin' is supported)"
                    )));
                }
                script.as_str()?
            }
            [script] => script.as_str()?,
            _ => {
                return Err(DbError::Execution(
                    "graphQuery expects (language, script) or (script)".into(),
                ))
            }
        };
        let graph = self.graph.upgrade().ok_or_else(|| {
            DbError::Execution("graphQuery: the registered graph has been dropped".into())
        })?;
        graph
            .query_rows(script, columns)
            .map_err(|e| DbError::Execution(e.to_string()))
    }
}

/// Helper used in docs and tests: true when a Gremlin result set consists
/// of elements only.
pub fn all_elements(values: &[GValue]) -> bool {
    values.iter().all(|v| v.as_element().map(|_: Element| true).unwrap_or(false))
}
