//! Errors for the graph overlay layer.

use std::fmt;

use gremlin::GremlinError;
use reldb::DbError;

/// Errors raised by Db2 Graph: configuration problems, SQL-layer failures,
/// or Gremlin-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The overlay configuration is invalid (bad id definition, missing
    /// table/column, inconsistent src/dst definitions, ...).
    Config(String),
    /// An error from the relational engine.
    Db(DbError),
    /// An error from the Gremlin layer.
    Gremlin(GremlinError),
    /// The query's deadline expired; execution was aborted between
    /// statements (see [`Db2Graph::run_with_deadline`]).
    Timeout,
}

/// Marker message used to round-trip [`GraphError::Timeout`] through the
/// `GraphBackend` trait, which erases backend errors into
/// `GremlinError::Backend(String)`. [`from_gremlin`] maps it back. The
/// `__db2graph_timeout__` prefix keeps an ordinary Db/backend error whose
/// rendered message happens to say "query deadline exceeded" from being
/// misclassified as a timeout; the marker never reaches clients —
/// [`GraphError::Timeout`] renders the human-readable message instead.
pub(crate) const TIMEOUT_MARKER: &str = "__db2graph_timeout__";

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Config(m) => write!(f, "overlay config error: {m}"),
            GraphError::Db(e) => write!(f, "{e}"),
            GraphError::Gremlin(e) => write!(f, "{e}"),
            GraphError::Timeout => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<DbError> for GraphError {
    fn from(e: DbError) -> Self {
        GraphError::Db(e)
    }
}

impl From<GremlinError> for GraphError {
    fn from(e: GremlinError) -> Self {
        GraphError::Gremlin(e)
    }
}

/// Result alias for the crate.
pub type GraphResult<T> = Result<T, GraphError>;

/// Convert a graph error into a Gremlin backend error (used inside the
/// `GraphBackend` implementation, whose trait returns `GResult`).
pub fn to_gremlin(e: GraphError) -> GremlinError {
    match e {
        GraphError::Gremlin(g) => g,
        GraphError::Timeout => GremlinError::Backend(TIMEOUT_MARKER.into()),
        other => GremlinError::Backend(other.to_string()),
    }
}

/// Recover a [`GraphError`] from the Gremlin layer, un-erasing the timeout
/// marker that [`to_gremlin`] collapsed into a backend-error string.
pub(crate) fn from_gremlin(e: GremlinError) -> GraphError {
    match e {
        GremlinError::Backend(ref m) if m == TIMEOUT_MARKER => GraphError::Timeout,
        other => GraphError::Gremlin(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: GraphError = DbError::Catalog("x".into()).into();
        assert!(matches!(e, GraphError::Db(_)));
        let e: GraphError = GremlinError::Parse("y".into()).into();
        assert!(matches!(e, GraphError::Gremlin(_)));
        let g = to_gremlin(GraphError::Config("bad".into()));
        assert!(matches!(g, GremlinError::Backend(_)));
        let g = to_gremlin(GraphError::Gremlin(GremlinError::Parse("p".into())));
        assert!(matches!(g, GremlinError::Parse(_)));
    }

    #[test]
    fn timeout_round_trips_through_the_backend_trait() {
        let g = to_gremlin(GraphError::Timeout);
        assert_eq!(from_gremlin(g), GraphError::Timeout);
        // Non-marker backend errors stay Gremlin errors — even one whose
        // rendered message coincides with the human-readable timeout text.
        let e = from_gremlin(GremlinError::Backend("disk on fire".into()));
        assert!(matches!(e, GraphError::Gremlin(GremlinError::Backend(_))));
        let e = from_gremlin(GremlinError::Backend("query deadline exceeded".into()));
        assert!(matches!(e, GraphError::Gremlin(GremlinError::Backend(_))));
    }
}
