//! Errors for the graph overlay layer.

use std::fmt;

use gremlin::GremlinError;
use reldb::DbError;

/// Errors raised by Db2 Graph: configuration problems, SQL-layer failures,
/// or Gremlin-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The overlay configuration is invalid (bad id definition, missing
    /// table/column, inconsistent src/dst definitions, ...).
    Config(String),
    /// An error from the relational engine.
    Db(DbError),
    /// An error from the Gremlin layer.
    Gremlin(GremlinError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Config(m) => write!(f, "overlay config error: {m}"),
            GraphError::Db(e) => write!(f, "{e}"),
            GraphError::Gremlin(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<DbError> for GraphError {
    fn from(e: DbError) -> Self {
        GraphError::Db(e)
    }
}

impl From<GremlinError> for GraphError {
    fn from(e: GremlinError) -> Self {
        GraphError::Gremlin(e)
    }
}

/// Result alias for the crate.
pub type GraphResult<T> = Result<T, GraphError>;

/// Convert a graph error into a Gremlin backend error (used inside the
/// `GraphBackend` implementation, whose trait returns `GResult`).
pub fn to_gremlin(e: GraphError) -> GremlinError {
    match e {
        GraphError::Gremlin(g) => g,
        other => GremlinError::Backend(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: GraphError = DbError::Catalog("x".into()).into();
        assert!(matches!(e, GraphError::Db(_)));
        let e: GraphError = GremlinError::Parse("y".into()).into();
        assert!(matches!(e, GraphError::Gremlin(_)));
        let g = to_gremlin(GraphError::Config("bad".into()));
        assert!(matches!(g, GremlinError::Backend(_)));
        let g = to_gremlin(GraphError::Gremlin(GremlinError::Parse("p".into())));
        assert!(matches!(g, GremlinError::Parse(_)));
    }
}
