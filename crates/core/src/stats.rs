//! Overlay-level execution counters.
//!
//! These make the paper's runtime optimizations *observable*: tests assert
//! that label filters prune tables, that prefixed ids pin a single table,
//! and that the vertex-table-is-edge-table shortcut avoids SQL entirely.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing overlay backend activity.
#[derive(Debug, Default)]
pub struct OverlayStats {
    /// SQL queries issued to the relational engine.
    sql_queries: AtomicU64,
    /// Prepared-template cache hits in the SQL Dialect module.
    template_hits: AtomicU64,
    /// Tables considered by graph-level operations before pruning.
    tables_considered: AtomicU64,
    /// Tables eliminated by data-dependent optimizations (labels, prefixed
    /// ids, property names, src/dst table links).
    tables_pruned: AtomicU64,
    /// Vertices constructed directly from edge rows without any SQL
    /// (the "vertex table is also an edge table" optimization).
    vertices_from_edges: AtomicU64,
}

/// A point-in-time copy of [`OverlayStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlayStatsSnapshot {
    pub sql_queries: u64,
    pub template_hits: u64,
    pub tables_considered: u64,
    pub tables_pruned: u64,
    pub vertices_from_edges: u64,
}

impl OverlayStats {
    pub fn record_sql(&self) {
        self.sql_queries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_template_hit(&self) {
        self.template_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_considered(&self, n: u64) {
        self.tables_considered.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_pruned(&self, n: u64) {
        self.tables_pruned.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_vertex_from_edge(&self, n: u64) {
        self.vertices_from_edges.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> OverlayStatsSnapshot {
        OverlayStatsSnapshot {
            sql_queries: self.sql_queries.load(Ordering::Relaxed),
            template_hits: self.template_hits.load(Ordering::Relaxed),
            tables_considered: self.tables_considered.load(Ordering::Relaxed),
            tables_pruned: self.tables_pruned.load(Ordering::Relaxed),
            vertices_from_edges: self.vertices_from_edges.load(Ordering::Relaxed),
        }
    }
}

impl OverlayStatsSnapshot {
    pub fn since(&self, earlier: &OverlayStatsSnapshot) -> OverlayStatsSnapshot {
        OverlayStatsSnapshot {
            sql_queries: self.sql_queries - earlier.sql_queries,
            template_hits: self.template_hits - earlier.template_hits,
            tables_considered: self.tables_considered - earlier.tables_considered,
            tables_pruned: self.tables_pruned - earlier.tables_pruned,
            vertices_from_edges: self.vertices_from_edges - earlier.vertices_from_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diffing() {
        let s = OverlayStats::default();
        s.record_sql();
        s.record_considered(4);
        s.record_pruned(3);
        let a = s.snapshot();
        s.record_sql();
        s.record_template_hit();
        s.record_vertex_from_edge(2);
        let d = s.snapshot().since(&a);
        assert_eq!(d.sql_queries, 1);
        assert_eq!(d.template_hits, 1);
        assert_eq!(d.vertices_from_edges, 2);
        assert_eq!(d.tables_pruned, 0);
    }
}
