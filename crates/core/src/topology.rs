//! The Topology module: the resolved overlay mapping.
//!
//! "The Topology module reads the overlay configuration file and establishes
//! the overlay mapping from the property graph onto the relational tables in
//! the database by accessing the database metadata. ... the overlay topology
//! can tell us which table(s) contains vertices/edges with a particular
//! label or a particular property name, and whether the source/destination
//! vertices of all the edges in an edge table are from a specific vertex
//! table." (Section 6.1)

use std::collections::HashMap;
use std::sync::Arc;

use reldb::{Database, DataType};

use crate::config::{parse_label_constant, ETableConfig, OverlayConfig, VTableConfig};
use crate::error::{GraphError, GraphResult};
use crate::ids::{EdgeIdDef, IdDef, IdPart};

/// How a table defines the `label` required field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelDef {
    /// All rows share this constant label (`fix_label: true`).
    Fixed(String),
    /// The label comes from this column.
    Column(String),
}

/// A resolved vertex table mapping.
#[derive(Debug, Clone)]
pub struct VertexTable {
    pub name: String,
    pub is_view: bool,
    pub id: IdDef,
    pub prefixed_id: bool,
    pub label: LabelDef,
    /// Property names (== column names) exposed on vertices of this table.
    pub properties: Vec<String>,
    /// All columns with their types (`None` for view columns, whose types
    /// are not tracked by the catalog).
    pub columns: Vec<(String, Option<DataType>)>,
}

/// A resolved edge table mapping.
#[derive(Debug, Clone)]
pub struct EdgeTable {
    pub name: String,
    pub is_view: bool,
    /// Index into `Topology::vertex_tables` when `src_v_table` was
    /// configured.
    pub src_v_table: Option<usize>,
    pub src_v: IdDef,
    pub dst_v_table: Option<usize>,
    pub dst_v: IdDef,
    pub id: EdgeIdDef,
    pub label: LabelDef,
    pub properties: Vec<String>,
    pub columns: Vec<(String, Option<DataType>)>,
}

impl VertexTable {
    pub fn column_type(&self, name: &str) -> Option<DataType> {
        self.columns
            .iter()
            .find(|(c, _)| c.eq_ignore_ascii_case(name))
            .and_then(|(_, t)| *t)
    }

    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|(c, _)| c.eq_ignore_ascii_case(name))
    }

    pub fn has_property(&self, name: &str) -> bool {
        self.properties.iter().any(|p| p.eq_ignore_ascii_case(name))
    }

    pub fn fixed_label(&self) -> Option<&str> {
        match &self.label {
            LabelDef::Fixed(l) => Some(l),
            LabelDef::Column(_) => None,
        }
    }
}

impl EdgeTable {
    pub fn column_type(&self, name: &str) -> Option<DataType> {
        self.columns
            .iter()
            .find(|(c, _)| c.eq_ignore_ascii_case(name))
            .and_then(|(_, t)| *t)
    }

    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|(c, _)| c.eq_ignore_ascii_case(name))
    }

    pub fn has_property(&self, name: &str) -> bool {
        self.properties.iter().any(|p| p.eq_ignore_ascii_case(name))
    }

    pub fn fixed_label(&self) -> Option<&str> {
        match &self.label {
            LabelDef::Fixed(l) => Some(l),
            LabelDef::Column(_) => None,
        }
    }
}

/// The resolved overlay topology.
#[derive(Debug, Clone)]
pub struct Topology {
    pub vertex_tables: Vec<VertexTable>,
    pub edge_tables: Vec<EdgeTable>,
}

impl Topology {
    /// Resolve a configuration against the database catalog, validating
    /// every referenced table/view and column.
    pub fn resolve(db: &Arc<Database>, config: &OverlayConfig) -> GraphResult<Topology> {
        config.validate_shape()?;
        let mut vertex_tables = Vec::with_capacity(config.v_tables.len());
        for v in &config.v_tables {
            vertex_tables.push(resolve_vertex(db, v)?);
        }
        // Map configured vertex table names to their indexes.
        let name_to_idx: HashMap<String, usize> = vertex_tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.to_ascii_lowercase(), i))
            .collect();
        let mut edge_tables = Vec::with_capacity(config.e_tables.len());
        for e in &config.e_tables {
            edge_tables.push(resolve_edge(db, e, &name_to_idx, &vertex_tables)?);
        }
        Ok(Topology { vertex_tables, edge_tables })
    }

    /// Vertex tables that might contain vertices with one of the given
    /// labels: fixed-label tables matching, plus every column-label table
    /// ("the implementation still has to search all the tables without
    /// fixed labels", Section 6.3).
    pub fn vertex_tables_for_labels(&self, labels: &[String]) -> Vec<usize> {
        self.vertex_tables
            .iter()
            .enumerate()
            .filter(|(_, t)| match t.fixed_label() {
                Some(l) => labels.iter().any(|x| x == l),
                None => true,
            })
            .map(|(i, _)| i)
            .collect()
    }

    pub fn edge_tables_for_labels(&self, labels: &[String]) -> Vec<usize> {
        self.edge_tables
            .iter()
            .enumerate()
            .filter(|(_, t)| match t.fixed_label() {
                Some(l) => labels.iter().any(|x| x == l),
                None => true,
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of a vertex table by name.
    pub fn vertex_table_index(&self, name: &str) -> Option<usize> {
        self.vertex_tables.iter().position(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Index of an edge table by name.
    pub fn edge_table_index(&self, name: &str) -> Option<usize> {
        self.edge_tables.iter().position(|t| t.name.eq_ignore_ascii_case(name))
    }
}

/// Column list with optional catalog types (None for view columns).
type ColumnList = Vec<(String, Option<DataType>)>;

/// Fetch a table's or view's columns from the catalog.
fn table_columns(db: &Arc<Database>, name: &str) -> GraphResult<(bool, ColumnList)> {
    if let Some(t) = db.get_table(name) {
        let cols = t
            .schema
            .columns
            .iter()
            .map(|c| (c.name.clone(), Some(c.data_type)))
            .collect();
        return Ok((false, cols));
    }
    if db.get_view(name).is_some() {
        let cols = db
            .view_columns(name)
            .map_err(GraphError::Db)?
            .into_iter()
            .map(|c| (c, None))
            .collect();
        return Ok((true, cols));
    }
    Err(GraphError::Config(format!("overlay references unknown table or view '{name}'")))
}

fn require_columns(
    table: &str,
    columns: &[(String, Option<DataType>)],
    needed: &[&str],
    what: &str,
) -> GraphResult<()> {
    for n in needed {
        if !columns.iter().any(|(c, _)| c.eq_ignore_ascii_case(n)) {
            return Err(GraphError::Config(format!(
                "{what} of table '{table}' references missing column '{n}'"
            )));
        }
    }
    Ok(())
}

fn resolve_label(spec: &str, fix: bool, table: &str, columns: &[(String, Option<DataType>)]) -> GraphResult<LabelDef> {
    match parse_label_constant(spec) {
        Some(constant) => Ok(LabelDef::Fixed(constant)),
        None if fix => Err(GraphError::Config(format!(
            "table '{table}': fix_label set but label '{spec}' is not a constant"
        ))),
        None => {
            require_columns(table, columns, &[spec], "label")?;
            Ok(LabelDef::Column(spec.to_string()))
        }
    }
}

/// Property defaulting: all columns except those used by required fields.
fn default_properties(
    columns: &[(String, Option<DataType>)],
    used: &[&str],
) -> Vec<String> {
    columns
        .iter()
        .map(|(c, _)| c.clone())
        .filter(|c| !used.iter().any(|u| u.eq_ignore_ascii_case(c)))
        .collect()
}

fn resolve_vertex(db: &Arc<Database>, v: &VTableConfig) -> GraphResult<VertexTable> {
    let (is_view, columns) = table_columns(db, &v.table_name)?;
    let id = IdDef::parse(&v.id)?;
    if v.prefixed_id && id.prefix().is_none() {
        return Err(GraphError::Config(format!(
            "vertex table '{}': prefixed_id set but id '{}' has no constant prefix",
            v.table_name, v.id
        )));
    }
    require_columns(&v.table_name, &columns, &id.columns(), "id")?;
    let label = resolve_label(&v.label, v.fix_label, &v.table_name, &columns)?;
    let properties = match &v.properties {
        Some(p) => {
            let names: Vec<&str> = p.iter().map(String::as_str).collect();
            require_columns(&v.table_name, &columns, &names, "properties")?;
            p.clone()
        }
        None => {
            let mut used: Vec<&str> = id.columns();
            if let LabelDef::Column(c) = &label {
                used.push(c);
            }
            default_properties(&columns, &used)
        }
    };
    Ok(VertexTable {
        name: v.table_name.clone(),
        is_view,
        id,
        prefixed_id: v.prefixed_id,
        label,
        properties,
        columns,
    })
}

/// Check that an edge endpoint definition structurally matches the id
/// definition of its declared vertex table: equal constants, equal column
/// counts ("the source/destination vertex id definition has to match
/// exactly with the id definition of the corresponding vertex table",
/// Section 5 — column *names* may differ).
fn endpoint_matches(endpoint: &IdDef, vertex_id: &IdDef) -> bool {
    if endpoint.parts.len() != vertex_id.parts.len() {
        return false;
    }
    endpoint.parts.iter().zip(&vertex_id.parts).all(|(a, b)| match (a, b) {
        (IdPart::Const(x), IdPart::Const(y)) => x == y,
        (IdPart::Column(_), IdPart::Column(_)) => true,
        _ => false,
    })
}

fn resolve_edge(
    db: &Arc<Database>,
    e: &ETableConfig,
    name_to_idx: &HashMap<String, usize>,
    vertex_tables: &[VertexTable],
) -> GraphResult<EdgeTable> {
    let (is_view, columns) = table_columns(db, &e.table_name)?;
    let src_v = IdDef::parse(&e.src_v)?;
    let dst_v = IdDef::parse(&e.dst_v)?;
    require_columns(&e.table_name, &columns, &src_v.columns(), "src_v")?;
    require_columns(&e.table_name, &columns, &dst_v.columns(), "dst_v")?;

    let lookup_vt = |name: &Option<String>, endpoint: &IdDef, which: &str| -> GraphResult<Option<usize>> {
        match name {
            None => Ok(None),
            Some(n) => {
                let idx = name_to_idx.get(&n.to_ascii_lowercase()).copied().ok_or_else(|| {
                    GraphError::Config(format!(
                        "edge table '{}': {which}_table '{n}' is not a configured vertex table",
                        e.table_name
                    ))
                })?;
                if !endpoint_matches(endpoint, &vertex_tables[idx].id) {
                    return Err(GraphError::Config(format!(
                        "edge table '{}': {which} definition does not match the id definition of vertex table '{n}'",
                        e.table_name
                    )));
                }
                Ok(Some(idx))
            }
        }
    };
    let src_idx = lookup_vt(&e.src_v_table, &src_v, "src_v")?;
    let dst_idx = lookup_vt(&e.dst_v_table, &dst_v, "dst_v")?;

    let id = if e.implicit_edge_id {
        EdgeIdDef::Implicit
    } else {
        let spec = e.id.as_ref().expect("validated by validate_shape");
        let def = IdDef::parse(spec)?;
        if e.prefixed_edge_id && def.prefix().is_none() {
            return Err(GraphError::Config(format!(
                "edge table '{}': prefixed_edge_id set but id '{spec}' has no constant prefix",
                e.table_name
            )));
        }
        require_columns(&e.table_name, &columns, &def.columns(), "id")?;
        EdgeIdDef::Explicit(def)
    };

    let label = resolve_label(&e.label, e.fix_label, &e.table_name, &columns)?;
    let properties = match &e.properties {
        Some(p) => {
            let names: Vec<&str> = p.iter().map(String::as_str).collect();
            require_columns(&e.table_name, &columns, &names, "properties")?;
            p.clone()
        }
        None => {
            let mut used: Vec<&str> = Vec::new();
            used.extend(src_v.columns());
            used.extend(dst_v.columns());
            if let EdgeIdDef::Explicit(def) = &id {
                used.extend(def.columns());
            }
            if let LabelDef::Column(c) = &label {
                used.push(c);
            }
            default_properties(&columns, &used)
        }
    };

    Ok(EdgeTable {
        name: e.table_name.clone(),
        is_view,
        src_v_table: src_idx,
        src_v,
        dst_v_table: dst_idx,
        dst_v,
        id,
        label,
        properties,
        columns,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::config::healthcare_example_json;

    /// Build the Figure 2 healthcare database (tables + sample rows).
    pub fn healthcare_db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.execute_script(
            "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
             CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
             CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR,
                FOREIGN KEY (sourceID) REFERENCES Disease(diseaseID),
                FOREIGN KEY (targetID) REFERENCES Disease(diseaseID));
             CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
                FOREIGN KEY (patientID) REFERENCES Patient(patientID),
                FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
             CREATE TABLE DeviceData (subscriptionID BIGINT, day BIGINT, steps BIGINT, exerciseMinutes BIGINT);",
        )
        .unwrap();
        db
    }

    #[test]
    fn resolve_paper_example() {
        let db = healthcare_db();
        let cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        let topo = Topology::resolve(&db, &cfg).unwrap();
        assert_eq!(topo.vertex_tables.len(), 2);
        assert_eq!(topo.edge_tables.len(), 2);

        let patient = &topo.vertex_tables[0];
        assert_eq!(patient.fixed_label(), Some("patient"));
        assert!(patient.prefixed_id);
        assert_eq!(patient.id.prefix(), Some("patient"));

        let hd = &topo.edge_tables[1];
        assert_eq!(hd.src_v_table, Some(0));
        assert_eq!(hd.dst_v_table, Some(1));
        assert_eq!(hd.id, EdgeIdDef::Implicit);
        // Properties defaulted to the remaining column.
        assert_eq!(hd.properties, vec!["description".to_string()]);

        let onto = &topo.edge_tables[0];
        assert_eq!(onto.fixed_label(), None);
        assert!(matches!(onto.label, LabelDef::Column(ref c) if c == "type"));
    }

    #[test]
    fn label_based_table_selection() {
        let db = healthcare_db();
        let cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        let topo = Topology::resolve(&db, &cfg).unwrap();
        assert_eq!(topo.vertex_tables_for_labels(&["patient".into()]), vec![0]);
        assert_eq!(topo.vertex_tables_for_labels(&["disease".into()]), vec![1]);
        assert!(topo.vertex_tables_for_labels(&["nope".into()]).is_empty());
        // Edge label 'isa' comes from a column-label table, which must
        // always be searched.
        assert_eq!(topo.edge_tables_for_labels(&["isa".into()]), vec![0]);
        assert_eq!(topo.edge_tables_for_labels(&["hasDisease".into()]), vec![0, 1]);
    }

    #[test]
    fn validation_failures() {
        let db = healthcare_db();
        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.v_tables[0].table_name = "NoSuch".into();
        assert!(Topology::resolve(&db, &cfg).is_err());

        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.v_tables[0].id = "'patient'::missingCol".into();
        assert!(Topology::resolve(&db, &cfg).is_err());

        // src_v not matching the vertex table id definition.
        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.e_tables[1].src_v = "patientID".into(); // missing 'patient' prefix
        let err = Topology::resolve(&db, &cfg).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");

        // src_v_table not among configured vertex tables.
        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.e_tables[1].src_v_table = Some("DeviceData".into());
        assert!(Topology::resolve(&db, &cfg).is_err());

        // prefixed_id without a prefix.
        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.v_tables[1].prefixed_id = true;
        assert!(Topology::resolve(&db, &cfg).is_err());
    }

    #[test]
    fn views_can_be_overlaid() {
        let db = healthcare_db();
        db.execute(
            "CREATE VIEW PatientLite AS SELECT patientID, name FROM Patient",
        )
        .unwrap();
        let cfg = OverlayConfig {
            v_tables: vec![VTableConfig {
                table_name: "PatientLite".into(),
                prefixed_id: true,
                id: "'p'::patientID".into(),
                fix_label: true,
                label: "'patient'".into(),
                properties: None,
            }],
            e_tables: vec![],
        };
        let topo = Topology::resolve(&db, &cfg).unwrap();
        assert!(topo.vertex_tables[0].is_view);
        assert_eq!(topo.vertex_tables[0].properties, vec!["name".to_string()]);
        // View columns have no catalog type.
        assert_eq!(topo.vertex_tables[0].column_type("name"), None);
    }
}
