//! The SQL Dialect module.
//!
//! "The SQL Dialect module deals with everything related to Db2. It
//! generates all the SQL queries needed for implementing graph operations.
//! This module also keeps track of these SQL queries and finds out frequent
//! query patterns ... It then creates a set of pre-compiled SQL templates
//! for these frequent patterns and issues the corresponding prepare
//! statements ... Based on these SQL templates, it also suggests indexes"
//! (Section 6.1).
//!
//! Here: every generated statement is parameterized (`?`), executed through
//! a prepared-statement cache keyed by template text, and its access
//! pattern (table + predicate columns) is counted. Patterns crossing the
//! frequency threshold produce index suggestions, which can be applied in
//! one call.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use reldb::{Database, DbResult, Prepared, RowSet, Snapshot, Value};

use crate::json::Json;
use crate::metrics::{MetricsRegistry, Profiler};
use crate::stats::OverlayStats;

/// Frontiers larger than this are split into multiple statements instead of
/// one gigantic `IN (...)`: the template for 2^k placeholders past this
/// point would be prepared once and reused almost never, and very wide
/// IN-lists defeat the relational engine's index probing anyway.
pub const MAX_FRONTIER_CHUNK: usize = 1024;

/// Default cap on distinct cached prepared templates (see
/// [`SqlDialect::with_caps`]).
pub const DEFAULT_TEMPLATE_CAP: usize = 512;

/// Default cap on tracked workload patterns.
pub const DEFAULT_PATTERN_CAP: usize = 1024;

/// An index the dialect suggests creating, ranked by the wall time the
/// driving pattern has cost so far (a proxy for the time an index would
/// save — ROADMAP follow-up from PR 1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexSuggestion {
    pub table: String,
    pub columns: Vec<String>,
    /// How many statements matched the driving pattern.
    pub count: u64,
    /// Cumulative observed statement wall time for the pattern, in nanos.
    pub observed_nanos: u64,
}

/// A workload access pattern: (table name, predicate column list).
pub type PatternKey = (String, Vec<String>);

/// One observed access pattern with its cumulative cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadPattern {
    pub table: String,
    pub columns: Vec<String>,
    pub count: u64,
    pub observed_nanos: u64,
}

/// Everything the advisor knows about the workload: every tracked pattern
/// (cost-sorted) plus the index suggestions ranked by estimated time saved.
#[derive(Debug, Clone, Default)]
pub struct WorkloadReport {
    pub patterns: Vec<WorkloadPattern>,
    pub suggestions: Vec<IndexSuggestion>,
}

impl WorkloadReport {
    pub fn to_json(&self) -> Json {
        let pattern_json = |table: &str, columns: &[String], count: u64, nanos: u64| {
            Json::obj(vec![
                ("table", Json::str(table)),
                ("columns", Json::arr(columns.iter().map(Json::str).collect())),
                ("count", Json::u64(count)),
                ("observed_nanos", Json::u64(nanos)),
            ])
        };
        Json::obj(vec![
            (
                "patterns",
                Json::arr(
                    self.patterns
                        .iter()
                        .map(|p| pattern_json(&p.table, &p.columns, p.count, p.observed_nanos))
                        .collect(),
                ),
            ),
            (
                "suggestions",
                Json::arr(
                    self.suggestions
                        .iter()
                        .map(|s| pattern_json(&s.table, &s.columns, s.count, s.observed_nanos))
                        .collect(),
                ),
            ),
        ])
    }
}

impl std::fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "workload: {} pattern(s) tracked", self.patterns.len())?;
        for p in &self.patterns {
            writeln!(
                f,
                "  {}({}) seen {}x, {}",
                p.table,
                p.columns.join(", "),
                p.count,
                crate::metrics::fmt_nanos(p.observed_nanos)
            )?;
        }
        writeln!(f, "suggestions ({}):", self.suggestions.len())?;
        for s in &self.suggestions {
            writeln!(
                f,
                "  CREATE INDEX ON {}({}) -- {}x, {}",
                s.table,
                s.columns.join(", "),
                s.count,
                crate::metrics::fmt_nanos(s.observed_nanos)
            )?;
        }
        Ok(())
    }
}

/// Pre-execution statement interception callback: receives the template
/// text of every statement the dialect is about to execute.
pub type StatementHook = Arc<dyn Fn(&str) + Send + Sync>;

/// A cached prepared template plus its admission sequence number (used for
/// FIFO eviction once the cache is full).
struct CachedTemplate {
    prepared: Arc<Prepared>,
    seq: u64,
}

/// A tracked workload pattern: occurrence counter, cumulative observed
/// statement wall time, and admission sequence.
struct TrackedPattern {
    count: Arc<AtomicU64>,
    nanos: Arc<AtomicU64>,
    seq: u64,
}

/// SQL generation + template cache + workload pattern tracking.
pub struct SqlDialect {
    db: Arc<Database>,
    /// Prepared templates keyed by SQL text. Read-mostly: once the
    /// workload's templates exist, queries only take the read lock.
    templates: RwLock<HashMap<String, CachedTemplate>>,
    /// (table, predicate column list) -> times seen. Counters are atomics
    /// so concurrent queries only contend on first sight of a pattern.
    patterns: RwLock<HashMap<PatternKey, TrackedPattern>>,
    /// Monotonic admission counter shared by both maps.
    admissions: AtomicU64,
    /// Patterns become suggestions after this many occurrences.
    frequency_threshold: u64,
    /// Caps on the two maps above; both are evicted-on-insert so an
    /// adversarial workload (distinct SQL text per query) cannot grow them
    /// without bound.
    template_cap: usize,
    pattern_cap: usize,
    /// Always-on aggregate counters (statement count, wall time, rows,
    /// template hit rate, evictions), shared with the owning graph.
    registry: Arc<MetricsRegistry>,
    /// Test-only interception point: invoked with each statement's template
    /// text right before execution. Lets concurrency tests interleave
    /// writer commits between the statements of one traversal
    /// deterministically.
    statement_hook: RwLock<Option<StatementHook>>,
}

impl SqlDialect {
    pub fn new(db: Arc<Database>) -> SqlDialect {
        SqlDialect::with_registry(db, Arc::new(MetricsRegistry::default()))
    }

    /// Build a dialect that reports into an externally owned registry.
    pub fn with_registry(db: Arc<Database>, registry: Arc<MetricsRegistry>) -> SqlDialect {
        SqlDialect {
            db,
            templates: RwLock::new(HashMap::new()),
            patterns: RwLock::new(HashMap::new()),
            admissions: AtomicU64::new(0),
            frequency_threshold: 16,
            template_cap: DEFAULT_TEMPLATE_CAP,
            pattern_cap: DEFAULT_PATTERN_CAP,
            registry,
            statement_hook: RwLock::new(None),
        }
    }

    /// Install (or clear) the pre-execution statement hook. Used by tests
    /// to trigger concurrent writes at precise points inside a traversal.
    pub fn set_statement_hook(&self, hook: Option<StatementHook>) {
        *self.statement_hook.write() = hook;
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub fn with_threshold(mut self, threshold: u64) -> SqlDialect {
        self.frequency_threshold = threshold;
        self
    }

    /// Override the template-cache and pattern-tracker size caps (both
    /// must be at least 1).
    pub fn with_caps(mut self, template_cap: usize, pattern_cap: usize) -> SqlDialect {
        self.template_cap = template_cap.max(1);
        self.pattern_cap = pattern_cap.max(1);
        self
    }

    /// Execute a parameterized SQL template through the prepared cache.
    /// `pattern` records the access shape for index advising; `profiler`
    /// (when enabled) receives the statement text, cache outcome, row
    /// count and wall time.
    pub fn query(
        &self,
        stats: &OverlayStats,
        profiler: &Profiler,
        template: &str,
        params: &[Value],
        pattern: Option<(&str, &[String])>,
    ) -> DbResult<RowSet> {
        self.query_at(stats, profiler, template, params, pattern, None)
    }

    /// Like [`SqlDialect::query`], but when `snapshot` is given every read
    /// in the statement is pinned to that committed epoch. This is how a
    /// multi-statement traversal keeps all of its generated SQL — across
    /// every parallel worker — on one consistent database state.
    #[allow(clippy::too_many_arguments)]
    pub fn query_at(
        &self,
        stats: &OverlayStats,
        profiler: &Profiler,
        template: &str,
        params: &[Value],
        pattern: Option<(&str, &[String])>,
        snapshot: Option<&Snapshot>,
    ) -> DbResult<RowSet> {
        let mut pattern_nanos: Option<Arc<AtomicU64>> = None;
        if let Some((table, cols)) = pattern {
            let key = (table.to_ascii_lowercase(), cols.to_vec());
            let tracked = {
                let read = self.patterns.read();
                read.get(&key).map(|p| (p.count.clone(), p.nanos.clone()))
            };
            let (counter, nanos) = match tracked {
                Some(t) => t,
                None => {
                    let mut write = self.patterns.write();
                    if !write.contains_key(&key) && write.len() >= self.pattern_cap {
                        // Evict the least-seen pattern (oldest on ties):
                        // a pattern that never recurred is the one least
                        // likely to drive an index suggestion.
                        if let Some(victim) = write
                            .iter()
                            .min_by_key(|(_, p)| (p.count.load(Ordering::Relaxed), p.seq))
                            .map(|(k, _)| k.clone())
                        {
                            write.remove(&victim);
                            self.registry.record_pattern_eviction();
                            profiler.record_pattern_eviction();
                        }
                    }
                    let seq = self.admissions.fetch_add(1, Ordering::Relaxed);
                    let entry = write.entry(key).or_insert_with(|| TrackedPattern {
                        count: Arc::new(AtomicU64::new(0)),
                        nanos: Arc::new(AtomicU64::new(0)),
                        seq,
                    });
                    (entry.count.clone(), entry.nanos.clone())
                }
            };
            counter.fetch_add(1, Ordering::Relaxed);
            pattern_nanos = Some(nanos);
        }
        let (prepared, cache_hit) = {
            let hit = self.templates.read().get(template).map(|t| t.prepared.clone());
            match hit {
                Some(p) => {
                    stats.record_template_hit();
                    (p, true)
                }
                None => {
                    let p = Arc::new(self.db.prepare(template)?);
                    let mut write = self.templates.write();
                    // Double-checked: a racing thread may have prepared the
                    // same template; keep the existing entry.
                    if !write.contains_key(template) {
                        if write.len() >= self.template_cap {
                            // FIFO eviction: drop the oldest admission.
                            if let Some(victim) = write
                                .iter()
                                .min_by_key(|(_, t)| t.seq)
                                .map(|(k, _)| k.clone())
                            {
                                write.remove(&victim);
                                self.registry.record_template_eviction();
                                profiler.record_template_eviction();
                            }
                        }
                        let seq = self.admissions.fetch_add(1, Ordering::Relaxed);
                        write.insert(
                            template.to_string(),
                            CachedTemplate { prepared: p.clone(), seq },
                        );
                    }
                    (p, false)
                }
            }
        };
        self.registry.record_template(cache_hit);
        // A cached template prepared before a DDL statement carries a stale
        // catalog generation: re-prepare and replace it so a
        // dropped-and-recreated table can never be read through its old
        // layout. (The engine would also re-prepare defensively, but the
        // cache must stop handing out the stale plan.)
        let prepared = if prepared.is_stale(self.db.schema_generation()) {
            let fresh = Arc::new(self.db.prepare(template)?);
            if let Some(entry) = self.templates.write().get_mut(template) {
                entry.prepared = fresh.clone();
            }
            self.registry.record_template_invalidation();
            profiler.record_template_invalidation();
            fresh
        } else {
            prepared
        };
        let hook = self.statement_hook.read().clone();
        if let Some(hook) = hook {
            hook(template);
        }
        stats.record_sql();
        let start = std::time::Instant::now();
        let result = match snapshot {
            Some(s) => self.db.execute_prepared_at(&prepared, params, s),
            None => self.db.execute_prepared(&prepared, params),
        };
        let nanos = start.elapsed().as_nanos() as u64;
        let rows = result.as_ref().map(|rs| rs.rows.len()).unwrap_or(0);
        self.registry.record_statement(rows as u64, nanos);
        self.registry.record_sql_latency(template, nanos);
        if let Some(acc) = pattern_nanos {
            acc.fetch_add(nanos, Ordering::Relaxed);
        }
        profiler.record_statement(template, cache_hit, rows, nanos);
        result
    }

    /// Number of distinct cached SQL templates.
    pub fn template_count(&self) -> usize {
        self.templates.read().len()
    }

    /// The cached template texts (for tests and diagnostics), unsorted.
    pub fn template_texts(&self) -> Vec<String> {
        self.templates.read().keys().cloned().collect()
    }

    /// Frequent query patterns observed so far (above threshold), with
    /// their counts.
    pub fn frequent_patterns(&self) -> Vec<(PatternKey, u64)> {
        self.patterns
            .read()
            .iter()
            .map(|(k, p)| (k.clone(), p.count.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n >= self.frequency_threshold)
            .collect()
    }

    /// Every tracked pattern with its count and cumulative observed wall
    /// time, costliest first (ties: most seen, then key order).
    pub fn pattern_stats(&self) -> Vec<(PatternKey, u64, u64)> {
        let mut out: Vec<(PatternKey, u64, u64)> = self
            .patterns
            .read()
            .iter()
            .map(|(k, p)| {
                (k.clone(), p.count.load(Ordering::Relaxed), p.nanos.load(Ordering::Relaxed))
            })
            .collect();
        out.sort_by(|a, b| {
            b.2.cmp(&a.2).then_with(|| b.1.cmp(&a.1)).then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// Indexes that would serve the frequent patterns and do not already
    /// exist, ranked by the cumulative observed wall time of the driving
    /// pattern (costliest first) — the statements an index would speed up
    /// the most come first.
    pub fn suggested_indexes(&self) -> Vec<IndexSuggestion> {
        let mut out = Vec::new();
        for ((table, cols), count, observed_nanos) in self.pattern_stats() {
            if count < self.frequency_threshold || cols.is_empty() {
                continue;
            }
            let Some(t) = self.db.get_table(&table) else { continue };
            let guard = t.read();
            if guard.find_index(&cols).is_none() {
                out.push(IndexSuggestion {
                    table: t.schema.name.clone(),
                    columns: cols,
                    count,
                    observed_nanos,
                });
            }
        }
        // pattern_stats is already cost-sorted and its keys are unique, so
        // the ranked order carries through without a dedup pass.
        out
    }

    /// The advisor's full view of the workload: cost-sorted pattern stats
    /// plus the ranked index suggestions.
    pub fn workload_report(&self) -> WorkloadReport {
        let patterns = self
            .pattern_stats()
            .into_iter()
            .map(|((table, columns), count, observed_nanos)| WorkloadPattern {
                table,
                columns,
                count,
                observed_nanos,
            })
            .collect();
        WorkloadReport { patterns, suggestions: self.suggested_indexes() }
    }

    /// Create every suggested index; returns how many were created.
    pub fn apply_suggested_indexes(&self) -> DbResult<usize> {
        let suggestions = self.suggested_indexes();
        let mut created = 0;
        for s in &suggestions {
            let name = format!(
                "ix_auto_{}_{}",
                s.table.to_ascii_lowercase(),
                s.columns.join("_").to_ascii_lowercase()
            );
            let Some(t) = self.db.get_table(&s.table) else { continue };
            if t.create_index(reldb::IndexDef {
                name,
                columns: s.columns.clone(),
                unique: false,
            })
            .is_ok()
            {
                created += 1;
            }
        }
        Ok(created)
    }
}

// ----------------------------------------------------------- SQL building

/// Quote an identifier for the SQL dialect (double quotes when needed).
/// Embedded double quotes are doubled, so a hostile or merely unusual name
/// like `a"b` can never break out of the quoted identifier.
pub fn ident(name: &str) -> String {
    if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// Build `SELECT <cols> FROM <table>` with optional WHERE conjuncts and an
/// optional aggregate projection. Conjuncts are strings already containing
/// `?` placeholders.
pub fn build_select(
    table: &str,
    columns: &[String],
    conjuncts: &[String],
    aggregate: Option<&str>,
) -> String {
    let proj = match aggregate {
        Some(agg) => agg.to_string(),
        None => {
            if columns.is_empty() {
                "*".to_string()
            } else {
                columns.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", ")
            }
        }
    };
    let mut sql = format!("SELECT {proj} FROM {}", ident(table));
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    sql
}

/// Build an `col IN (?, ?, ...)` conjunct for `n` values (or `col = ?` for
/// one).
pub fn in_list(col: &str, n: usize) -> String {
    if n == 1 {
        format!("{} = ?", ident(col))
    } else {
        let marks = vec!["?"; n].join(", ");
        format!("{} IN ({})", ident(col), marks)
    }
}

/// Round an IN-list arity up to its template bucket: 1 stays 1 (the `=`
/// form), anything larger goes to the next power of two. With buckets, a
/// workload whose frontier sizes range over 1..=N produces O(log N)
/// distinct templates instead of one per distinct size — which is what
/// keeps the prepared-template cache hot under traversal workloads.
pub fn bucket_arity(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        n.next_power_of_two()
    }
}

/// Bucketed [`in_list`]: pads `params` in place up to the bucket arity by
/// repeating the last value (duplicates never change IN semantics) and
/// returns the conjunct for the padded arity. `params` must be non-empty.
pub fn in_list_bucketed(col: &str, params: &mut Vec<Value>) -> String {
    let n = params.len();
    debug_assert!(n > 0, "in_list_bucketed over empty params");
    let bucket = bucket_arity(n);
    if let Some(last) = params.last().cloned() {
        params.resize(bucket, last);
    }
    in_list(col, bucket)
}

/// Bucketed [`composite_in`]: pads `keys` in place up to the bucket count
/// by repeating the last key group (duplicate disjuncts are harmless) and
/// returns the conjunct for the padded count. `keys` must be non-empty.
pub fn composite_in_bucketed(cols: &[&str], keys: &mut Vec<Vec<Value>>) -> String {
    let n = keys.len();
    debug_assert!(n > 0, "composite_in_bucketed over empty keys");
    let bucket = bucket_arity(n);
    if let Some(last) = keys.last().cloned() {
        keys.resize(bucket, last);
    }
    composite_in(cols, bucket)
}

/// Build an OR-of-conjunctions conjunct for composite keys:
/// `((a = ? AND b = ?) OR (a = ? AND b = ?))` for `groups` keys over
/// `cols`.
pub fn composite_in(cols: &[&str], groups: usize) -> String {
    let one: String = cols
        .iter()
        .map(|c| format!("{} = ?", ident(c)))
        .collect::<Vec<_>>()
        .join(" AND ");
    if groups == 1 {
        format!("({one})")
    } else {
        let parts = vec![format!("({one})"); groups].join(" OR ");
        format!("({parts})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_table() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, name VARCHAR, src BIGINT)").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'n{}', {})", i % 3, i / 2)).unwrap();
        }
        db
    }

    #[test]
    fn sql_builders() {
        assert_eq!(
            build_select("T", &["a".into(), "b".into()], &[], None),
            "SELECT a, b FROM T"
        );
        assert_eq!(
            build_select("T", &[], &["a = ?".into(), "b IN (?, ?)".into()], None),
            "SELECT * FROM T WHERE a = ? AND b IN (?, ?)"
        );
        assert_eq!(
            build_select("T", &[], &[], Some("COUNT(*)")),
            "SELECT COUNT(*) FROM T"
        );
        assert_eq!(in_list("x", 1), "x = ?");
        assert_eq!(in_list("x", 3), "x IN (?, ?, ?)");
        assert_eq!(composite_in(&["a", "b"], 2), "((a = ? AND b = ?) OR (a = ? AND b = ?))");
        assert_eq!(ident("weird name"), "\"weird name\"");
        assert_eq!(ident("plain_1"), "plain_1");
    }

    #[test]
    fn ident_escapes_embedded_quotes() {
        // A name with an embedded quote cannot terminate the quoted
        // identifier early: the quote is doubled.
        assert_eq!(ident("a\"b"), "\"a\"\"b\"");
        assert_eq!(ident("a\"\"b"), "\"a\"\"\"\"b\"");
        assert_eq!(ident("\""), "\"\"\"\"");
        // Empty names are quoted rather than emitted bare.
        assert_eq!(ident(""), "\"\"");
    }

    #[test]
    fn arity_bucketing_and_padding() {
        assert_eq!(bucket_arity(0), 1);
        assert_eq!(bucket_arity(1), 1);
        assert_eq!(bucket_arity(2), 2);
        assert_eq!(bucket_arity(3), 4);
        assert_eq!(bucket_arity(5), 8);
        assert_eq!(bucket_arity(100), 128);
        assert_eq!(bucket_arity(1024), 1024);

        // Padding repeats the last value up to the bucket size.
        let mut p = vec![Value::Bigint(1), Value::Bigint(2), Value::Bigint(3)];
        let sql = in_list_bucketed("x", &mut p);
        assert_eq!(sql, "x IN (?, ?, ?, ?)");
        assert_eq!(p, vec![Value::Bigint(1), Value::Bigint(2), Value::Bigint(3), Value::Bigint(3)]);

        // Arity 1 keeps the equality form, untouched params.
        let mut p1 = vec![Value::Bigint(7)];
        assert_eq!(in_list_bucketed("x", &mut p1), "x = ?");
        assert_eq!(p1, vec![Value::Bigint(7)]);

        // Composite keys pad whole key groups.
        let mut keys = vec![
            vec![Value::Bigint(1), Value::Bigint(2)],
            vec![Value::Bigint(3), Value::Bigint(4)],
            vec![Value::Bigint(5), Value::Bigint(6)],
        ];
        let sql = composite_in_bucketed(&["a", "b"], &mut keys);
        assert_eq!(
            sql,
            "((a = ? AND b = ?) OR (a = ? AND b = ?) OR (a = ? AND b = ?) OR (a = ? AND b = ?))"
        );
        assert_eq!(keys.len(), 4);
        assert_eq!(keys[3], vec![Value::Bigint(5), Value::Bigint(6)]);
    }

    #[test]
    fn bucketed_in_list_results_match_exact() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db);
        let stats = OverlayStats::default();
        // Padded params (repeating the last id) return the same rows as the
        // exact-arity statement.
        let mut padded = vec![Value::Bigint(1), Value::Bigint(2), Value::Bigint(3)];
        let sql = in_list_bucketed("id", &mut padded);
        let rs = dialect
            .query(&stats, &Profiler::disabled(), &format!("SELECT id FROM t WHERE {sql}"), &padded, None)
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn template_cache_cap_evicts_oldest() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db).with_caps(3, 2);
        let stats = OverlayStats::default();
        for i in 0..5 {
            let sql = format!("SELECT id FROM t WHERE id = {i}");
            dialect.query(&stats, &Profiler::disabled(), &sql, &[], None).unwrap();
        }
        assert_eq!(dialect.template_count(), 3);
        let texts = dialect.template_texts();
        // The two oldest templates were evicted.
        assert!(!texts.contains(&"SELECT id FROM t WHERE id = 0".to_string()), "{texts:?}");
        assert!(!texts.contains(&"SELECT id FROM t WHERE id = 1".to_string()), "{texts:?}");
        assert!(texts.contains(&"SELECT id FROM t WHERE id = 4".to_string()), "{texts:?}");
        let snap = dialect.registry().snapshot_with(Default::default());
        assert_eq!(snap.template_evictions, 2);
        // A re-query of an evicted template still works (it is re-prepared
        // and re-admitted).
        dialect
            .query(&stats, &Profiler::disabled(), "SELECT id FROM t WHERE id = 0", &[], None)
            .unwrap();
        assert_eq!(dialect.template_count(), 3);
    }

    #[test]
    fn pattern_tracker_cap_evicts_least_seen() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db).with_caps(64, 2).with_threshold(2);
        let stats = OverlayStats::default();
        let run = |cols: &[&str]| {
            let cols: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
            dialect
                .query(
                    &stats,
                    &Profiler::disabled(),
                    "SELECT id FROM t",
                    &[],
                    Some(("t", &cols)),
                )
                .unwrap();
        };
        // "src" recurs; "name" is seen once; a third pattern evicts the
        // least-seen one ("name"), keeping the recurring pattern alive.
        run(&["src"]);
        run(&["src"]);
        run(&["src"]);
        run(&["name"]);
        run(&["id"]);
        let frequent = dialect.frequent_patterns();
        assert!(
            frequent.iter().any(|((t, c), n)| t == "t" && c == &vec!["src".to_string()] && *n >= 3),
            "{frequent:?}"
        );
        let snap = dialect.registry().snapshot_with(Default::default());
        assert_eq!(snap.pattern_evictions, 1);
    }

    #[test]
    fn template_cache_hits() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db);
        let stats = OverlayStats::default();
        let sql = "SELECT name FROM t WHERE id = ?";
        let r1 = dialect.query(&stats, &Profiler::disabled(), sql, &[Value::Bigint(1)], None).unwrap();
        let r2 = dialect.query(&stats, &Profiler::disabled(), sql, &[Value::Bigint(2)], None).unwrap();
        assert_eq!(r1.scalar(), Some(&Value::Varchar("n1".into())));
        assert_eq!(r2.scalar(), Some(&Value::Varchar("n2".into())));
        assert_eq!(dialect.template_count(), 1);
        let snap = stats.snapshot();
        assert_eq!(snap.sql_queries, 2);
        assert_eq!(snap.template_hits, 1);
    }

    #[test]
    fn frequent_patterns_drive_index_suggestions() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db.clone()).with_threshold(5);
        let stats = OverlayStats::default();
        // Query on the unindexed 'src' column repeatedly.
        for i in 0..6 {
            dialect
                .query(
                    &stats,
                    &Profiler::disabled(),
                    "SELECT * FROM t WHERE src = ?",
                    &[Value::Bigint(i)],
                    Some(("t", &["src".to_string()])),
                )
                .unwrap();
        }
        let suggestions = dialect.suggested_indexes();
        assert_eq!(suggestions.len(), 1);
        assert_eq!(suggestions[0].columns, vec!["src".to_string()]);
        assert_eq!(suggestions[0].count, 6);
        // Real wall time accumulated on the pattern and flows through.
        assert!(suggestions[0].observed_nanos > 0);

        // A second frequent pattern on 'name'. Pin the observed wall time
        // on both patterns directly (the counters are ours) so the ranking
        // assertion is deterministic: 'name' must cost more than 'src'.
        for i in 0..5 {
            dialect
                .query(
                    &stats,
                    &Profiler::disabled(),
                    "SELECT * FROM t WHERE name = ?",
                    &[Value::Varchar(format!("n{i}"))],
                    Some(("t", &["name".to_string()])),
                )
                .unwrap();
        }
        {
            let patterns = dialect.patterns.read();
            patterns[&("t".to_string(), vec!["src".to_string()])]
                .nanos
                .store(1_000, Ordering::Relaxed);
            patterns[&("t".to_string(), vec!["name".to_string()])]
                .nanos
                .store(9_000, Ordering::Relaxed);
        }
        let ranked = dialect.suggested_indexes();
        assert_eq!(ranked.len(), 2);
        // Costliest pattern first, even though 'src' was seen more often.
        assert_eq!(ranked[0].columns, vec!["name".to_string()]);
        assert_eq!(ranked[0].observed_nanos, 9_000);
        assert_eq!(ranked[0].count, 5);
        assert_eq!(ranked[1].columns, vec!["src".to_string()]);
        assert_eq!(ranked[1].observed_nanos, 1_000);

        // The workload report carries the same ranking and serializes.
        let report = dialect.workload_report();
        assert_eq!(report.suggestions, ranked);
        assert_eq!(report.patterns[0].columns, vec!["name".to_string()]);
        let json = Json::parse(&report.to_json().to_compact()).unwrap();
        let first = json.get("suggestions").and_then(|s| s.as_array()).unwrap()[0].clone();
        assert_eq!(first.get("observed_nanos").and_then(|v| v.as_u64()), Some(9_000));

        // Applying creates both indexes in ranked order; suggestions clear.
        assert_eq!(dialect.apply_suggested_indexes().unwrap(), 2);
        assert!(dialect.suggested_indexes().is_empty());
        // The new indexes are actually used: plans show probes.
        let plan = db.explain("SELECT * FROM t WHERE src = 3").unwrap();
        assert!(plan.contains("INDEX-EQ"), "{plan}");
        let plan = db.explain("SELECT * FROM t WHERE name = 'n1'").unwrap();
        assert!(plan.contains("INDEX-EQ"), "{plan}");
    }

    #[test]
    fn below_threshold_patterns_not_suggested() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db).with_threshold(100);
        let stats = OverlayStats::default();
        for _ in 0..5 {
            dialect
                .query(
                    &stats,
                    &Profiler::disabled(),
                    "SELECT * FROM t WHERE src = ?",
                    &[Value::Bigint(0)],
                    Some(("t", &["src".to_string()])),
                )
                .unwrap();
        }
        assert!(dialect.frequent_patterns().is_empty());
        assert!(dialect.suggested_indexes().is_empty());
    }

    #[test]
    fn indexed_patterns_not_resuggested() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db).with_threshold(1);
        let stats = OverlayStats::default();
        dialect
            .query(
                &stats,
                &Profiler::disabled(),
                "SELECT * FROM t WHERE id = ?",
                &[Value::Bigint(0)],
                Some(("t", &["id".to_string()])),
            )
            .unwrap();
        // id is the PK — already indexed, so nothing to suggest.
        assert!(dialect.suggested_indexes().is_empty());
    }
}
