//! The SQL Dialect module.
//!
//! "The SQL Dialect module deals with everything related to Db2. It
//! generates all the SQL queries needed for implementing graph operations.
//! This module also keeps track of these SQL queries and finds out frequent
//! query patterns ... It then creates a set of pre-compiled SQL templates
//! for these frequent patterns and issues the corresponding prepare
//! statements ... Based on these SQL templates, it also suggests indexes"
//! (Section 6.1).
//!
//! Here: every generated statement is parameterized (`?`), executed through
//! a prepared-statement cache keyed by template text, and its access
//! pattern (table + predicate columns) is counted. Patterns crossing the
//! frequency threshold produce index suggestions, which can be applied in
//! one call.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use reldb::{Database, DbResult, Prepared, RowSet, Value};

use crate::metrics::{MetricsRegistry, Profiler};
use crate::stats::OverlayStats;

/// An index the dialect suggests creating.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexSuggestion {
    pub table: String,
    pub columns: Vec<String>,
}

/// A workload access pattern: (table name, predicate column list).
pub type PatternKey = (String, Vec<String>);

/// SQL generation + template cache + workload pattern tracking.
pub struct SqlDialect {
    db: Arc<Database>,
    /// Prepared templates keyed by SQL text. Read-mostly: once the
    /// workload's templates exist, queries only take the read lock.
    templates: RwLock<HashMap<String, Arc<Prepared>>>,
    /// (table, predicate column list) -> times seen. Counters are atomics
    /// so concurrent queries only contend on first sight of a pattern.
    patterns: RwLock<HashMap<PatternKey, Arc<AtomicU64>>>,
    /// Patterns become suggestions after this many occurrences.
    frequency_threshold: u64,
    /// Always-on aggregate counters (statement count, wall time, rows,
    /// template hit rate), shared with the owning graph.
    registry: Arc<MetricsRegistry>,
}

impl SqlDialect {
    pub fn new(db: Arc<Database>) -> SqlDialect {
        SqlDialect::with_registry(db, Arc::new(MetricsRegistry::default()))
    }

    /// Build a dialect that reports into an externally owned registry.
    pub fn with_registry(db: Arc<Database>, registry: Arc<MetricsRegistry>) -> SqlDialect {
        SqlDialect {
            db,
            templates: RwLock::new(HashMap::new()),
            patterns: RwLock::new(HashMap::new()),
            frequency_threshold: 16,
            registry,
        }
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub fn with_threshold(mut self, threshold: u64) -> SqlDialect {
        self.frequency_threshold = threshold;
        self
    }

    /// Execute a parameterized SQL template through the prepared cache.
    /// `pattern` records the access shape for index advising; `profiler`
    /// (when enabled) receives the statement text, cache outcome, row
    /// count and wall time.
    pub fn query(
        &self,
        stats: &OverlayStats,
        profiler: &Profiler,
        template: &str,
        params: &[Value],
        pattern: Option<(&str, &[String])>,
    ) -> DbResult<RowSet> {
        if let Some((table, cols)) = pattern {
            let key = (table.to_ascii_lowercase(), cols.to_vec());
            let counter = {
                let read = self.patterns.read();
                read.get(&key).cloned()
            };
            let counter = match counter {
                Some(c) => c,
                None => self
                    .patterns
                    .write()
                    .entry(key)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                    .clone(),
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let (prepared, cache_hit) = {
            let hit = self.templates.read().get(template).cloned();
            match hit {
                Some(p) => {
                    stats.record_template_hit();
                    (p, true)
                }
                None => {
                    let p = Arc::new(self.db.prepare(template)?);
                    self.templates.write().insert(template.to_string(), p.clone());
                    (p, false)
                }
            }
        };
        self.registry.record_template(cache_hit);
        stats.record_sql();
        let start = std::time::Instant::now();
        let result = self.db.execute_prepared(&prepared, params);
        let nanos = start.elapsed().as_nanos() as u64;
        let rows = result.as_ref().map(|rs| rs.rows.len()).unwrap_or(0);
        self.registry.record_statement(rows as u64, nanos);
        profiler.record_statement(template, cache_hit, rows, nanos);
        result
    }

    /// Number of distinct cached SQL templates.
    pub fn template_count(&self) -> usize {
        self.templates.read().len()
    }

    /// Frequent query patterns observed so far (above threshold), with
    /// their counts.
    pub fn frequent_patterns(&self) -> Vec<(PatternKey, u64)> {
        self.patterns
            .read()
            .iter()
            .map(|(k, n)| (k.clone(), n.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n >= self.frequency_threshold)
            .collect()
    }

    /// Indexes that would serve the frequent patterns and do not already
    /// exist.
    pub fn suggested_indexes(&self) -> Vec<IndexSuggestion> {
        let mut out = Vec::new();
        for ((table, cols), _) in self.frequent_patterns() {
            if cols.is_empty() {
                continue;
            }
            let Some(t) = self.db.get_table(&table) else { continue };
            let guard = t.read();
            if guard.find_index(&cols).is_none() {
                out.push(IndexSuggestion { table: t.schema.name.clone(), columns: cols });
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Create every suggested index; returns how many were created.
    pub fn apply_suggested_indexes(&self) -> DbResult<usize> {
        let suggestions = self.suggested_indexes();
        let mut created = 0;
        for s in &suggestions {
            let name = format!(
                "ix_auto_{}_{}",
                s.table.to_ascii_lowercase(),
                s.columns.join("_").to_ascii_lowercase()
            );
            let Some(t) = self.db.get_table(&s.table) else { continue };
            if t.create_index(reldb::IndexDef {
                name,
                columns: s.columns.clone(),
                unique: false,
            })
            .is_ok()
            {
                created += 1;
            }
        }
        Ok(created)
    }
}

// ----------------------------------------------------------- SQL building

/// Quote an identifier for the SQL dialect (double quotes when needed).
pub fn ident(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

/// Build `SELECT <cols> FROM <table>` with optional WHERE conjuncts and an
/// optional aggregate projection. Conjuncts are strings already containing
/// `?` placeholders.
pub fn build_select(
    table: &str,
    columns: &[String],
    conjuncts: &[String],
    aggregate: Option<&str>,
) -> String {
    let proj = match aggregate {
        Some(agg) => agg.to_string(),
        None => {
            if columns.is_empty() {
                "*".to_string()
            } else {
                columns.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", ")
            }
        }
    };
    let mut sql = format!("SELECT {proj} FROM {}", ident(table));
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    sql
}

/// Build an `col IN (?, ?, ...)` conjunct for `n` values (or `col = ?` for
/// one).
pub fn in_list(col: &str, n: usize) -> String {
    if n == 1 {
        format!("{} = ?", ident(col))
    } else {
        let marks = vec!["?"; n].join(", ");
        format!("{} IN ({})", ident(col), marks)
    }
}

/// Build an OR-of-conjunctions conjunct for composite keys:
/// `((a = ? AND b = ?) OR (a = ? AND b = ?))` for `groups` keys over
/// `cols`.
pub fn composite_in(cols: &[&str], groups: usize) -> String {
    let one: String = cols
        .iter()
        .map(|c| format!("{} = ?", ident(c)))
        .collect::<Vec<_>>()
        .join(" AND ");
    if groups == 1 {
        format!("({one})")
    } else {
        let parts = vec![format!("({one})"); groups].join(" OR ");
        format!("({parts})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_table() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, name VARCHAR, src BIGINT)").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'n{}', {})", i % 3, i / 2)).unwrap();
        }
        db
    }

    #[test]
    fn sql_builders() {
        assert_eq!(
            build_select("T", &["a".into(), "b".into()], &[], None),
            "SELECT a, b FROM T"
        );
        assert_eq!(
            build_select("T", &[], &["a = ?".into(), "b IN (?, ?)".into()], None),
            "SELECT * FROM T WHERE a = ? AND b IN (?, ?)"
        );
        assert_eq!(
            build_select("T", &[], &[], Some("COUNT(*)")),
            "SELECT COUNT(*) FROM T"
        );
        assert_eq!(in_list("x", 1), "x = ?");
        assert_eq!(in_list("x", 3), "x IN (?, ?, ?)");
        assert_eq!(composite_in(&["a", "b"], 2), "((a = ? AND b = ?) OR (a = ? AND b = ?))");
        assert_eq!(ident("weird name"), "\"weird name\"");
        assert_eq!(ident("plain_1"), "plain_1");
    }

    #[test]
    fn template_cache_hits() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db);
        let stats = OverlayStats::default();
        let sql = "SELECT name FROM t WHERE id = ?";
        let r1 = dialect.query(&stats, &Profiler::disabled(), sql, &[Value::Bigint(1)], None).unwrap();
        let r2 = dialect.query(&stats, &Profiler::disabled(), sql, &[Value::Bigint(2)], None).unwrap();
        assert_eq!(r1.scalar(), Some(&Value::Varchar("n1".into())));
        assert_eq!(r2.scalar(), Some(&Value::Varchar("n2".into())));
        assert_eq!(dialect.template_count(), 1);
        let snap = stats.snapshot();
        assert_eq!(snap.sql_queries, 2);
        assert_eq!(snap.template_hits, 1);
    }

    #[test]
    fn frequent_patterns_drive_index_suggestions() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db.clone()).with_threshold(5);
        let stats = OverlayStats::default();
        // Query on the unindexed 'src' column repeatedly.
        for i in 0..6 {
            dialect
                .query(
                    &stats,
                    &Profiler::disabled(),
                    "SELECT * FROM t WHERE src = ?",
                    &[Value::Bigint(i)],
                    Some(("t", &["src".to_string()])),
                )
                .unwrap();
        }
        let suggestions = dialect.suggested_indexes();
        assert_eq!(suggestions.len(), 1);
        assert_eq!(suggestions[0].columns, vec!["src".to_string()]);
        // Applying creates the index; suggestions then clear.
        assert_eq!(dialect.apply_suggested_indexes().unwrap(), 1);
        assert!(dialect.suggested_indexes().is_empty());
        // The new index is actually used: plan shows a probe.
        let plan = db.explain("SELECT * FROM t WHERE src = 3").unwrap();
        assert!(plan.contains("INDEX-EQ"), "{plan}");
    }

    #[test]
    fn below_threshold_patterns_not_suggested() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db).with_threshold(100);
        let stats = OverlayStats::default();
        for _ in 0..5 {
            dialect
                .query(
                    &stats,
                    &Profiler::disabled(),
                    "SELECT * FROM t WHERE src = ?",
                    &[Value::Bigint(0)],
                    Some(("t", &["src".to_string()])),
                )
                .unwrap();
        }
        assert!(dialect.frequent_patterns().is_empty());
        assert!(dialect.suggested_indexes().is_empty());
    }

    #[test]
    fn indexed_patterns_not_resuggested() {
        let db = db_with_table();
        let dialect = SqlDialect::new(db).with_threshold(1);
        let stats = OverlayStats::default();
        dialect
            .query(
                &stats,
                &Profiler::disabled(),
                "SELECT * FROM t WHERE id = ?",
                &[Value::Bigint(0)],
                Some(("t", &["id".to_string()])),
            )
            .unwrap();
        // id is the PK — already indexed, so nothing to suggest.
        assert!(dialect.suggested_indexes().is_empty());
    }
}
