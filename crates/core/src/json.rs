//! A minimal JSON value model, parser, and serializer.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so the overlay
//! config format ([`crate::config`]) and the observability snapshots
//! ([`crate::metrics`]) are (de)serialized through this hand-rolled layer.
//! It supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null); object key order is preserved.

use std::fmt;

/// A parsed JSON value. Objects keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at offset {pos}"));
        }
        Ok(value)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                })
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                })
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no Inf/NaN; degrade to null like serde_json's lossy modes.
        "null".to_string()
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected character '{}' at offset {pos}", *c as char)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos} (expected '{lit}')"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    // Iterate over chars from the current byte offset so multi-byte UTF-8
    // passes through unharmed.
    let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => {
                let (_, esc) = chars.next().ok_or("unterminated escape")?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000C}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + h.to_digit(16).ok_or_else(|| {
                                    format!("bad hex digit '{h}' in \\u escape")
                                })?;
                        }
                        // Surrogate pairs are not recombined; the overlay
                        // format never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape '\\{other}'")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

// ---------------------------------------------------------------- builder

/// Convenience constructors for building JSON documents in code.
impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""a\nb\"cA""#).unwrap(), Json::Str("a\nb\"cA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": {"d": false}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{ not json").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("01a").is_err());
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let doc = r#"{"v": [{"n": 1, "s": "x y", "flag": true}], "empty": [], "o": {}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn preserves_key_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse(r#""héllo ☃""#).unwrap();
        assert_eq!(v, Json::Str("héllo ☃".into()));
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }
}
