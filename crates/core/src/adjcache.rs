//! Columnar CSR adjacency cache.
//!
//! Every adjacency step the Graph Structure module executes turns into SQL
//! against the overlaid edge tables — correct, but a traversal workload
//! re-expands the same frontiers over and over, paying statement dispatch
//! and row materialization each time. GRAPHITE-style systems answer
//! traversals from columnar in-engine adjacency instead; this module
//! retrofits that idea *behind* the SQL path: a per-(edge-table ×
//! direction) cache of CSR-shaped columns (offsets + neighbor-ids +
//! edge-ids, all `Vec<i64>`) that [`Db2GraphBackend`] consults before
//! generating adjacency SQL. Cache-hit sources expand entirely in memory;
//! misses fall back to the unchanged batched-SQL path, whose results
//! lazily populate the cache for next time.
//!
//! ## MVCC correctness (the epoch-invalidation rule)
//!
//! The relational substrate is MVCC: a query pins a [`Snapshot`] at epoch
//! `E` and must observe exactly the state committed at `E`. A cache above
//! it must never leak a later (or earlier) state into that view. Each
//! segment therefore records the **epoch** its rows were read at
//! (`built_epoch`) and the **schema generation** at build time, and the
//! cache tracks a per-table *last-modified watermark* fed by a
//! [`reldb::ChangeHook`] — the engine reports, inside its commit lock,
//! which tables every published commit touched. A segment may serve a
//! query pinned at epoch `E` only when
//!
//! ```text
//! schema_gen(segment) == schema_gen(db)
//!   AND watermark(table) <= min(built_epoch(segment), E)
//! ```
//!
//! i.e. the table provably has not changed between the state the segment
//! captured and the state the query reads. Otherwise the segment is
//! dropped (stale) or bypassed (query older than the last change) — never
//! served. Tables that predate the hook installation use the installation
//! epoch as a conservative watermark. Queries running inside a session
//! transaction (a stamped snapshot: they see their own uncommitted
//! writes) and profiled/observed runs bypass the cache entirely — see
//! `docs/VECTORIZED.md`.
//!
//! ## Layout
//!
//! A segment interns `ElementId`s into dense `i64` dictionary codes and
//! stores classic CSR columns: `sources[i]` spans
//! `neighbors[offsets[i]..offsets[i+1]]` (opposite-endpoint codes) and
//! `edge_rows[..]` (rows in an append-only edge arena). The arena holds
//! materialized [`Edge`]s in immutable `Arc` chunks, so serving resolves
//! spans under the cache lock but materializes (clones) edges outside it
//! — which is what lets the backend expand hits on work-stealing morsels
//! (`pool::run_morsels`) without holding the cache lock.
//!
//! Memory is bounded: `DB2GRAPH_ADJ_CACHE_MB` (default
//! [`DEFAULT_ADJ_CACHE_MB`], `0` disables the cache) caps the resident
//! estimate, enforced by LRU eviction at segment granularity.

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use gremlin::structure::{Edge, ElementId, GValue};
use parking_lot::{Mutex, RwLock};
use reldb::Database;

use crate::metrics::MetricsRegistry;

/// Environment knob: adjacency-cache budget in mebibytes. `0` disables
/// the cache.
pub const ADJ_CACHE_MB_ENV: &str = "DB2GRAPH_ADJ_CACHE_MB";

/// Default cache budget when neither `GraphOptions.adj_cache_mb` nor the
/// environment sets one.
pub const DEFAULT_ADJ_CACHE_MB: usize = 64;

/// Key of one cache segment: (edge-table index, direction), where `true`
/// means outgoing (source = the edge's src endpoint).
type SegKey = (usize, bool);

/// Per-table last-modified watermarks, maintained by the change hook.
struct Watermarks {
    /// Epoch at hook installation: the conservative watermark for tables
    /// the hook has never reported (they may have last changed at any
    /// epoch up to this one).
    floor: u64,
    /// Lowercased table name -> epoch of the last commit touching it.
    by_table: HashMap<String, u64>,
}

impl Watermarks {
    fn get(&self, table: &str) -> u64 {
        self.by_table.get(table).copied().unwrap_or(self.floor)
    }
}

/// One cache-resident edge, resolvable without the cache lock: an `Arc`
/// to its immutable arena chunk plus its index there. Materialization
/// (the `Edge` clone) is the expensive part, deferred to morsel workers.
#[derive(Clone)]
pub struct EdgeRef {
    chunk: Arc<Vec<Edge>>,
    idx: usize,
}

impl EdgeRef {
    pub fn materialize(&self) -> Edge {
        self.chunk[self.idx].clone()
    }
}

/// The cache's answer for one frontier source id.
pub enum Probe {
    /// Complete adjacency for this source at the query's epoch (possibly
    /// empty). No SQL needed.
    Hit(Vec<EdgeRef>),
    /// Unknown: fall back to the batched-SQL path.
    Miss,
}

/// One CSR segment: the cached adjacency of one (edge table, direction).
struct Segment {
    /// Lowercased edge-table name — the watermark key.
    table: String,
    /// The committed epoch whose state this segment's rows reflect.
    built_epoch: u64,
    /// Catalog generation at build time; any DDL invalidates.
    schema_gen: u64,
    /// Built from a full scan: sources absent from the dictionary are
    /// known to have empty adjacency (a hit), not unknown (a miss).
    complete: bool,
    /// `ElementId` -> dense dictionary code.
    dict: HashMap<ElementId, i64>,
    /// Reverse dictionary: code -> `ElementId`.
    ids: Vec<ElementId>,
    /// Source code -> row in the CSR columns below.
    src_row: HashMap<i64, usize>,
    /// CSR columns: `sources[i]` spans
    /// `neighbors/edge_rows[offsets[i] as usize .. offsets[i+1] as usize]`.
    sources: Vec<i64>,
    offsets: Vec<i64>,
    /// Opposite-endpoint dictionary codes.
    neighbors: Vec<i64>,
    /// Global arena row of each adjacency entry.
    edge_rows: Vec<i64>,
    /// Append-only arena of materialized edges, in immutable chunks (one
    /// per population batch). `arena_starts[k]` is the global row of
    /// chunk `k`'s first edge.
    arena: Vec<Arc<Vec<Edge>>>,
    arena_starts: Vec<i64>,
    /// Resident-size estimate for the budget.
    bytes: usize,
    /// LRU clock value of the last lookup touching this segment.
    last_used: u64,
}

impl Segment {
    fn new(table: String, built_epoch: u64, schema_gen: u64, complete: bool) -> Segment {
        Segment {
            table,
            built_epoch,
            schema_gen,
            complete,
            dict: HashMap::new(),
            ids: Vec::new(),
            src_row: HashMap::new(),
            sources: Vec::new(),
            offsets: vec![0],
            neighbors: Vec::new(),
            edge_rows: Vec::new(),
            arena: Vec::new(),
            arena_starts: Vec::new(),
            bytes: SEGMENT_BASE_BYTES,
            last_used: 0,
        }
    }

    fn intern(&mut self, id: &ElementId) -> i64 {
        if let Some(&c) = self.dict.get(id) {
            return c;
        }
        let code = self.ids.len() as i64;
        self.dict.insert(id.clone(), code);
        self.ids.push(id.clone());
        self.bytes += approx_id_bytes(id) * 2 + 48;
        code
    }

    /// Resolve one adjacency entry to a lock-free edge reference.
    fn edge_ref(&self, global_row: i64) -> EdgeRef {
        // arena_starts is sorted; find the chunk containing the row.
        let k = match self.arena_starts.binary_search(&global_row) {
            Ok(k) => k,
            Err(k) => k - 1,
        };
        EdgeRef {
            chunk: self.arena[k].clone(),
            idx: (global_row - self.arena_starts[k]) as usize,
        }
    }

    /// The adjacency span of one source id, if cached.
    fn span(&self, id: &ElementId) -> Option<Vec<EdgeRef>> {
        let code = match self.dict.get(id) {
            Some(c) => c,
            None => return self.complete.then(Vec::new),
        };
        let row = match self.src_row.get(code) {
            Some(&r) => r,
            None => return self.complete.then(Vec::new),
        };
        let (lo, hi) = (self.offsets[row] as usize, self.offsets[row + 1] as usize);
        Some(self.edge_rows[lo..hi].iter().map(|&g| self.edge_ref(g)).collect())
    }

    /// Append the complete adjacency of `probed_ids` (grouped from one
    /// unconstrained probe's result rows, order preserved).
    fn append(&mut self, probed_ids: &[ElementId], out: bool, edges: &[&Edge]) {
        // Group result edges by their probed endpoint, preserving row
        // order within each source — the order SQL produced them.
        let mut per_source: HashMap<&ElementId, Vec<&Edge>> = HashMap::new();
        for e in edges {
            let anchor = if out { &e.src } else { &e.dst };
            per_source.entry(anchor).or_default().push(e);
        }
        let mut chunk: Vec<Edge> = Vec::new();
        let global_base = self.arena_starts.last().map_or(0, |&s| s + self.arena.last().map_or(0, |c| c.len() as i64));
        for id in probed_ids {
            let code = self.intern(id);
            if self.src_row.contains_key(&code) {
                continue; // already cached (identical state — same epoch)
            }
            let own = per_source.get(id).map(|v| v.as_slice()).unwrap_or(&[]);
            self.src_row.insert(code, self.sources.len());
            self.sources.push(code);
            for e in own {
                let ncode = self.intern(if out { &e.dst } else { &e.src });
                self.neighbors.push(ncode);
                self.edge_rows.push(global_base + chunk.len() as i64);
                self.bytes += approx_edge_bytes(e) + 24;
                chunk.push((*e).clone());
            }
            self.offsets.push(self.neighbors.len() as i64);
            self.bytes += 48;
        }
        if !chunk.is_empty() {
            self.arena_starts.push(global_base);
            self.arena.push(Arc::new(chunk));
        }
    }
}

/// Fixed overhead charged per segment so even empty segments count
/// against the budget.
const SEGMENT_BASE_BYTES: usize = 512;

fn approx_id_bytes(id: &ElementId) -> usize {
    match id {
        ElementId::Long(_) => 16,
        ElementId::Str(s) => 24 + s.len(),
    }
}

fn approx_gvalue_bytes(v: &GValue) -> usize {
    match v {
        GValue::Str(s) => 24 + s.len(),
        _ => 16,
    }
}

/// Resident-size estimate of one materialized edge (id + endpoints +
/// label + properties).
fn approx_edge_bytes(e: &Edge) -> usize {
    let mut n = 96
        + approx_id_bytes(&e.id)
        + approx_id_bytes(&e.src)
        + approx_id_bytes(&e.dst)
        + 24
        + e.label.len();
    for (k, v) in &e.properties {
        n += 48 + k.len() + approx_gvalue_bytes(v);
    }
    if let Some(p) = &e.provenance {
        n += 24 + p.len();
    }
    n
}

struct CacheInner {
    segments: HashMap<SegKey, Segment>,
    /// Sum of all segments' byte estimates.
    bytes: usize,
    /// LRU clock.
    tick: u64,
}

/// The adjacency cache for one graph. Shared (via `Arc`) by the backend
/// and all of its shallow per-query clones; one instance per `Db2Graph`.
pub struct AdjCache {
    db: Arc<Database>,
    budget_bytes: usize,
    registry: Arc<MetricsRegistry>,
    watermarks: Arc<RwLock<Watermarks>>,
    inner: Mutex<CacheInner>,
}

impl AdjCache {
    /// Build a cache over `db` with a `budget_mb` MiB budget and register
    /// its change hook. The hook holds only a weak reference: dropping
    /// the graph (and its cache) degenerates the hook to a no-op rather
    /// than leaking the cache through the database.
    pub fn new(db: Arc<Database>, budget_mb: usize, registry: Arc<MetricsRegistry>) -> Arc<AdjCache> {
        let watermarks = Arc::new(RwLock::new(Watermarks {
            // Read before hook registration: every epoch at or below this
            // may contain unseen changes, and every commit after
            // registration is reported — no window is unaccounted for.
            floor: db.commit_epoch(),
            by_table: HashMap::new(),
        }));
        let cache = Arc::new(AdjCache {
            db: db.clone(),
            budget_bytes: budget_mb.saturating_mul(1024 * 1024),
            registry,
            watermarks: watermarks.clone(),
            inner: Mutex::new(CacheInner { segments: HashMap::new(), bytes: 0, tick: 0 }),
        });
        let weak: Weak<RwLock<Watermarks>> = Arc::downgrade(&watermarks);
        db.add_change_hook(Arc::new(move |epoch, tables| {
            if let Some(w) = weak.upgrade() {
                let mut w = w.write();
                for t in tables {
                    w.by_table.insert(t.clone(), epoch);
                }
            }
        }));
        cache
    }

    /// Resident byte estimate (the `adj_cache_bytes` gauge).
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of resident segments.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// The per-table watermark a serve/populate decision would use now.
    fn watermark(&self, table: &str) -> u64 {
        self.watermarks.read().get(table)
    }

    /// Look up the adjacency of `ids` in segment `(et_idx, out)` for a
    /// query pinned at `epoch`. Returns one [`Probe`] per id, in order.
    /// Stale segments are dropped here (counted as invalidations), never
    /// served.
    pub fn lookup(&self, et_idx: usize, out: bool, ids: &[ElementId], epoch: u64) -> Vec<Probe> {
        let all_miss = |n: usize| (0..n).map(|_| Probe::Miss).collect::<Vec<_>>();
        let schema_gen = self.db.schema_generation();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let key = (et_idx, out);
        let Some(seg) = inner.segments.get_mut(&key) else {
            self.registry.record_adj_cache_misses(ids.len() as u64);
            return all_miss(ids.len());
        };
        let wm = self.watermarks.read().get(&seg.table);
        if seg.schema_gen != schema_gen || wm > seg.built_epoch {
            // The table (or the catalog) moved past the segment's state:
            // it can never serve anyone again.
            let stale = inner.segments.remove(&key).expect("segment present");
            inner.bytes -= stale.bytes;
            self.registry.record_adj_cache_invalidations(1);
            self.registry.record_adj_cache_misses(ids.len() as u64);
            return all_miss(ids.len());
        }
        if wm > epoch {
            // The segment is current but this query's snapshot predates
            // the table's last change: bypass (do not drop — newer
            // queries can still be served).
            self.registry.record_adj_cache_misses(ids.len() as u64);
            return all_miss(ids.len());
        }
        seg.last_used = tick;
        let mut hits = 0u64;
        let probes: Vec<Probe> = ids
            .iter()
            .map(|id| match seg.span(id) {
                Some(refs) => {
                    hits += 1;
                    Probe::Hit(refs)
                }
                None => Probe::Miss,
            })
            .collect();
        self.registry.record_adj_cache_hits(hits);
        self.registry.record_adj_cache_misses(ids.len() as u64 - hits);
        probes
    }

    /// Populate from one unconstrained probe's result: `edges` is the
    /// complete adjacency of `probed_ids` in `table` for direction `out`,
    /// read at committed epoch `epoch`. No-op if a concurrent commit
    /// already made that state unservable.
    pub fn insert(
        &self,
        et_idx: usize,
        out: bool,
        table: &str,
        probed_ids: &[ElementId],
        edges: &[&Edge],
        epoch: u64,
    ) {
        self.insert_inner(et_idx, out, table, probed_ids, edges, epoch, false)
    }

    /// Populate from a full scan of `table`: like [`AdjCache::insert`],
    /// but the resulting segment is *complete* — sources not present are
    /// known to have empty adjacency, so they hit (with no edges) instead
    /// of missing. Replaces any existing segment.
    pub fn insert_complete(
        &self,
        et_idx: usize,
        out: bool,
        table: &str,
        edges: &[&Edge],
        epoch: u64,
    ) {
        // A full scan defines its own source universe.
        let mut seen: std::collections::HashSet<&ElementId> = std::collections::HashSet::new();
        let mut sources: Vec<ElementId> = Vec::new();
        for e in edges {
            let anchor = if out { &e.src } else { &e.dst };
            if seen.insert(anchor) {
                sources.push(anchor.clone());
            }
        }
        self.insert_inner(et_idx, out, table, &sources, edges, epoch, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_inner(
        &self,
        et_idx: usize,
        out: bool,
        table: &str,
        probed_ids: &[ElementId],
        edges: &[&Edge],
        epoch: u64,
        complete: bool,
    ) {
        if self.budget_bytes == 0 {
            return;
        }
        let table = table.to_ascii_lowercase();
        let schema_gen = self.db.schema_generation();
        let wm = self.watermark(&table);
        if wm > epoch {
            // The table changed after this data was read; caching it
            // would serve a superseded state.
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let key = (et_idx, out);
        if let Some(seg) = inner.segments.get(&key) {
            let drop_existing = seg.schema_gen != schema_gen
                || wm > seg.built_epoch
                || complete
                || seg.table != table;
            if drop_existing {
                let stale = inner.segments.remove(&key).expect("segment present");
                inner.bytes -= stale.bytes;
                if !complete {
                    self.registry.record_adj_cache_invalidations(1);
                }
            } else if wm > epoch.min(seg.built_epoch) {
                return; // incompatible states; keep the existing segment
            }
        }
        let existed = inner.segments.contains_key(&key);
        let seg = inner
            .segments
            .entry(key)
            .or_insert_with(|| Segment::new(table, epoch, schema_gen, complete));
        let before = if existed { seg.bytes } else { 0 };
        // Appending rows read at a different epoch is sound only because
        // wm <= min(built_epoch, epoch) — the table did not change
        // between the two states, so they are the same state.
        seg.built_epoch = seg.built_epoch.min(epoch);
        seg.last_used = tick;
        seg.append(probed_ids, out, edges);
        let after = seg.bytes;
        inner.bytes = inner.bytes - before + after;
        self.enforce_budget(&mut inner);
    }

    /// LRU eviction at segment granularity until the estimate fits the
    /// budget (which can evict the segment just populated, if it alone
    /// exceeds the budget).
    fn enforce_budget(&self, inner: &mut CacheInner) {
        let mut evicted = 0u64;
        while inner.bytes > self.budget_bytes && !inner.segments.is_empty() {
            let victim = inner
                .segments
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty");
            let seg = inner.segments.remove(&victim).expect("victim present");
            inner.bytes -= seg.bytes;
            evicted += 1;
        }
        if evicted > 0 {
            self.registry.record_adj_cache_evictions(evicted);
        }
    }

    /// Drop every segment (tests and explicit resets).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let n = inner.segments.len() as u64;
        inner.segments.clear();
        inner.bytes = 0;
        if n > 0 {
            self.registry.record_adj_cache_invalidations(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: i64, dst: i64, n: i64) -> Edge {
        let mut e = Edge::new(
            ElementId::Str(format!("e{src}-{dst}-{n}")),
            "knows",
            ElementId::Long(src),
            ElementId::Long(dst),
        );
        e.provenance = Some("knows".into());
        e
    }

    fn cache(db: &Arc<Database>, mb: usize) -> (Arc<AdjCache>, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::default());
        (AdjCache::new(db.clone(), mb, registry.clone()), registry)
    }

    fn commit_touching(db: &Database, table: &str) {
        db.execute(&format!("INSERT INTO {table} VALUES ({})", db.commit_epoch() + 1000))
            .unwrap();
    }

    fn test_db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE knows (x BIGINT)").unwrap();
        db.execute("CREATE TABLE other (x BIGINT)").unwrap();
        db
    }

    fn hits_of(probes: &[Probe]) -> Vec<Option<Vec<Edge>>> {
        probes
            .iter()
            .map(|p| match p {
                Probe::Hit(refs) => Some(refs.iter().map(|r| r.materialize()).collect()),
                Probe::Miss => None,
            })
            .collect()
    }

    #[test]
    fn populate_then_hit_same_epoch() {
        let db = test_db();
        let (cache, _) = cache(&db, 4);
        let e1 = edge(1, 2, 0);
        let e2 = edge(1, 3, 1);
        let epoch = db.commit_epoch();
        let ids = vec![ElementId::Long(1), ElementId::Long(9)];
        cache.insert(0, true, "knows", &ids, &[&e1, &e2], epoch);
        let probes = cache.lookup(0, true, &ids, epoch);
        let hits = hits_of(&probes);
        assert_eq!(hits[0].as_ref().map(|v| v.len()), Some(2));
        assert_eq!(hits[0].as_ref().unwrap()[0], e1);
        assert_eq!(hits[0].as_ref().unwrap()[1], e2);
        // Probed id with no edges: cached as empty adjacency (a hit).
        assert_eq!(hits[1].as_ref().map(|v| v.len()), Some(0));
        // An unprobed id is a miss (segment is not complete).
        let probes = cache.lookup(0, true, &[ElementId::Long(5)], epoch);
        assert!(matches!(probes[0], Probe::Miss));
    }

    #[test]
    fn commit_to_cached_table_invalidates() {
        let db = test_db();
        let (cache, registry) = cache(&db, 4);
        let epoch = db.commit_epoch();
        let ids = vec![ElementId::Long(1)];
        cache.insert(0, true, "knows", &ids, &[&edge(1, 2, 0)], epoch);
        commit_touching(&db, "knows");
        let new_epoch = db.commit_epoch();
        let probes = cache.lookup(0, true, &ids, new_epoch);
        assert!(matches!(probes[0], Probe::Miss));
        let snap = registry.snapshot_with(Default::default());
        assert_eq!(snap.adj_cache_invalidations, 1);
        assert_eq!(cache.segment_count(), 0);
    }

    #[test]
    fn commit_to_unrelated_table_keeps_segment() {
        let db = test_db();
        let (cache, _) = cache(&db, 4);
        let epoch = db.commit_epoch();
        let ids = vec![ElementId::Long(1)];
        cache.insert(0, true, "knows", &ids, &[&edge(1, 2, 0)], epoch);
        commit_touching(&db, "other");
        let probes = cache.lookup(0, true, &ids, db.commit_epoch());
        assert!(matches!(probes[0], Probe::Hit(_)));
    }

    #[test]
    fn old_snapshot_bypasses_without_dropping() {
        let db = test_db();
        let (cache, _) = cache(&db, 4);
        let old_epoch = db.commit_epoch();
        commit_touching(&db, "knows");
        let new_epoch = db.commit_epoch();
        let ids = vec![ElementId::Long(1)];
        cache.insert(0, true, "knows", &ids, &[&edge(1, 2, 0)], new_epoch);
        // A snapshot from before the commit must not see the newer state.
        let probes = cache.lookup(0, true, &ids, old_epoch);
        assert!(matches!(probes[0], Probe::Miss));
        // ... but the segment still serves current snapshots.
        let probes = cache.lookup(0, true, &ids, new_epoch);
        assert!(matches!(probes[0], Probe::Hit(_)));
        // And the old snapshot's results never populate over newer data.
        cache.insert(0, true, "knows", &[ElementId::Long(7)], &[], old_epoch);
        let probes = cache.lookup(0, true, &[ElementId::Long(7)], new_epoch);
        assert!(matches!(probes[0], Probe::Miss));
    }

    #[test]
    fn ddl_invalidates_via_schema_generation() {
        let db = test_db();
        let (cache, registry) = cache(&db, 4);
        let epoch = db.commit_epoch();
        let ids = vec![ElementId::Long(1)];
        cache.insert(0, true, "knows", &ids, &[&edge(1, 2, 0)], epoch);
        db.execute("CREATE TABLE later (x BIGINT)").unwrap();
        let probes = cache.lookup(0, true, &ids, db.commit_epoch());
        assert!(matches!(probes[0], Probe::Miss));
        let snap = registry.snapshot_with(Default::default());
        assert_eq!(snap.adj_cache_invalidations, 1);
    }

    #[test]
    fn complete_segment_hits_absent_sources_empty() {
        let db = test_db();
        let (cache, _) = cache(&db, 4);
        let epoch = db.commit_epoch();
        let e1 = edge(1, 2, 0);
        cache.insert_complete(0, true, "knows", &[&e1], epoch);
        let probes =
            cache.lookup(0, true, &[ElementId::Long(1), ElementId::Long(42)], epoch);
        let hits = hits_of(&probes);
        assert_eq!(hits[0].as_ref().map(|v| v.len()), Some(1));
        assert_eq!(hits[1].as_ref().map(|v| v.len()), Some(0));
    }

    #[test]
    fn budget_evicts_lru_segments() {
        let db = test_db();
        // A zero-MB budget disables caching outright.
        let (disabled, _) = cache(&db, 0);
        let epoch = db.commit_epoch();
        disabled.insert(0, true, "knows", &[ElementId::Long(1)], &[&edge(1, 2, 0)], epoch);
        assert_eq!(disabled.segment_count(), 0);

        // Tiny budgets evict whole segments, least recently used first.
        let registry = Arc::new(MetricsRegistry::default());
        let tight = AdjCache {
            db: db.clone(),
            budget_bytes: 16 * 1024,
            registry: registry.clone(),
            watermarks: Arc::new(RwLock::new(Watermarks {
                floor: db.commit_epoch(),
                by_table: HashMap::new(),
            })),
            inner: Mutex::new(CacheInner { segments: HashMap::new(), bytes: 0, tick: 0 }),
        };
        for et in 0..8usize {
            let ids: Vec<ElementId> = (0..16).map(ElementId::Long).collect();
            let edges: Vec<Edge> = (0..16).map(|i| edge(i, i + 1, i)).collect();
            let refs: Vec<&Edge> = edges.iter().collect();
            tight.insert(et, true, "knows", &ids, &refs, epoch);
        }
        assert!(tight.bytes() <= 16 * 1024);
        assert!(tight.segment_count() < 8);
        let snap = registry.snapshot_with(Default::default());
        assert!(snap.adj_cache_evictions > 0, "{}", snap.adj_cache_evictions);
        // The most recently inserted segment survives.
        let probes = tight.lookup(7, true, &[ElementId::Long(0)], epoch);
        assert!(matches!(probes[0], Probe::Hit(_)));
    }

    #[test]
    fn csr_columns_stay_consistent_across_batches() {
        let db = test_db();
        let (cache, _) = cache(&db, 16);
        let epoch = db.commit_epoch();
        // Two population batches into the same segment.
        let batch1: Vec<Edge> = vec![edge(1, 2, 0), edge(1, 3, 1)];
        let refs1: Vec<&Edge> = batch1.iter().collect();
        cache.insert(0, true, "knows", &[ElementId::Long(1)], &refs1, epoch);
        let batch2: Vec<Edge> = vec![edge(4, 1, 2)];
        let refs2: Vec<&Edge> = batch2.iter().collect();
        cache.insert(0, true, "knows", &[ElementId::Long(4), ElementId::Long(5)], &refs2, epoch);
        let ids =
            vec![ElementId::Long(1), ElementId::Long(4), ElementId::Long(5), ElementId::Long(9)];
        let hits = hits_of(&cache.lookup(0, true, &ids, epoch));
        assert_eq!(hits[0].as_ref().unwrap().as_slice(), batch1.as_slice());
        assert_eq!(hits[1].as_ref().unwrap().as_slice(), batch2.as_slice());
        assert_eq!(hits[2].as_ref().map(|v| v.len()), Some(0));
        assert!(hits[3].is_none());
    }
}
