//! Query observability: per-query profiling, plan explanation, and
//! process-wide metrics.
//!
//! Three layers, each answering a different question:
//!
//! * [`Profiler`] — *what did this query do?* A per-query collector threaded
//!   through the whole pipeline: the compiler reports which strategies
//!   rewrote the plan, the executor reports per-step wall time and frontier
//!   sizes, the graph-structure layer reports every table-elimination
//!   decision, and the SQL dialect reports each statement it executed with
//!   its template-cache outcome, row count and wall time. A disabled
//!   profiler ([`Profiler::disabled`]) is a `None` — every record call is a
//!   branch on an `Option` and nothing else, so the unprofiled hot path
//!   pays no locks, no allocation, no timestamps.
//! * [`ExplainReport`] — *what would this query do?* A data-independent
//!   dry-run: the optimized plan plus, per GSA step and per table, either
//!   the SQL that would be generated or the reason the table is eliminated.
//!   Produced without touching any data.
//! * [`MetricsRegistry`] — *what has this graph done so far?* Cheap atomic
//!   counters aggregated across all queries, snapshot at any time (the
//!   bench harness exports one per run).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gremlin::observe::TraversalObserver;
use parking_lot::{Mutex, RwLock};

use crate::json::Json;
use crate::stats::OverlayStatsSnapshot;
use crate::trace::{SpanKind, Tracer};

/// Default capacity of the slow-query log (worst-N entries retained).
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 32;

/// Default cap on distinct keys per latency-histogram set (per SQL
/// template, per step kind); overflow lands under `"<other>"`.
pub const DEFAULT_HISTOGRAM_KEYS: usize = 256;

// ------------------------------------------------------------- profiling

/// One compile-time strategy application that changed the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyRewrite {
    pub strategy: String,
    pub before: String,
    pub after: String,
}

/// Execution of one top-level plan step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepProfile {
    pub index: usize,
    pub description: String,
    /// Traverser frontier size entering the step.
    pub in_count: usize,
    /// Traverser frontier size leaving the step.
    pub out_count: usize,
    pub nanos: u64,
}

/// What the graph-structure layer decided about one overlay table while
/// evaluating a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDecision {
    pub table: String,
    pub action: TableAction,
}

/// The decision taken for a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableAction {
    /// The table was queried with SQL.
    Queried,
    /// The table was selected directly without considering the others
    /// (src/dst vertex table link or prefixed-id pinning).
    Pinned,
    /// The table was eliminated before any SQL, for the given reason.
    Pruned(String),
}

/// One SQL statement executed by the dialect on behalf of the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlStatementProfile {
    pub sql: String,
    /// Whether the prepared-template cache already held this statement.
    pub template_hit: bool,
    pub rows: usize,
    pub nanos: u64,
}

#[derive(Debug, Clone, Default)]
struct ProfileData {
    strategies: Vec<StrategyRewrite>,
    steps: Vec<StepProfile>,
    tables: Vec<TableDecision>,
    statements: Vec<SqlStatementProfile>,
    template_evictions: u64,
    template_invalidations: u64,
    pattern_evictions: u64,
}

/// Per-query event collector. Cheap to clone (shared interior); a disabled
/// profiler records nothing and costs one pointer-null check per event.
///
/// A profiler optionally carries a [`Tracer`] ([`Self::with_tracer`]):
/// every profile event then also lands as a span in the trace, nested
/// under whatever span is open — the two observability layers share one
/// conduit through the pipeline, and each stays a single null-check when
/// its half is disabled.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Mutex<ProfileData>>>,
    tracer: Tracer,
}

impl Profiler {
    /// A profiler that drops every event — the default for normal queries.
    pub fn disabled() -> Profiler {
        Profiler { inner: None, tracer: Tracer::disabled() }
    }

    /// A collecting profiler (with tracing disabled).
    pub fn enabled() -> Profiler {
        Profiler {
            inner: Some(Arc::new(Mutex::new(ProfileData::default()))),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a span tracer: profile events double as trace spans.
    pub fn with_tracer(mut self, tracer: Tracer) -> Profiler {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled unless set via [`Self::with_tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh profiler with the same enablement: worker threads record
    /// into their own fork, and the coordinator [`Self::absorb`]s the forks
    /// in job order — so a parallel run produces the *same* event sequence
    /// as a sequential one, not an interleaving decided by the scheduler.
    /// The attached tracer forks alongside (same discipline, see
    /// [`Tracer::fork`]). Forking a disabled profiler yields a disabled
    /// (free) one.
    pub fn fork(&self) -> Profiler {
        let inner = if self.is_enabled() {
            Some(Arc::new(Mutex::new(ProfileData::default())))
        } else {
            None
        };
        Profiler { inner, tracer: self.tracer.fork() }
    }

    /// Append every event recorded in `other` (draining it), profile data
    /// and trace spans alike. Each half is a no-op when disabled.
    pub fn absorb(&self, other: &Profiler) {
        self.tracer.absorb(&other.tracer);
        let (Some(inner), Some(theirs)) = (&self.inner, &other.inner) else { return };
        let mut data = std::mem::take(&mut *theirs.lock());
        let mut dst = inner.lock();
        dst.strategies.append(&mut data.strategies);
        dst.steps.append(&mut data.steps);
        dst.tables.append(&mut data.tables);
        dst.statements.append(&mut data.statements);
        dst.template_evictions += data.template_evictions;
        dst.template_invalidations += data.template_invalidations;
        dst.pattern_evictions += data.pattern_evictions;
    }

    pub fn record_strategy(&self, strategy: &str, before: &str, after: &str) {
        self.tracer.event(strategy, SpanKind::Strategy, || {
            vec![("before".to_string(), before.to_string()), ("after".to_string(), after.to_string())]
        });
        let Some(inner) = &self.inner else { return };
        inner.lock().strategies.push(StrategyRewrite {
            strategy: strategy.to_string(),
            before: before.to_string(),
            after: after.to_string(),
        });
    }

    pub fn record_step(
        &self,
        index: usize,
        description: &str,
        in_count: usize,
        out_count: usize,
        nanos: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().steps.push(StepProfile {
            index,
            description: description.to_string(),
            in_count,
            out_count,
            nanos,
        });
    }

    pub fn record_table(&self, table: &str, action: TableAction) {
        self.tracer.event(table, SpanKind::Table, || {
            let (act, reason) = match &action {
                TableAction::Queried => ("queried", None),
                TableAction::Pinned => ("pinned", None),
                TableAction::Pruned(r) => ("pruned", Some(r.clone())),
            };
            let mut attrs = vec![("action".to_string(), act.to_string())];
            if let Some(r) = reason {
                attrs.push(("reason".to_string(), r));
            }
            attrs
        });
        let Some(inner) = &self.inner else { return };
        inner.lock().tables.push(TableDecision { table: table.to_string(), action });
    }

    pub fn record_statement(&self, sql: &str, template_hit: bool, rows: usize, nanos: u64) {
        // template_hit is deliberately left out of the span attributes:
        // racing workers may both miss the same template, so hit/miss is
        // the one profile field that is not deterministic across thread
        // counts — and trace *structure* must be.
        self.tracer.span_with_duration(sql, SpanKind::Sql, nanos, || {
            vec![("rows".to_string(), rows.to_string())]
        });
        let Some(inner) = &self.inner else { return };
        inner.lock().statements.push(SqlStatementProfile {
            sql: sql.to_string(),
            template_hit,
            rows,
            nanos,
        });
    }

    /// A prepared template was evicted from the dialect cache while this
    /// query executed.
    pub fn record_template_eviction(&self) {
        let Some(inner) = &self.inner else { return };
        inner.lock().template_evictions += 1;
    }

    /// A cached template was re-prepared because DDL moved the catalog
    /// generation past the one it was compiled under.
    pub fn record_template_invalidation(&self) {
        let Some(inner) = &self.inner else { return };
        inner.lock().template_invalidations += 1;
    }

    /// A tracked workload pattern was evicted while this query executed.
    pub fn record_pattern_eviction(&self) {
        let Some(inner) = &self.inner else { return };
        inner.lock().pattern_evictions += 1;
    }

    /// The report accumulated so far (empty when disabled).
    pub fn report(&self) -> ProfileReport {
        let data = match &self.inner {
            Some(inner) => inner.lock().clone(),
            None => ProfileData::default(),
        };
        ProfileReport {
            strategies: data.strategies,
            steps: data.steps,
            tables: data.tables,
            statements: data.statements,
            template_evictions: data.template_evictions,
            template_invalidations: data.template_invalidations,
            pattern_evictions: data.pattern_evictions,
        }
    }
}

impl TraversalObserver for Profiler {
    fn strategy_applied(&self, name: &str, before: &str, after: &str) {
        self.record_strategy(name, before, after);
    }

    fn step_started(&self, _index: usize, description: &str) {
        self.tracer.start(description, SpanKind::Step);
    }

    fn step_finished(
        &self,
        index: usize,
        description: &str,
        in_count: usize,
        out_count: usize,
        nanos: u64,
    ) {
        // Close the span opened by step_started; its children (table
        // decisions, SQL statements, absorbed worker spans) recorded while
        // the step ran and are already nested under it.
        self.tracer.pop();
        self.record_step(index, description, in_count, out_count, nanos);
    }

    fn take_report(&self) -> Option<String> {
        if self.is_enabled() {
            Some(self.report().to_string())
        } else {
            None
        }
    }
}

/// Structured result of profiling one query.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    pub strategies: Vec<StrategyRewrite>,
    pub steps: Vec<StepProfile>,
    pub tables: Vec<TableDecision>,
    pub statements: Vec<SqlStatementProfile>,
    /// Prepared templates evicted from the dialect cache during this query
    /// (field name matches [`MetricsSnapshot::template_evictions`]).
    pub template_evictions: u64,
    /// Cached templates re-prepared after DDL during this query (field name
    /// matches [`MetricsSnapshot::template_invalidations`]).
    pub template_invalidations: u64,
    /// Workload patterns evicted during this query (field name matches
    /// [`MetricsSnapshot::pattern_evictions`]).
    pub pattern_evictions: u64,
}

/// The step *kind* of a step description — the prefix up to the first
/// `(`: `"Vertex(out)"` → `"Vertex"`. Keys the per-step-kind latency
/// histograms.
pub fn step_kind(description: &str) -> &str {
    description.split('(').next().unwrap_or(description)
}

impl ProfileReport {
    /// Tables the graph-structure layer looked at (queried + pinned +
    /// pruned decisions).
    pub fn tables_considered(&self) -> usize {
        self.tables.len()
    }

    /// Tables that actually received SQL (queried or pinned).
    pub fn tables_queried(&self) -> usize {
        self.tables
            .iter()
            .filter(|d| matches!(d.action, TableAction::Queried | TableAction::Pinned))
            .count()
    }

    pub fn tables_pruned(&self) -> usize {
        self.tables.iter().filter(|d| matches!(d.action, TableAction::Pruned(_))).count()
    }

    pub fn template_hits(&self) -> usize {
        self.statements.iter().filter(|s| s.template_hit).count()
    }

    pub fn template_misses(&self) -> usize {
        self.statements.iter().filter(|s| !s.template_hit).count()
    }

    pub fn total_sql_nanos(&self) -> u64 {
        self.statements.iter().map(|s| s.nanos).sum()
    }

    pub fn total_rows(&self) -> usize {
        self.statements.iter().map(|s| s.rows).sum()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "strategies",
                Json::arr(
                    self.strategies
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("strategy", Json::str(&s.strategy)),
                                ("before", Json::str(&s.before)),
                                ("after", Json::str(&s.after)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "steps",
                Json::arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("index", Json::u64(s.index as u64)),
                                ("step", Json::str(&s.description)),
                                ("in", Json::u64(s.in_count as u64)),
                                ("out", Json::u64(s.out_count as u64)),
                                ("nanos", Json::u64(s.nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "tables",
                Json::arr(
                    self.tables
                        .iter()
                        .map(|d| {
                            let (action, reason) = match &d.action {
                                TableAction::Queried => ("queried", None),
                                TableAction::Pinned => ("pinned", None),
                                TableAction::Pruned(r) => ("pruned", Some(r.clone())),
                            };
                            let mut fields = vec![
                                ("table", Json::str(&d.table)),
                                ("action", Json::str(action)),
                            ];
                            if let Some(r) = reason {
                                fields.push(("reason", Json::str(r)));
                            }
                            Json::obj(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "sql",
                Json::arr(
                    self.statements
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("sql", Json::str(&s.sql)),
                                ("template_hit", Json::Bool(s.template_hit)),
                                ("rows", Json::u64(s.rows as u64)),
                                ("nanos", Json::u64(s.nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "totals",
                Json::obj(vec![
                    ("tables_considered", Json::u64(self.tables_considered() as u64)),
                    ("tables_queried", Json::u64(self.tables_queried() as u64)),
                    ("tables_pruned", Json::u64(self.tables_pruned() as u64)),
                    ("template_hits", Json::u64(self.template_hits() as u64)),
                    ("template_misses", Json::u64(self.template_misses() as u64)),
                    ("template_evictions", Json::u64(self.template_evictions)),
                    ("template_invalidations", Json::u64(self.template_invalidations)),
                    ("pattern_evictions", Json::u64(self.pattern_evictions)),
                    ("sql_rows", Json::u64(self.total_rows() as u64)),
                    ("sql_nanos", Json::u64(self.total_sql_nanos())),
                ]),
            ),
        ])
    }
}

/// Pretty nanoseconds for report text.
pub fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "profile")?;
        if !self.strategies.is_empty() {
            writeln!(f, "  strategies:")?;
            for s in &self.strategies {
                writeln!(f, "    {}: {} => {}", s.strategy, s.before, s.after)?;
            }
        }
        if !self.steps.is_empty() {
            writeln!(f, "  steps:")?;
            for s in &self.steps {
                writeln!(
                    f,
                    "    [{}] {}  in={} out={}  {}",
                    s.index,
                    s.description,
                    s.in_count,
                    s.out_count,
                    fmt_nanos(s.nanos)
                )?;
            }
        }
        writeln!(
            f,
            "  tables: considered={} queried={} pruned={}",
            self.tables_considered(),
            self.tables_queried(),
            self.tables_pruned()
        )?;
        for d in &self.tables {
            match &d.action {
                TableAction::Queried => writeln!(f, "    {}: queried", d.table)?,
                TableAction::Pinned => writeln!(f, "    {}: pinned", d.table)?,
                TableAction::Pruned(r) => writeln!(f, "    {}: pruned ({r})", d.table)?,
            }
        }
        write!(
            f,
            "  sql: statements={} template_hits={} misses={} rows={} total={}",
            self.statements.len(),
            self.template_hits(),
            self.template_misses(),
            self.total_rows(),
            fmt_nanos(self.total_sql_nanos())
        )?;
        for s in &self.statements {
            write!(
                f,
                "\n    [{}, {} rows, {}] {}",
                fmt_nanos(s.nanos),
                s.rows,
                if s.template_hit { "hit" } else { "miss" },
                s.sql
            )?;
        }
        Ok(())
    }
}

// --------------------------------------------------------------- explain

/// How one table would be handled by one GSA step — decided without
/// touching data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TablePlan {
    /// The SQL statement(s) this step would issue against the table.
    Query { sql: Vec<String> },
    /// The table would be queried per frontier batch; the exact statement
    /// depends on runtime ids (adjacency steps).
    Candidate { detail: String },
    /// The table is eliminated, with the reason.
    Pruned { reason: String },
}

/// A table's explain entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableExplain {
    pub table: String,
    pub plan: TablePlan,
}

/// Explain detail for one plan step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepExplain {
    pub index: usize,
    pub description: String,
    pub tables: Vec<TableExplain>,
}

/// The full result of `explain()`: the rewritten plan and the SQL it would
/// generate, produced without executing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainReport {
    /// The optimized plan rendering (after all strategies).
    pub plan: String,
    pub steps: Vec<StepExplain>,
}

impl ExplainReport {
    pub fn tables_considered(&self) -> usize {
        self.steps.iter().map(|s| s.tables.len()).sum()
    }

    pub fn tables_queried(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.tables)
            .filter(|t| !matches!(t.plan, TablePlan::Pruned { .. }))
            .count()
    }

    pub fn tables_pruned(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.tables)
            .filter(|t| matches!(t.plan, TablePlan::Pruned { .. }))
            .count()
    }

    /// Every SQL statement the plan would issue, in step order.
    pub fn sql_statements(&self) -> Vec<&str> {
        self.steps
            .iter()
            .flat_map(|s| &s.tables)
            .filter_map(|t| match &t.plan {
                TablePlan::Query { sql } => Some(sql.iter().map(String::as_str)),
                _ => None,
            })
            .flatten()
            .collect()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("plan", Json::str(&self.plan)),
            (
                "steps",
                Json::arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("index", Json::u64(s.index as u64)),
                                ("step", Json::str(&s.description)),
                                (
                                    "tables",
                                    Json::arr(
                                        s.tables
                                            .iter()
                                            .map(|t| {
                                                let mut fields =
                                                    vec![("table", Json::str(&t.table))];
                                                match &t.plan {
                                                    TablePlan::Query { sql } => {
                                                        fields.push((
                                                            "sql",
                                                            Json::arr(
                                                                sql.iter()
                                                                    .map(Json::str)
                                                                    .collect(),
                                                            ),
                                                        ));
                                                    }
                                                    TablePlan::Candidate { detail } => {
                                                        fields.push((
                                                            "candidate",
                                                            Json::str(detail),
                                                        ));
                                                    }
                                                    TablePlan::Pruned { reason } => {
                                                        fields.push((
                                                            "pruned",
                                                            Json::str(reason),
                                                        ));
                                                    }
                                                }
                                                Json::obj(fields)
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan: {}", self.plan)?;
        for s in &self.steps {
            if s.tables.is_empty() {
                continue;
            }
            write!(f, "\nstep {}: {}", s.index, s.description)?;
            for t in &s.tables {
                match &t.plan {
                    TablePlan::Query { sql } => {
                        for q in sql {
                            write!(f, "\n  {}: {q}", t.table)?;
                        }
                    }
                    TablePlan::Candidate { detail } => {
                        write!(f, "\n  {}: {detail}", t.table)?;
                    }
                    TablePlan::Pruned { reason } => {
                        write!(f, "\n  {}: pruned ({reason})", t.table)?;
                    }
                }
            }
        }
        Ok(())
    }
}

// ------------------------------------------------------------ histograms

/// Lock-free log2-bucketed latency histogram: bucket 0 holds exact zeros,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)` — 65 buckets cover the
/// full `u64` nanosecond range (bucket 64 tops out at `u64::MAX`).
/// Recording is two relaxed atomic adds; percentiles are estimated as the
/// upper bound of the bucket the rank falls in.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket for a value: 0 for 0, else `64 - leading_zeros` (1 for 1,
/// 2 for 2..=3, …, 64 for the top half of the u64 range).
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Largest value a bucket can hold (the percentile estimate).
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the
    /// bucket containing that rank; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// (p50, p90, p99).
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.percentile(0.50), self.percentile(0.90), self.percentile(0.99))
    }

    /// Cumulative `(upper_bound, count <= upper_bound)` pairs up to and
    /// including the highest non-empty bucket — the shape a Prometheus
    /// `le`-bucket exposition needs (the caller appends `+Inf`). Empty
    /// histograms yield no pairs.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let last = match counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut running = 0u64;
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            running += c;
            out.push((bucket_upper(i), running));
        }
        out
    }

    /// `{"count", "sum_nanos", "p50_nanos", "p90_nanos", "p99_nanos"}`.
    pub fn to_json(&self) -> Json {
        let (p50, p90, p99) = self.percentiles();
        Json::obj(vec![
            ("count", Json::u64(self.count())),
            ("sum_nanos", Json::u64(self.sum())),
            ("p50_nanos", Json::u64(p50)),
            ("p90_nanos", Json::u64(p90)),
            ("p99_nanos", Json::u64(p99)),
        ])
    }
}

/// Keyed histograms (per SQL template, per step kind) with a bounded key
/// set: once `cap` distinct keys exist, further keys aggregate under
/// `"<other>"` so an adversarial workload cannot grow the map unbounded.
pub struct HistogramSet {
    cap: usize,
    map: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl std::fmt::Debug for HistogramSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSet").field("cap", &self.cap).finish_non_exhaustive()
    }
}

impl Default for HistogramSet {
    fn default() -> HistogramSet {
        HistogramSet::new(DEFAULT_HISTOGRAM_KEYS)
    }
}

impl HistogramSet {
    pub fn new(cap: usize) -> HistogramSet {
        HistogramSet { cap: cap.max(1), map: RwLock::new(HashMap::new()) }
    }

    pub fn record(&self, key: &str, nanos: u64) {
        let hist = {
            let read = self.map.read();
            read.get(key).cloned()
        };
        let hist = match hist {
            Some(h) => h,
            None => {
                let mut write = self.map.write();
                let effective = if write.len() >= self.cap && !write.contains_key(key) {
                    "<other>"
                } else {
                    key
                };
                write.entry(effective.to_string()).or_default().clone()
            }
        };
        hist.record(nanos);
    }

    /// All keyed histograms, sorted by key for deterministic output.
    pub fn entries(&self) -> Vec<(String, Arc<Histogram>)> {
        let mut out: Vec<(String, Arc<Histogram>)> =
            self.map.read().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(self.entries().into_iter().map(|(k, h)| (k, h.to_json())).collect())
    }
}

// --------------------------------------------------------- slow-query log

/// One retained slow query: the script, its wall time, a monotonic
/// admission sequence, and the full per-query [`ProfileReport`].
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    pub seq: u64,
    pub gremlin: String,
    pub wall_nanos: u64,
    pub report: ProfileReport,
    /// The serving layer's correlation id, when the query arrived over
    /// HTTP — links this entry to the response header, error body, trace
    /// span root, and event log.
    pub request_id: Option<String>,
}

struct SlowLogInner {
    entries: Vec<SlowQueryEntry>,
    seq: u64,
}

/// Worst-N ring of completed queries over a wall-time threshold
/// (`DB2GRAPH_SLOW_QUERY_MS`). Each entry keeps its full profile report,
/// so the tail is diagnosable after the fact without re-running anything.
/// When full, a new slow query replaces the *fastest* retained entry —
/// the log converges on the worst N, not the most recent N.
pub struct SlowQueryLog {
    threshold_nanos: u64,
    capacity: usize,
    inner: Mutex<SlowLogInner>,
}

impl SlowQueryLog {
    pub fn new(threshold_nanos: u64, capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            threshold_nanos,
            capacity: capacity.max(1),
            inner: Mutex::new(SlowLogInner { entries: Vec::new(), seq: 0 }),
        }
    }

    pub fn threshold_nanos(&self) -> u64 {
        self.threshold_nanos
    }

    /// Offer a completed query; returns whether it crossed the threshold
    /// (and was therefore counted slow, even if a worse entry kept its
    /// ring slot).
    pub fn offer(&self, gremlin: &str, wall_nanos: u64, report: &ProfileReport) -> bool {
        self.offer_with_id(gremlin, wall_nanos, report, None)
    }

    /// [`SlowQueryLog::offer`] carrying the serving layer's request id so
    /// the retained entry stays correlatable with the HTTP response.
    pub fn offer_with_id(
        &self,
        gremlin: &str,
        wall_nanos: u64,
        report: &ProfileReport,
        request_id: Option<&str>,
    ) -> bool {
        if wall_nanos < self.threshold_nanos {
            return false;
        }
        let mut g = self.inner.lock();
        g.seq += 1;
        let entry = SlowQueryEntry {
            seq: g.seq,
            gremlin: gremlin.to_string(),
            wall_nanos,
            report: report.clone(),
            request_id: request_id.map(str::to_string),
        };
        if g.entries.len() < self.capacity {
            g.entries.push(entry);
        } else if let Some(min_idx) = (0..g.entries.len())
            .min_by_key(|&i| (g.entries[i].wall_nanos, std::cmp::Reverse(g.entries[i].seq)))
        {
            if g.entries[min_idx].wall_nanos < wall_nanos {
                g.entries[min_idx] = entry;
            }
        }
        true
    }

    /// Retained entries, slowest first (ties broken newest-first).
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        let mut out = self.inner.lock().entries.clone();
        out.sort_by(|a, b| {
            b.wall_nanos.cmp(&a.wall_nanos).then_with(|| b.seq.cmp(&a.seq))
        });
        out
    }

    pub fn to_json(&self) -> Json {
        Json::arr(
            self.entries()
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("seq", Json::u64(e.seq)),
                        ("gremlin", Json::str(&e.gremlin)),
                        ("wall_nanos", Json::u64(e.wall_nanos)),
                        (
                            "request_id",
                            match &e.request_id {
                                Some(id) => Json::str(id),
                                None => Json::Null,
                            },
                        ),
                        ("profile", e.report.to_json()),
                    ])
                })
                .collect(),
        )
    }
}

// --------------------------------------------------------------- metrics

/// Process-lifetime counters for one graph, shared by every query. All
/// atomic; safe to read concurrently with query execution.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    traversals: AtomicU64,
    sql_statements: AtomicU64,
    sql_wall_nanos: AtomicU64,
    rows_returned: AtomicU64,
    template_hits: AtomicU64,
    template_misses: AtomicU64,
    template_evictions: AtomicU64,
    template_invalidations: AtomicU64,
    pattern_evictions: AtomicU64,
    slow_queries: AtomicU64,
    vacuum_runs: AtomicU64,
    vacuumed_versions: AtomicU64,
    adj_cache_hits: AtomicU64,
    adj_cache_misses: AtomicU64,
    adj_cache_evictions: AtomicU64,
    adj_cache_invalidations: AtomicU64,
    query_latency: Histogram,
    sql_latency: Histogram,
    sql_templates: HistogramSet,
    step_kinds: HistogramSet,
}

impl MetricsRegistry {
    pub fn record_traversal(&self) {
        self.traversals.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_template(&self, hit: bool) {
        if hit {
            self.template_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.template_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_template_eviction(&self) {
        self.template_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A cached template was re-prepared because DDL moved the catalog
    /// generation past the one it was compiled under.
    pub fn record_template_invalidation(&self) {
        self.template_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_pattern_eviction(&self) {
        self.pattern_evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_statement(&self, rows: u64, nanos: u64) {
        self.sql_statements.fetch_add(1, Ordering::Relaxed);
        self.rows_returned.fetch_add(rows, Ordering::Relaxed);
        self.sql_wall_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// End-to-end wall time of one complete traversal.
    pub fn record_query_latency(&self, nanos: u64) {
        self.query_latency.record(nanos);
    }

    /// Wall time of one SQL statement, both in the aggregate histogram and
    /// under its template's keyed histogram.
    pub fn record_sql_latency(&self, template: &str, nanos: u64) {
        self.sql_latency.record(nanos);
        self.sql_templates.record(template, nanos);
    }

    /// Wall time of one executor step, keyed by step kind (`has`, `outE`, …).
    pub fn record_step_latency(&self, kind: &str, nanos: u64) {
        self.step_kinds.record(kind, nanos);
    }

    pub fn record_slow_query(&self) {
        self.slow_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` frontier sources served straight from the adjacency cache (no
    /// SQL generated).
    pub fn record_adj_cache_hits(&self, n: u64) {
        self.adj_cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` frontier sources that missed the adjacency cache and fell back
    /// to the batched-SQL path.
    pub fn record_adj_cache_misses(&self, n: u64) {
        self.adj_cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` cache segments dropped to stay within the byte budget.
    pub fn record_adj_cache_evictions(&self, n: u64) {
        self.adj_cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` cache segments dropped because a commit or DDL statement made
    /// them stale (MVCC epoch / schema-generation invalidation).
    pub fn record_adj_cache_invalidations(&self, n: u64) {
        self.adj_cache_invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// One `Database::vacuum` pass reclaimed `versions` dead row versions
    /// (recorded by the vacuum daemon so MVCC garbage collection shows up
    /// in `/metrics`).
    pub fn record_vacuum(&self, versions: u64) {
        self.vacuum_runs.fetch_add(1, Ordering::Relaxed);
        self.vacuumed_versions.fetch_add(versions, Ordering::Relaxed);
    }

    pub fn query_latency(&self) -> &Histogram {
        &self.query_latency
    }

    pub fn sql_latency(&self) -> &Histogram {
        &self.sql_latency
    }

    pub fn sql_templates(&self) -> &HistogramSet {
        &self.sql_templates
    }

    pub fn step_kinds(&self) -> &HistogramSet {
        &self.step_kinds
    }

    /// Full latency breakdown: aggregate query/SQL histograms plus the
    /// per-template and per-step-kind keyed histograms.
    pub fn histogram_report(&self) -> Json {
        Json::obj(vec![
            ("query_latency", self.query_latency.to_json()),
            ("sql_latency", self.sql_latency.to_json()),
            ("sql_templates", self.sql_templates.to_json()),
            ("step_kinds", self.step_kinds.to_json()),
        ])
    }

    /// Snapshot combined with the overlay's table-elimination counters.
    pub fn snapshot_with(&self, overlay: OverlayStatsSnapshot) -> MetricsSnapshot {
        let (query_p50, query_p90, query_p99) = self.query_latency.percentiles();
        let (sql_p50, sql_p90, sql_p99) = self.sql_latency.percentiles();
        MetricsSnapshot {
            traversals: self.traversals.load(Ordering::Relaxed),
            sql_statements: self.sql_statements.load(Ordering::Relaxed),
            sql_wall_nanos: self.sql_wall_nanos.load(Ordering::Relaxed),
            rows_returned: self.rows_returned.load(Ordering::Relaxed),
            template_hits: self.template_hits.load(Ordering::Relaxed),
            template_misses: self.template_misses.load(Ordering::Relaxed),
            template_evictions: self.template_evictions.load(Ordering::Relaxed),
            template_invalidations: self.template_invalidations.load(Ordering::Relaxed),
            pattern_evictions: self.pattern_evictions.load(Ordering::Relaxed),
            slow_queries: self.slow_queries.load(Ordering::Relaxed),
            vacuum_runs: self.vacuum_runs.load(Ordering::Relaxed),
            vacuumed_versions: self.vacuumed_versions.load(Ordering::Relaxed),
            trace_spans: 0,
            dropped_spans: 0,
            commit_epoch: 0,
            snapshot_horizon: 0,
            active_snapshots: 0,
            wal_records: 0,
            wal_bytes: 0,
            checkpoints: 0,
            recovery_replayed_epochs: 0,
            query_p50_nanos: query_p50,
            query_p90_nanos: query_p90,
            query_p99_nanos: query_p99,
            sql_p50_nanos: sql_p50,
            sql_p90_nanos: sql_p90,
            sql_p99_nanos: sql_p99,
            tables_considered: overlay.tables_considered,
            tables_pruned: overlay.tables_pruned,
            vertices_from_edges: overlay.vertices_from_edges,
            adj_cache_hits: self.adj_cache_hits.load(Ordering::Relaxed),
            adj_cache_misses: self.adj_cache_misses.load(Ordering::Relaxed),
            adj_cache_evictions: self.adj_cache_evictions.load(Ordering::Relaxed),
            adj_cache_invalidations: self.adj_cache_invalidations.load(Ordering::Relaxed),
            adj_cache_bytes: 0,
        }
    }
}

/// Point-in-time metrics for one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub traversals: u64,
    pub sql_statements: u64,
    pub sql_wall_nanos: u64,
    pub rows_returned: u64,
    pub template_hits: u64,
    pub template_misses: u64,
    /// Prepared templates dropped because the cache hit its size cap.
    pub template_evictions: u64,
    /// Cached templates re-prepared because DDL changed the catalog.
    pub template_invalidations: u64,
    /// Workload patterns dropped because the tracker hit its size cap.
    pub pattern_evictions: u64,
    /// Completed queries whose wall time crossed the slow-query threshold.
    pub slow_queries: u64,
    /// `Database::vacuum` passes run by the vacuum daemon (or manually
    /// recorded via [`MetricsRegistry::record_vacuum`]).
    pub vacuum_runs: u64,
    /// Dead row versions reclaimed across those passes.
    pub vacuumed_versions: u64,
    /// Spans retained in the trace ring buffer (0 when tracing is off).
    pub trace_spans: u64,
    /// Spans evicted because the trace ring buffer wrapped.
    pub dropped_spans: u64,
    /// Gauge: the database's highest published commit epoch (filled by
    /// [`Db2Graph::metrics`]; 0 from a bare registry snapshot).
    pub commit_epoch: u64,
    /// Gauge: the oldest epoch a live snapshot pins — the vacuum horizon.
    /// A horizon far behind `commit_epoch` means a snapshot is holding
    /// garbage alive.
    pub snapshot_horizon: u64,
    /// Gauge: currently registered snapshots.
    pub active_snapshots: u64,
    /// Gauge: WAL records appended since the database opened (filled by
    /// [`Db2Graph::metrics`]; 0 for an in-memory database).
    pub wal_records: u64,
    /// Gauge: WAL bytes appended since the database opened.
    pub wal_bytes: u64,
    /// Gauge: checkpoints completed since the database opened.
    pub checkpoints: u64,
    /// Gauge: commit epochs the last `Database::open` replayed from the
    /// WAL during crash recovery.
    pub recovery_replayed_epochs: u64,
    /// End-to-end traversal latency percentiles (log2-bucket upper bounds).
    pub query_p50_nanos: u64,
    pub query_p90_nanos: u64,
    pub query_p99_nanos: u64,
    /// Per-SQL-statement latency percentiles (log2-bucket upper bounds).
    pub sql_p50_nanos: u64,
    pub sql_p90_nanos: u64,
    pub sql_p99_nanos: u64,
    pub tables_considered: u64,
    pub tables_pruned: u64,
    pub vertices_from_edges: u64,
    /// Frontier sources expanded straight from the adjacency cache.
    pub adj_cache_hits: u64,
    /// Frontier sources that fell back to the batched-SQL path.
    pub adj_cache_misses: u64,
    /// Cache segments dropped to stay within the byte budget.
    pub adj_cache_evictions: u64,
    /// Cache segments dropped as stale (commit epoch or schema change).
    pub adj_cache_invalidations: u64,
    /// Gauge: resident adjacency-cache bytes (filled by
    /// [`Db2Graph::metrics`]; 0 from a bare registry snapshot).
    pub adj_cache_bytes: u64,
}

impl MetricsSnapshot {
    /// Counter deltas since `earlier`. Percentile fields are not deltas —
    /// they carry the latest (self) values, since histogram quantiles do
    /// not subtract meaningfully.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            traversals: self.traversals - earlier.traversals,
            sql_statements: self.sql_statements - earlier.sql_statements,
            sql_wall_nanos: self.sql_wall_nanos - earlier.sql_wall_nanos,
            rows_returned: self.rows_returned - earlier.rows_returned,
            template_hits: self.template_hits - earlier.template_hits,
            template_misses: self.template_misses - earlier.template_misses,
            template_evictions: self.template_evictions - earlier.template_evictions,
            template_invalidations: self.template_invalidations - earlier.template_invalidations,
            pattern_evictions: self.pattern_evictions - earlier.pattern_evictions,
            slow_queries: self.slow_queries - earlier.slow_queries,
            vacuum_runs: self.vacuum_runs - earlier.vacuum_runs,
            vacuumed_versions: self.vacuumed_versions - earlier.vacuumed_versions,
            trace_spans: self.trace_spans,
            dropped_spans: self.dropped_spans,
            // Gauges carry the latest values, like the percentiles.
            commit_epoch: self.commit_epoch,
            snapshot_horizon: self.snapshot_horizon,
            active_snapshots: self.active_snapshots,
            wal_records: self.wal_records,
            wal_bytes: self.wal_bytes,
            checkpoints: self.checkpoints,
            recovery_replayed_epochs: self.recovery_replayed_epochs,
            query_p50_nanos: self.query_p50_nanos,
            query_p90_nanos: self.query_p90_nanos,
            query_p99_nanos: self.query_p99_nanos,
            sql_p50_nanos: self.sql_p50_nanos,
            sql_p90_nanos: self.sql_p90_nanos,
            sql_p99_nanos: self.sql_p99_nanos,
            tables_considered: self.tables_considered - earlier.tables_considered,
            tables_pruned: self.tables_pruned - earlier.tables_pruned,
            vertices_from_edges: self.vertices_from_edges - earlier.vertices_from_edges,
            adj_cache_hits: self.adj_cache_hits - earlier.adj_cache_hits,
            adj_cache_misses: self.adj_cache_misses - earlier.adj_cache_misses,
            adj_cache_evictions: self.adj_cache_evictions - earlier.adj_cache_evictions,
            adj_cache_invalidations: self.adj_cache_invalidations
                - earlier.adj_cache_invalidations,
            adj_cache_bytes: self.adj_cache_bytes,
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("traversals", Json::u64(self.traversals)),
            ("sql_statements", Json::u64(self.sql_statements)),
            ("sql_wall_nanos", Json::u64(self.sql_wall_nanos)),
            ("rows_returned", Json::u64(self.rows_returned)),
            ("template_hits", Json::u64(self.template_hits)),
            ("template_misses", Json::u64(self.template_misses)),
            ("template_evictions", Json::u64(self.template_evictions)),
            ("template_invalidations", Json::u64(self.template_invalidations)),
            ("pattern_evictions", Json::u64(self.pattern_evictions)),
            ("slow_queries", Json::u64(self.slow_queries)),
            ("vacuum_runs", Json::u64(self.vacuum_runs)),
            ("vacuumed_versions", Json::u64(self.vacuumed_versions)),
            ("trace_spans", Json::u64(self.trace_spans)),
            ("dropped_spans", Json::u64(self.dropped_spans)),
            ("commit_epoch", Json::u64(self.commit_epoch)),
            ("snapshot_horizon", Json::u64(self.snapshot_horizon)),
            ("active_snapshots", Json::u64(self.active_snapshots)),
            ("wal_records", Json::u64(self.wal_records)),
            ("wal_bytes", Json::u64(self.wal_bytes)),
            ("checkpoints", Json::u64(self.checkpoints)),
            ("recovery_replayed_epochs", Json::u64(self.recovery_replayed_epochs)),
            ("query_p50_nanos", Json::u64(self.query_p50_nanos)),
            ("query_p90_nanos", Json::u64(self.query_p90_nanos)),
            ("query_p99_nanos", Json::u64(self.query_p99_nanos)),
            ("sql_p50_nanos", Json::u64(self.sql_p50_nanos)),
            ("sql_p90_nanos", Json::u64(self.sql_p90_nanos)),
            ("sql_p99_nanos", Json::u64(self.sql_p99_nanos)),
            ("tables_considered", Json::u64(self.tables_considered)),
            ("tables_pruned", Json::u64(self.tables_pruned)),
            ("vertices_from_edges", Json::u64(self.vertices_from_edges)),
            ("adj_cache_hits", Json::u64(self.adj_cache_hits)),
            ("adj_cache_misses", Json::u64(self.adj_cache_misses)),
            ("adj_cache_evictions", Json::u64(self.adj_cache_evictions)),
            ("adj_cache_invalidations", Json::u64(self.adj_cache_invalidations)),
            ("adj_cache_bytes", Json::u64(self.adj_cache_bytes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        p.record_strategy("s", "a", "b");
        p.record_step(0, "x", 1, 2, 3);
        p.record_table("t", TableAction::Queried);
        p.record_statement("SELECT 1", false, 1, 10);
        let r = p.report();
        assert!(r.strategies.is_empty());
        assert!(r.steps.is_empty());
        assert!(r.tables.is_empty());
        assert!(r.statements.is_empty());
        assert!(p.take_report().is_none());
    }

    #[test]
    fn enabled_profiler_accumulates_and_counts() {
        let p = Profiler::enabled();
        p.record_strategy("PredicatePushdown", "a", "b");
        p.record_table("Patient", TableAction::Queried);
        p.record_table("Disease", TableAction::Pruned("id prefix mismatch".into()));
        p.record_table("Visit", TableAction::Pinned);
        p.record_statement("SELECT * FROM Patient", false, 3, 1_500);
        p.record_statement("SELECT * FROM Patient", true, 3, 900);
        let r = p.report();
        assert_eq!(r.tables_considered(), 3);
        assert_eq!(r.tables_queried(), 2);
        assert_eq!(r.tables_pruned(), 1);
        assert_eq!(r.template_hits(), 1);
        assert_eq!(r.template_misses(), 1);
        assert_eq!(r.total_rows(), 6);
        assert_eq!(r.total_sql_nanos(), 2_400);
        let text = p.take_report().unwrap();
        assert!(text.contains("PredicatePushdown"), "{text}");
        assert!(text.contains("pruned (id prefix mismatch)"), "{text}");
        // JSON export round-trips through the parser.
        let json = crate::json::Json::parse(&r.to_json().to_pretty()).unwrap();
        assert_eq!(
            json.get("totals").and_then(|t| t.get("tables_pruned")).and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn explain_report_accessors() {
        let r = ExplainReport {
            plan: "Graph(V|ids)".into(),
            steps: vec![StepExplain {
                index: 0,
                description: "Graph(V|ids)".into(),
                tables: vec![
                    TableExplain {
                        table: "Patient".into(),
                        plan: TablePlan::Query { sql: vec!["SELECT x FROM Patient".into()] },
                    },
                    TableExplain {
                        table: "Disease".into(),
                        plan: TablePlan::Pruned { reason: "id prefix mismatch".into() },
                    },
                ],
            }],
        };
        assert_eq!(r.tables_considered(), 2);
        assert_eq!(r.tables_queried(), 1);
        assert_eq!(r.tables_pruned(), 1);
        assert_eq!(r.sql_statements(), vec!["SELECT x FROM Patient"]);
        let text = r.to_string();
        assert!(text.starts_with("plan: Graph(V|ids)"), "{text}");
        assert!(text.contains("SELECT x FROM Patient"), "{text}");
        assert!(text.contains("pruned (id prefix mismatch)"), "{text}");
    }

    #[test]
    fn registry_snapshot_and_diff() {
        let m = MetricsRegistry::default();
        m.record_traversal();
        m.record_template(true);
        m.record_template(false);
        m.record_statement(5, 1000);
        let a = m.snapshot_with(OverlayStatsSnapshot::default());
        assert_eq!(a.traversals, 1);
        assert_eq!(a.sql_statements, 1);
        assert_eq!(a.rows_returned, 5);
        assert_eq!(a.template_hits, 1);
        assert_eq!(a.template_misses, 1);
        m.record_statement(2, 500);
        let b = m.snapshot_with(OverlayStatsSnapshot::default());
        let d = b.since(&a);
        assert_eq!(d.sql_statements, 1);
        assert_eq!(d.rows_returned, 2);
        assert_eq!(d.sql_wall_nanos, 500);
        let json = b.to_json().to_compact();
        assert!(json.contains("\"template_hits\":1"), "{json}");
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(fmt_nanos(12), "12ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Values at the extremes land in the right buckets: 0 has its own
        // exact bucket, 1 is the smallest non-zero bucket, u64::MAX caps
        // the top bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);

        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.percentile(0.5), 0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.33), 0);
        assert_eq!(h.percentile(0.5), 1);
        assert_eq!(h.percentile(0.99), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_estimate_bucket_upper_bound() {
        let h = Histogram::default();
        assert_eq!(h.percentiles(), (0, 0, 0)); // empty
        for _ in 0..90 {
            h.record(100); // bucket 7 → upper 127
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 20 → upper 2^20 - 1
        }
        let (p50, p90, p99) = h.percentiles();
        assert_eq!(p50, 127);
        assert_eq!(p90, 127);
        assert_eq!(p99, (1u64 << 20) - 1);
        assert_eq!(h.sum(), 90 * 100 + 10 * 1_000_000);
    }

    #[test]
    fn histogram_set_caps_keys_into_other() {
        let set = HistogramSet::new(2);
        set.record("a", 1);
        set.record("b", 2);
        set.record("c", 3); // over cap → "<other>"
        set.record("a", 4); // existing key still records
        let entries = set.entries();
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["<other>", "a", "b"]);
        let a = &entries.iter().find(|(k, _)| k == "a").unwrap().1;
        assert_eq!(a.count(), 2);
        let parsed = Json::parse(&set.to_json().to_compact()).unwrap();
        assert_eq!(
            parsed.get("<other>").and_then(|h| h.get("count")).and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn slow_query_log_keeps_worst_n() {
        let log = SlowQueryLog::new(100, 2);
        let report = ProfileReport::default();
        assert!(!log.offer("fast", 99, &report)); // under threshold
        assert!(log.offer("slow-a", 150, &report));
        assert!(log.offer("slow-b", 300, &report));
        assert!(log.offer("slow-c", 200, &report)); // evicts slow-a (fastest)
        assert!(log.offer("slow-d", 120, &report)); // counted slow, but not retained
        let entries = log.entries();
        let names: Vec<&str> = entries.iter().map(|e| e.gremlin.as_str()).collect();
        assert_eq!(names, vec!["slow-b", "slow-c"]);
        assert_eq!(entries[0].wall_nanos, 300);
        let json = log.to_json().to_compact();
        assert!(json.contains("\"gremlin\":\"slow-b\""), "{json}");
        assert!(!json.contains("slow-a"), "{json}");
    }

    #[test]
    fn registry_histograms_feed_snapshot_percentiles() {
        let m = MetricsRegistry::default();
        for _ in 0..10 {
            m.record_query_latency(1_000); // bucket 10 → upper 1023
        }
        m.record_sql_latency("SELECT 1", 100);
        m.record_sql_latency("SELECT 2", 200);
        m.record_step_latency("outE", 50);
        m.record_slow_query();
        let snap = m.snapshot_with(OverlayStatsSnapshot::default());
        assert_eq!(snap.query_p50_nanos, 1023);
        assert_eq!(snap.query_p99_nanos, 1023);
        assert_eq!(snap.sql_p50_nanos, 127);
        assert_eq!(snap.sql_p99_nanos, 255);
        assert_eq!(snap.slow_queries, 1);
        let report = m.histogram_report();
        let parsed = Json::parse(&report.to_compact()).unwrap();
        assert_eq!(
            parsed
                .get("sql_templates")
                .and_then(|t| t.get("SELECT 1"))
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("step_kinds")
                .and_then(|t| t.get("outE"))
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn profile_json_reports_eviction_counters() {
        // The bench snapshot JSON and the per-query profile JSON must agree
        // on eviction field names.
        let p = Profiler::enabled();
        p.record_template_eviction();
        p.record_template_invalidation();
        p.record_pattern_eviction();
        p.record_pattern_eviction();
        let r = p.report();
        assert_eq!(r.template_evictions, 1);
        assert_eq!(r.template_invalidations, 1);
        assert_eq!(r.pattern_evictions, 2);
        let json = Json::parse(&r.to_json().to_compact()).unwrap();
        let totals = json.get("totals").unwrap();
        assert_eq!(totals.get("template_evictions").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(totals.get("template_invalidations").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(totals.get("pattern_evictions").and_then(|v| v.as_u64()), Some(2));
    }

    #[test]
    fn step_kind_extracts_prefix() {
        assert_eq!(step_kind("outE(Knows)"), "outE");
        assert_eq!(step_kind("has(name eq x)"), "has");
        assert_eq!(step_kind("count"), "count");
    }
}
