//! Query observability: per-query profiling, plan explanation, and
//! process-wide metrics.
//!
//! Three layers, each answering a different question:
//!
//! * [`Profiler`] — *what did this query do?* A per-query collector threaded
//!   through the whole pipeline: the compiler reports which strategies
//!   rewrote the plan, the executor reports per-step wall time and frontier
//!   sizes, the graph-structure layer reports every table-elimination
//!   decision, and the SQL dialect reports each statement it executed with
//!   its template-cache outcome, row count and wall time. A disabled
//!   profiler ([`Profiler::disabled`]) is a `None` — every record call is a
//!   branch on an `Option` and nothing else, so the unprofiled hot path
//!   pays no locks, no allocation, no timestamps.
//! * [`ExplainReport`] — *what would this query do?* A data-independent
//!   dry-run: the optimized plan plus, per GSA step and per table, either
//!   the SQL that would be generated or the reason the table is eliminated.
//!   Produced without touching any data.
//! * [`MetricsRegistry`] — *what has this graph done so far?* Cheap atomic
//!   counters aggregated across all queries, snapshot at any time (the
//!   bench harness exports one per run).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gremlin::observe::TraversalObserver;
use parking_lot::Mutex;

use crate::json::Json;
use crate::stats::OverlayStatsSnapshot;

// ------------------------------------------------------------- profiling

/// One compile-time strategy application that changed the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyRewrite {
    pub strategy: String,
    pub before: String,
    pub after: String,
}

/// Execution of one top-level plan step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepProfile {
    pub index: usize,
    pub description: String,
    /// Traverser frontier size entering the step.
    pub in_count: usize,
    /// Traverser frontier size leaving the step.
    pub out_count: usize,
    pub nanos: u64,
}

/// What the graph-structure layer decided about one overlay table while
/// evaluating a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDecision {
    pub table: String,
    pub action: TableAction,
}

/// The decision taken for a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableAction {
    /// The table was queried with SQL.
    Queried,
    /// The table was selected directly without considering the others
    /// (src/dst vertex table link or prefixed-id pinning).
    Pinned,
    /// The table was eliminated before any SQL, for the given reason.
    Pruned(String),
}

/// One SQL statement executed by the dialect on behalf of the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlStatementProfile {
    pub sql: String,
    /// Whether the prepared-template cache already held this statement.
    pub template_hit: bool,
    pub rows: usize,
    pub nanos: u64,
}

#[derive(Debug, Clone, Default)]
struct ProfileData {
    strategies: Vec<StrategyRewrite>,
    steps: Vec<StepProfile>,
    tables: Vec<TableDecision>,
    statements: Vec<SqlStatementProfile>,
}

/// Per-query event collector. Cheap to clone (shared interior); a disabled
/// profiler records nothing and costs one pointer-null check per event.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Mutex<ProfileData>>>,
}

impl Profiler {
    /// A profiler that drops every event — the default for normal queries.
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    /// A collecting profiler.
    pub fn enabled() -> Profiler {
        Profiler { inner: Some(Arc::new(Mutex::new(ProfileData::default()))) }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh profiler with the same enablement: worker threads record
    /// into their own fork, and the coordinator [`Self::absorb`]s the forks
    /// in job order — so a parallel run produces the *same* event sequence
    /// as a sequential one, not an interleaving decided by the scheduler.
    /// Forking a disabled profiler yields a disabled (free) one.
    pub fn fork(&self) -> Profiler {
        if self.is_enabled() {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        }
    }

    /// Append every event recorded in `other` (draining it). No-op when
    /// either side is disabled.
    pub fn absorb(&self, other: &Profiler) {
        let (Some(inner), Some(theirs)) = (&self.inner, &other.inner) else { return };
        let mut data = std::mem::take(&mut *theirs.lock());
        let mut dst = inner.lock();
        dst.strategies.append(&mut data.strategies);
        dst.steps.append(&mut data.steps);
        dst.tables.append(&mut data.tables);
        dst.statements.append(&mut data.statements);
    }

    pub fn record_strategy(&self, strategy: &str, before: &str, after: &str) {
        let Some(inner) = &self.inner else { return };
        inner.lock().strategies.push(StrategyRewrite {
            strategy: strategy.to_string(),
            before: before.to_string(),
            after: after.to_string(),
        });
    }

    pub fn record_step(
        &self,
        index: usize,
        description: &str,
        in_count: usize,
        out_count: usize,
        nanos: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().steps.push(StepProfile {
            index,
            description: description.to_string(),
            in_count,
            out_count,
            nanos,
        });
    }

    pub fn record_table(&self, table: &str, action: TableAction) {
        let Some(inner) = &self.inner else { return };
        inner.lock().tables.push(TableDecision { table: table.to_string(), action });
    }

    pub fn record_statement(&self, sql: &str, template_hit: bool, rows: usize, nanos: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().statements.push(SqlStatementProfile {
            sql: sql.to_string(),
            template_hit,
            rows,
            nanos,
        });
    }

    /// The report accumulated so far (empty when disabled).
    pub fn report(&self) -> ProfileReport {
        let data = match &self.inner {
            Some(inner) => inner.lock().clone(),
            None => ProfileData::default(),
        };
        ProfileReport {
            strategies: data.strategies,
            steps: data.steps,
            tables: data.tables,
            statements: data.statements,
        }
    }
}

impl TraversalObserver for Profiler {
    fn strategy_applied(&self, name: &str, before: &str, after: &str) {
        self.record_strategy(name, before, after);
    }

    fn step_finished(
        &self,
        index: usize,
        description: &str,
        in_count: usize,
        out_count: usize,
        nanos: u64,
    ) {
        self.record_step(index, description, in_count, out_count, nanos);
    }

    fn take_report(&self) -> Option<String> {
        if self.is_enabled() {
            Some(self.report().to_string())
        } else {
            None
        }
    }
}

/// Structured result of profiling one query.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    pub strategies: Vec<StrategyRewrite>,
    pub steps: Vec<StepProfile>,
    pub tables: Vec<TableDecision>,
    pub statements: Vec<SqlStatementProfile>,
}

impl ProfileReport {
    /// Tables the graph-structure layer looked at (queried + pinned +
    /// pruned decisions).
    pub fn tables_considered(&self) -> usize {
        self.tables.len()
    }

    /// Tables that actually received SQL (queried or pinned).
    pub fn tables_queried(&self) -> usize {
        self.tables
            .iter()
            .filter(|d| matches!(d.action, TableAction::Queried | TableAction::Pinned))
            .count()
    }

    pub fn tables_pruned(&self) -> usize {
        self.tables.iter().filter(|d| matches!(d.action, TableAction::Pruned(_))).count()
    }

    pub fn template_hits(&self) -> usize {
        self.statements.iter().filter(|s| s.template_hit).count()
    }

    pub fn template_misses(&self) -> usize {
        self.statements.iter().filter(|s| !s.template_hit).count()
    }

    pub fn total_sql_nanos(&self) -> u64 {
        self.statements.iter().map(|s| s.nanos).sum()
    }

    pub fn total_rows(&self) -> usize {
        self.statements.iter().map(|s| s.rows).sum()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "strategies",
                Json::arr(
                    self.strategies
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("strategy", Json::str(&s.strategy)),
                                ("before", Json::str(&s.before)),
                                ("after", Json::str(&s.after)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "steps",
                Json::arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("index", Json::u64(s.index as u64)),
                                ("step", Json::str(&s.description)),
                                ("in", Json::u64(s.in_count as u64)),
                                ("out", Json::u64(s.out_count as u64)),
                                ("nanos", Json::u64(s.nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "tables",
                Json::arr(
                    self.tables
                        .iter()
                        .map(|d| {
                            let (action, reason) = match &d.action {
                                TableAction::Queried => ("queried", None),
                                TableAction::Pinned => ("pinned", None),
                                TableAction::Pruned(r) => ("pruned", Some(r.clone())),
                            };
                            let mut fields = vec![
                                ("table", Json::str(&d.table)),
                                ("action", Json::str(action)),
                            ];
                            if let Some(r) = reason {
                                fields.push(("reason", Json::str(r)));
                            }
                            Json::obj(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "sql",
                Json::arr(
                    self.statements
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("sql", Json::str(&s.sql)),
                                ("template_hit", Json::Bool(s.template_hit)),
                                ("rows", Json::u64(s.rows as u64)),
                                ("nanos", Json::u64(s.nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "totals",
                Json::obj(vec![
                    ("tables_considered", Json::u64(self.tables_considered() as u64)),
                    ("tables_queried", Json::u64(self.tables_queried() as u64)),
                    ("tables_pruned", Json::u64(self.tables_pruned() as u64)),
                    ("template_hits", Json::u64(self.template_hits() as u64)),
                    ("template_misses", Json::u64(self.template_misses() as u64)),
                    ("sql_rows", Json::u64(self.total_rows() as u64)),
                    ("sql_nanos", Json::u64(self.total_sql_nanos())),
                ]),
            ),
        ])
    }
}

/// Pretty nanoseconds for report text.
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "profile")?;
        if !self.strategies.is_empty() {
            writeln!(f, "  strategies:")?;
            for s in &self.strategies {
                writeln!(f, "    {}: {} => {}", s.strategy, s.before, s.after)?;
            }
        }
        if !self.steps.is_empty() {
            writeln!(f, "  steps:")?;
            for s in &self.steps {
                writeln!(
                    f,
                    "    [{}] {}  in={} out={}  {}",
                    s.index,
                    s.description,
                    s.in_count,
                    s.out_count,
                    fmt_nanos(s.nanos)
                )?;
            }
        }
        writeln!(
            f,
            "  tables: considered={} queried={} pruned={}",
            self.tables_considered(),
            self.tables_queried(),
            self.tables_pruned()
        )?;
        for d in &self.tables {
            match &d.action {
                TableAction::Queried => writeln!(f, "    {}: queried", d.table)?,
                TableAction::Pinned => writeln!(f, "    {}: pinned", d.table)?,
                TableAction::Pruned(r) => writeln!(f, "    {}: pruned ({r})", d.table)?,
            }
        }
        write!(
            f,
            "  sql: statements={} template_hits={} misses={} rows={} total={}",
            self.statements.len(),
            self.template_hits(),
            self.template_misses(),
            self.total_rows(),
            fmt_nanos(self.total_sql_nanos())
        )?;
        for s in &self.statements {
            write!(
                f,
                "\n    [{}, {} rows, {}] {}",
                fmt_nanos(s.nanos),
                s.rows,
                if s.template_hit { "hit" } else { "miss" },
                s.sql
            )?;
        }
        Ok(())
    }
}

// --------------------------------------------------------------- explain

/// How one table would be handled by one GSA step — decided without
/// touching data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TablePlan {
    /// The SQL statement(s) this step would issue against the table.
    Query { sql: Vec<String> },
    /// The table would be queried per frontier batch; the exact statement
    /// depends on runtime ids (adjacency steps).
    Candidate { detail: String },
    /// The table is eliminated, with the reason.
    Pruned { reason: String },
}

/// A table's explain entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableExplain {
    pub table: String,
    pub plan: TablePlan,
}

/// Explain detail for one plan step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepExplain {
    pub index: usize,
    pub description: String,
    pub tables: Vec<TableExplain>,
}

/// The full result of `explain()`: the rewritten plan and the SQL it would
/// generate, produced without executing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainReport {
    /// The optimized plan rendering (after all strategies).
    pub plan: String,
    pub steps: Vec<StepExplain>,
}

impl ExplainReport {
    pub fn tables_considered(&self) -> usize {
        self.steps.iter().map(|s| s.tables.len()).sum()
    }

    pub fn tables_queried(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.tables)
            .filter(|t| !matches!(t.plan, TablePlan::Pruned { .. }))
            .count()
    }

    pub fn tables_pruned(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.tables)
            .filter(|t| matches!(t.plan, TablePlan::Pruned { .. }))
            .count()
    }

    /// Every SQL statement the plan would issue, in step order.
    pub fn sql_statements(&self) -> Vec<&str> {
        self.steps
            .iter()
            .flat_map(|s| &s.tables)
            .filter_map(|t| match &t.plan {
                TablePlan::Query { sql } => Some(sql.iter().map(String::as_str)),
                _ => None,
            })
            .flatten()
            .collect()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("plan", Json::str(&self.plan)),
            (
                "steps",
                Json::arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("index", Json::u64(s.index as u64)),
                                ("step", Json::str(&s.description)),
                                (
                                    "tables",
                                    Json::arr(
                                        s.tables
                                            .iter()
                                            .map(|t| {
                                                let mut fields =
                                                    vec![("table", Json::str(&t.table))];
                                                match &t.plan {
                                                    TablePlan::Query { sql } => {
                                                        fields.push((
                                                            "sql",
                                                            Json::arr(
                                                                sql.iter()
                                                                    .map(Json::str)
                                                                    .collect(),
                                                            ),
                                                        ));
                                                    }
                                                    TablePlan::Candidate { detail } => {
                                                        fields.push((
                                                            "candidate",
                                                            Json::str(detail),
                                                        ));
                                                    }
                                                    TablePlan::Pruned { reason } => {
                                                        fields.push((
                                                            "pruned",
                                                            Json::str(reason),
                                                        ));
                                                    }
                                                }
                                                Json::obj(fields)
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan: {}", self.plan)?;
        for s in &self.steps {
            if s.tables.is_empty() {
                continue;
            }
            write!(f, "\nstep {}: {}", s.index, s.description)?;
            for t in &s.tables {
                match &t.plan {
                    TablePlan::Query { sql } => {
                        for q in sql {
                            write!(f, "\n  {}: {q}", t.table)?;
                        }
                    }
                    TablePlan::Candidate { detail } => {
                        write!(f, "\n  {}: {detail}", t.table)?;
                    }
                    TablePlan::Pruned { reason } => {
                        write!(f, "\n  {}: pruned ({reason})", t.table)?;
                    }
                }
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------- metrics

/// Process-lifetime counters for one graph, shared by every query. All
/// atomic; safe to read concurrently with query execution.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    traversals: AtomicU64,
    sql_statements: AtomicU64,
    sql_wall_nanos: AtomicU64,
    rows_returned: AtomicU64,
    template_hits: AtomicU64,
    template_misses: AtomicU64,
    template_evictions: AtomicU64,
    pattern_evictions: AtomicU64,
}

impl MetricsRegistry {
    pub fn record_traversal(&self) {
        self.traversals.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_template(&self, hit: bool) {
        if hit {
            self.template_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.template_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_template_eviction(&self) {
        self.template_evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_pattern_eviction(&self) {
        self.pattern_evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_statement(&self, rows: u64, nanos: u64) {
        self.sql_statements.fetch_add(1, Ordering::Relaxed);
        self.rows_returned.fetch_add(rows, Ordering::Relaxed);
        self.sql_wall_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Snapshot combined with the overlay's table-elimination counters.
    pub fn snapshot_with(&self, overlay: OverlayStatsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            traversals: self.traversals.load(Ordering::Relaxed),
            sql_statements: self.sql_statements.load(Ordering::Relaxed),
            sql_wall_nanos: self.sql_wall_nanos.load(Ordering::Relaxed),
            rows_returned: self.rows_returned.load(Ordering::Relaxed),
            template_hits: self.template_hits.load(Ordering::Relaxed),
            template_misses: self.template_misses.load(Ordering::Relaxed),
            template_evictions: self.template_evictions.load(Ordering::Relaxed),
            pattern_evictions: self.pattern_evictions.load(Ordering::Relaxed),
            tables_considered: overlay.tables_considered,
            tables_pruned: overlay.tables_pruned,
            vertices_from_edges: overlay.vertices_from_edges,
        }
    }
}

/// Point-in-time metrics for one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub traversals: u64,
    pub sql_statements: u64,
    pub sql_wall_nanos: u64,
    pub rows_returned: u64,
    pub template_hits: u64,
    pub template_misses: u64,
    /// Prepared templates dropped because the cache hit its size cap.
    pub template_evictions: u64,
    /// Workload patterns dropped because the tracker hit its size cap.
    pub pattern_evictions: u64,
    pub tables_considered: u64,
    pub tables_pruned: u64,
    pub vertices_from_edges: u64,
}

impl MetricsSnapshot {
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            traversals: self.traversals - earlier.traversals,
            sql_statements: self.sql_statements - earlier.sql_statements,
            sql_wall_nanos: self.sql_wall_nanos - earlier.sql_wall_nanos,
            rows_returned: self.rows_returned - earlier.rows_returned,
            template_hits: self.template_hits - earlier.template_hits,
            template_misses: self.template_misses - earlier.template_misses,
            template_evictions: self.template_evictions - earlier.template_evictions,
            pattern_evictions: self.pattern_evictions - earlier.pattern_evictions,
            tables_considered: self.tables_considered - earlier.tables_considered,
            tables_pruned: self.tables_pruned - earlier.tables_pruned,
            vertices_from_edges: self.vertices_from_edges - earlier.vertices_from_edges,
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("traversals", Json::u64(self.traversals)),
            ("sql_statements", Json::u64(self.sql_statements)),
            ("sql_wall_nanos", Json::u64(self.sql_wall_nanos)),
            ("rows_returned", Json::u64(self.rows_returned)),
            ("template_hits", Json::u64(self.template_hits)),
            ("template_misses", Json::u64(self.template_misses)),
            ("template_evictions", Json::u64(self.template_evictions)),
            ("pattern_evictions", Json::u64(self.pattern_evictions)),
            ("tables_considered", Json::u64(self.tables_considered)),
            ("tables_pruned", Json::u64(self.tables_pruned)),
            ("vertices_from_edges", Json::u64(self.vertices_from_edges)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        p.record_strategy("s", "a", "b");
        p.record_step(0, "x", 1, 2, 3);
        p.record_table("t", TableAction::Queried);
        p.record_statement("SELECT 1", false, 1, 10);
        let r = p.report();
        assert!(r.strategies.is_empty());
        assert!(r.steps.is_empty());
        assert!(r.tables.is_empty());
        assert!(r.statements.is_empty());
        assert!(p.take_report().is_none());
    }

    #[test]
    fn enabled_profiler_accumulates_and_counts() {
        let p = Profiler::enabled();
        p.record_strategy("PredicatePushdown", "a", "b");
        p.record_table("Patient", TableAction::Queried);
        p.record_table("Disease", TableAction::Pruned("id prefix mismatch".into()));
        p.record_table("Visit", TableAction::Pinned);
        p.record_statement("SELECT * FROM Patient", false, 3, 1_500);
        p.record_statement("SELECT * FROM Patient", true, 3, 900);
        let r = p.report();
        assert_eq!(r.tables_considered(), 3);
        assert_eq!(r.tables_queried(), 2);
        assert_eq!(r.tables_pruned(), 1);
        assert_eq!(r.template_hits(), 1);
        assert_eq!(r.template_misses(), 1);
        assert_eq!(r.total_rows(), 6);
        assert_eq!(r.total_sql_nanos(), 2_400);
        let text = p.take_report().unwrap();
        assert!(text.contains("PredicatePushdown"), "{text}");
        assert!(text.contains("pruned (id prefix mismatch)"), "{text}");
        // JSON export round-trips through the parser.
        let json = crate::json::Json::parse(&r.to_json().to_pretty()).unwrap();
        assert_eq!(
            json.get("totals").and_then(|t| t.get("tables_pruned")).and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn explain_report_accessors() {
        let r = ExplainReport {
            plan: "Graph(V|ids)".into(),
            steps: vec![StepExplain {
                index: 0,
                description: "Graph(V|ids)".into(),
                tables: vec![
                    TableExplain {
                        table: "Patient".into(),
                        plan: TablePlan::Query { sql: vec!["SELECT x FROM Patient".into()] },
                    },
                    TableExplain {
                        table: "Disease".into(),
                        plan: TablePlan::Pruned { reason: "id prefix mismatch".into() },
                    },
                ],
            }],
        };
        assert_eq!(r.tables_considered(), 2);
        assert_eq!(r.tables_queried(), 1);
        assert_eq!(r.tables_pruned(), 1);
        assert_eq!(r.sql_statements(), vec!["SELECT x FROM Patient"]);
        let text = r.to_string();
        assert!(text.starts_with("plan: Graph(V|ids)"), "{text}");
        assert!(text.contains("SELECT x FROM Patient"), "{text}");
        assert!(text.contains("pruned (id prefix mismatch)"), "{text}");
    }

    #[test]
    fn registry_snapshot_and_diff() {
        let m = MetricsRegistry::default();
        m.record_traversal();
        m.record_template(true);
        m.record_template(false);
        m.record_statement(5, 1000);
        let a = m.snapshot_with(OverlayStatsSnapshot::default());
        assert_eq!(a.traversals, 1);
        assert_eq!(a.sql_statements, 1);
        assert_eq!(a.rows_returned, 5);
        assert_eq!(a.template_hits, 1);
        assert_eq!(a.template_misses, 1);
        m.record_statement(2, 500);
        let b = m.snapshot_with(OverlayStatsSnapshot::default());
        let d = b.since(&a);
        assert_eq!(d.sql_statements, 1);
        assert_eq!(d.rows_returned, 2);
        assert_eq!(d.sql_wall_nanos, 500);
        let json = b.to_json().to_compact();
        assert!(json.contains("\"template_hits\":1"), "{json}");
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(fmt_nanos(12), "12ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
