//! Structured operational event log.
//!
//! The serving stack (PRs 5–7) emits typed events — request completions,
//! shed decisions, transaction conflicts, vacuum/checkpoint/WAL activity,
//! replication state changes — into one append-only stream so a fleet
//! operator can answer "what happened around 14:03?" without correlating
//! five ad-hoc logs. The paper's premise (graph queries *inside* an
//! operational DBMS) implies operability at the host's standard: events
//! are the narrative complement to the numeric [`crate::metrics`] layer.
//!
//! Design:
//! * a bounded in-memory ring (`capacity` newest events) answers
//!   `GET /events?since=<seq>` tail-style without unbounded growth;
//! * an optional JSONL file sink (`DB2GRAPH_EVENT_LOG=<path>`) persists
//!   every event, rotating `<path>` → `<path>.1` once it passes a size
//!   cap so the log cannot fill a disk;
//! * sequence numbers are assigned under the ring lock, so `since`
//!   pagination never skips or duplicates an event that is still in the
//!   ring.
//!
//! Emission must never fail the hot path: file-sink errors are counted
//! (`dropped_writes`) and otherwise swallowed.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Default number of events retained in memory.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Default file-sink rotation threshold (bytes).
pub const DEFAULT_ROTATE_BYTES: u64 = 8 * 1024 * 1024;

/// One structured event. `fields` keeps insertion order, mirroring the
/// repo-wide JSON convention.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number, 1-based, assigned at emission.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_millis: u64,
    /// Event kind, e.g. `request_completed`, `checkpoint_end`.
    pub kind: String,
    /// Kind-specific payload.
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// Render as a JSON object (`seq`, `unix_millis`, `kind`, then the
    /// kind-specific fields inline).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("seq".to_string(), Json::u64(self.seq)),
            ("unix_millis".to_string(), Json::u64(self.unix_millis)),
            ("kind".to_string(), Json::str(self.kind.clone())),
        ];
        obj.extend(self.fields.iter().cloned());
        Json::Obj(obj)
    }
}

struct Ring {
    events: std::collections::VecDeque<Event>,
    next_seq: u64,
}

struct FileSink {
    path: PathBuf,
    file: File,
    written: u64,
    rotate_bytes: u64,
}

impl FileSink {
    fn open(path: PathBuf, rotate_bytes: u64) -> std::io::Result<FileSink> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(FileSink { path, file, written, rotate_bytes })
    }

    fn append(&mut self, line: &str) -> std::io::Result<()> {
        if self.written >= self.rotate_bytes {
            self.rotate()?;
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.written += line.len() as u64 + 1;
        Ok(())
    }

    /// Rename the live file to `<path>.1` (replacing any previous
    /// rotation) and start a fresh one. One generation of history is
    /// enough for tailing; the ring covers recency, the metrics layer
    /// covers totals.
    fn rotate(&mut self) -> std::io::Result<()> {
        let mut rotated = self.path.as_os_str().to_owned();
        rotated.push(".1");
        fs::rename(&self.path, PathBuf::from(&rotated))?;
        self.file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        self.written = 0;
        Ok(())
    }
}

/// Bounded event ring plus optional JSONL file sink. Cheap to clone
/// behind an `Arc`; all emitters share one instance.
pub struct EventLog {
    ring: Mutex<Ring>,
    capacity: usize,
    sink: Mutex<Option<FileSink>>,
    emitted: AtomicU64,
    dropped_writes: AtomicU64,
}

impl EventLog {
    /// In-memory-only log with the default capacity.
    pub fn new() -> EventLog {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// In-memory-only log retaining the newest `capacity` events.
    pub fn with_capacity(capacity: usize) -> EventLog {
        let capacity = capacity.max(1);
        EventLog {
            ring: Mutex::new(Ring {
                events: std::collections::VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 1,
            }),
            capacity,
            sink: Mutex::new(None),
            emitted: AtomicU64::new(0),
            dropped_writes: AtomicU64::new(0),
        }
    }

    /// Attach a JSONL file sink with the given rotation threshold.
    /// Returns `Err` only if the file cannot be opened at all; later
    /// write failures are counted, not raised.
    pub fn with_file_sink(
        self,
        path: impl Into<PathBuf>,
        rotate_bytes: u64,
    ) -> std::io::Result<EventLog> {
        let sink = FileSink::open(path.into(), rotate_bytes.max(1))?;
        *self.sink.lock().unwrap() = Some(sink);
        Ok(self)
    }

    /// Emit one event; returns its sequence number.
    pub fn emit(&self, kind: &str, fields: Vec<(&str, Json)>) -> u64 {
        let fields: Vec<(String, Json)> =
            fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        let unix_millis = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let event = {
            let mut ring = self.ring.lock().unwrap();
            let event = Event { seq: ring.next_seq, unix_millis, kind: kind.to_string(), fields };
            ring.next_seq += 1;
            if ring.events.len() == self.capacity {
                ring.events.pop_front();
            }
            ring.events.push_back(event.clone());
            event
        };
        self.emitted.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = self.sink.lock().unwrap().as_mut() {
            if sink.append(&event.to_json().to_compact()).is_err() {
                self.dropped_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        event.seq
    }

    /// Events with `seq > since`, oldest first — the `GET /events?since=`
    /// contract. A client that polls with the last seq it saw never
    /// re-reads an event still in the ring.
    pub fn since(&self, since: u64) -> Vec<Event> {
        let ring = self.ring.lock().unwrap();
        ring.events.iter().filter(|e| e.seq > since).cloned().collect()
    }

    /// Newest sequence number emitted so far (0 before the first event).
    pub fn last_seq(&self) -> u64 {
        self.ring.lock().unwrap().next_seq - 1
    }

    /// Total events emitted over the log's lifetime (ring eviction does
    /// not decrement this).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// File-sink writes that failed and were swallowed.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped_writes.load(Ordering::Relaxed)
    }

    /// Render `since(seq)` as the `/events` response body.
    pub fn since_json(&self, since: u64) -> Json {
        let events: Vec<Json> = self.since(since).iter().map(Event::to_json).collect();
        Json::obj(vec![
            ("last_seq", Json::u64(self.last_seq())),
            ("events", Json::Arr(events)),
        ])
    }
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new()
    }
}

/// An environment knob whose value could not be parsed and was replaced
/// by a fallback. Historically these fell back *silently* — a typo'd
/// `DB2GRAPH_THREADS=eight` ran single-knob defaults with no trace. Now
/// every such decision is recorded here and surfaced as a typed
/// `config_warning` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigWarning {
    /// The environment variable name, e.g. `DB2GRAPH_THREADS`.
    pub knob: String,
    /// The raw value that failed to parse.
    pub raw: String,
    /// Human-readable description of the fallback that was used instead.
    pub fallback: String,
}

static CONFIG_WARNINGS: Mutex<Vec<ConfigWarning>> = Mutex::new(Vec::new());

/// Record that `knob` was set to the unparseable `raw` and `fallback` was
/// used instead. Config parsing happens before (or without) any
/// [`EventLog`], so warnings buffer in a process-global queue; an embedder
/// with a log drains them via [`EventLog::emit_config_warnings`]. Also
/// printed to stderr immediately so library users see it regardless.
pub fn record_config_warning(knob: &str, raw: &str, fallback: &str) {
    eprintln!("db2graph: ignoring invalid {knob}={raw:?}; using {fallback}");
    CONFIG_WARNINGS.lock().unwrap().push(ConfigWarning {
        knob: knob.to_string(),
        raw: raw.to_string(),
        fallback: fallback.to_string(),
    });
}

/// Take (and clear) all buffered configuration warnings.
pub fn drain_config_warnings() -> Vec<ConfigWarning> {
    std::mem::take(&mut *CONFIG_WARNINGS.lock().unwrap())
}

impl EventLog {
    /// Drain the buffered configuration warnings into this log as typed
    /// `config_warning` events; returns how many were emitted.
    pub fn emit_config_warnings(&self) -> usize {
        let warnings = drain_config_warnings();
        for w in &warnings {
            self.emit(
                "config_warning",
                vec![
                    ("knob", Json::str(w.knob.clone())),
                    ("raw", Json::str(w.raw.clone())),
                    ("fallback", Json::str(w.fallback.clone())),
                ],
            );
        }
        warnings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotonic_and_since_paginates() {
        let log = EventLog::with_capacity(8);
        for i in 0..5u64 {
            log.emit("test", vec![("i", Json::u64(i))]);
        }
        assert_eq!(log.last_seq(), 5);
        let tail = log.since(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
        assert_eq!(tail[1].seq, 5);
        assert!(log.since(5).is_empty());
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_sequence() {
        let log = EventLog::with_capacity(3);
        for i in 0..10u64 {
            log.emit("test", vec![("i", Json::u64(i))]);
        }
        let all = log.since(0);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].seq, 8);
        assert_eq!(all[2].seq, 10);
        assert_eq!(log.emitted(), 10);
    }

    #[test]
    fn config_warnings_buffer_then_emit_as_events() {
        let log = EventLog::with_capacity(8);
        record_config_warning("DB2GRAPH_TEST_KNOB", "eight", "autodetect (4)");
        let emitted = log.emit_config_warnings();
        assert!(emitted >= 1);
        let events = log.since(0);
        let w = events
            .iter()
            .find(|e| {
                e.kind == "config_warning"
                    && e.fields.iter().any(|(k, v)| {
                        k == "knob" && v.to_compact().contains("DB2GRAPH_TEST_KNOB")
                    })
            })
            .expect("config_warning event present");
        assert!(w.to_json().to_compact().contains("eight"));
        // Drained: a second pass emits nothing new for this knob.
        assert_eq!(drain_config_warnings(), Vec::new());
    }

    #[test]
    fn file_sink_rotates_at_size_cap() {
        let dir = std::env::temp_dir().join(format!(
            "db2graph-events-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let log = EventLog::with_capacity(4).with_file_sink(&path, 256).unwrap();
        for i in 0..64u64 {
            log.emit("rotate_me", vec![("i", Json::u64(i))]);
        }
        let rotated = dir.join("events.jsonl.1");
        assert!(rotated.exists(), "expected {} to exist", rotated.display());
        // Every surviving line must parse as a JSON object with a seq.
        for file in [&path, &rotated] {
            let text = std::fs::read_to_string(file).unwrap();
            for line in text.lines() {
                let parsed = Json::parse(line).unwrap();
                assert!(parsed.get("seq").is_some());
            }
        }
        assert_eq!(log.dropped_writes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
