//! Hierarchical trace spans: always-on runtime telemetry for the overlay.
//!
//! Where the [`Profiler`](crate::metrics::Profiler) answers *what did this
//! one query do* as a flat per-layer report, the tracer answers *where did
//! the time go, structurally*: every query produces a tree of spans —
//! query → strategy rewrites → steps → table decisions / SQL statements,
//! with pool-worker children nested under the step that fanned them out —
//! which lands in a bounded process-lifetime ring buffer ([`TraceSink`])
//! and exports as Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) or JSONL.
//!
//! Two properties are load-bearing and pinned by tests:
//!
//! * **Disabled tracing is one null-check per event.** A [`Tracer`] is an
//!   `Option<Arc<...>>`, exactly like the disabled profiler: when `None`,
//!   every record call branches on the option and returns — no locks, no
//!   allocation, no timestamps, not even attribute formatting (attributes
//!   are built by closures that only run when enabled).
//! * **Trace structure is deterministic at any thread count.** Worker
//!   threads record into a forked tracer; the coordinator absorbs the
//!   forks back in job-submission order and re-parents each fork's root
//!   spans under the span that was open at the fan-out site (the step
//!   span). The same fork/absorb discipline the profiler uses makes the
//!   span *tree* identical between `DB2GRAPH_THREADS=1` and `=8` — only
//!   the timestamps differ.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::Json;

/// Default capacity of the span ring buffer (spans, not bytes).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// What layer of the pipeline a span came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The root span of one Gremlin script execution.
    Query,
    /// A compile-time strategy application that changed the plan.
    Strategy,
    /// One top-level executor step.
    Step,
    /// A Graph Structure table-elimination decision (zero duration).
    Table,
    /// One SQL statement executed by the dialect.
    Sql,
    /// One fan-out job run on the worker pool.
    Worker,
}

impl SpanKind {
    /// Stable lowercase name (used as the Chrome event category).
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Strategy => "strategy",
            SpanKind::Step => "step",
            SpanKind::Table => "table",
            SpanKind::Sql => "sql",
            SpanKind::Worker => "worker",
        }
    }
}

/// One recorded span. `parent` is an index into the same query's span
/// batch until the batch lands in a [`TraceSink`], which rewrites it into
/// a global id (see [`TracedSpan`]).
#[derive(Debug, Clone)]
pub struct Span {
    pub name: String,
    pub kind: SpanKind,
    pub parent: Option<usize>,
    /// Start time in nanoseconds since the tracer's epoch.
    pub start_nanos: u64,
    pub dur_nanos: u64,
    /// Virtual track: 0 for the coordinator, a per-fork number for spans
    /// absorbed from a worker fork. Assigned in absorb order, so it is
    /// deterministic across thread counts.
    pub track: u32,
    pub attrs: Vec<(String, String)>,
}

/// Handle to an open span; `None` when the tracer is disabled.
#[derive(Debug, Clone, Copy)]
pub struct SpanHandle(Option<usize>);

impl SpanHandle {
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }
}

#[derive(Default)]
struct TraceData {
    spans: Vec<Span>,
    /// Indices of currently open spans, innermost last. New spans parent
    /// under the top of this stack.
    stack: Vec<usize>,
    /// Next virtual track to hand to an absorbed fork.
    next_track: u32,
}

struct TracerInner {
    /// All forks of one tracer share this epoch (it is `Copy`), so
    /// absorbed timestamps stay on one coherent axis.
    epoch: Instant,
    data: Mutex<TraceData>,
}

/// Per-query span collector. Cheap to clone (shared interior); a disabled
/// tracer records nothing and costs one pointer-null check per event.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that drops every event — the default for untraced queries.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A collecting tracer with a fresh epoch.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                data: Mutex::new(TraceData { spans: Vec::new(), stack: Vec::new(), next_track: 1 }),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now(inner: &TracerInner) -> u64 {
        inner.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span as a child of the innermost open span.
    pub fn start(&self, name: &str, kind: SpanKind) -> SpanHandle {
        self.start_with(name, kind, Vec::new)
    }

    /// [`Self::start`] with attributes; the closure runs only when enabled.
    pub fn start_with<F>(&self, name: &str, kind: SpanKind, attrs: F) -> SpanHandle
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        let Some(inner) = &self.inner else { return SpanHandle(None) };
        let now = Self::now(inner);
        let mut d = inner.data.lock();
        let parent = d.stack.last().copied();
        let idx = d.spans.len();
        d.spans.push(Span {
            name: name.to_string(),
            kind,
            parent,
            start_nanos: now,
            dur_nanos: 0,
            track: 0,
            attrs: attrs(),
        });
        d.stack.push(idx);
        SpanHandle(Some(idx))
    }

    /// Close a span opened by [`Self::start`], setting its duration.
    pub fn end(&self, handle: SpanHandle) {
        let Some(inner) = &self.inner else { return };
        let SpanHandle(Some(idx)) = handle else { return };
        let now = Self::now(inner);
        let mut d = inner.data.lock();
        if let Some(s) = d.spans.get_mut(idx) {
            s.dur_nanos = now.saturating_sub(s.start_nanos);
        }
        if d.stack.last() == Some(&idx) {
            d.stack.pop();
        } else {
            d.stack.retain(|&i| i != idx);
        }
    }

    /// Close the innermost open span (used by strictly nested callers that
    /// cannot carry the handle, like observer callbacks).
    pub fn pop(&self) {
        let Some(inner) = &self.inner else { return };
        let now = Self::now(inner);
        let mut d = inner.data.lock();
        if let Some(idx) = d.stack.pop() {
            let s = &mut d.spans[idx];
            s.dur_nanos = now.saturating_sub(s.start_nanos);
        }
    }

    /// Record a zero-duration child of the innermost open span (e.g. a
    /// table-elimination decision). The closure runs only when enabled.
    pub fn event<F>(&self, name: &str, kind: SpanKind, attrs: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        self.span_with_duration(name, kind, 0, attrs);
    }

    /// Record an already-measured span (e.g. a SQL statement timed by the
    /// dialect): it ends now and started `nanos` ago, parented under the
    /// innermost open span. The closure runs only when enabled.
    pub fn span_with_duration<F>(&self, name: &str, kind: SpanKind, nanos: u64, attrs: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        let Some(inner) = &self.inner else { return };
        let now = Self::now(inner);
        let mut d = inner.data.lock();
        let parent = d.stack.last().copied();
        d.spans.push(Span {
            name: name.to_string(),
            kind,
            parent,
            start_nanos: now.saturating_sub(nanos),
            dur_nanos: nanos,
            track: 0,
            attrs: attrs(),
        });
    }

    /// A fresh tracer with the same enablement **and the same epoch**:
    /// worker threads record into their own fork, and the coordinator
    /// [`Self::absorb`]s the forks in job order — the span tree is the
    /// same at any thread count. Forking a disabled tracer is free.
    pub fn fork(&self) -> Tracer {
        match &self.inner {
            None => Tracer { inner: None },
            Some(inner) => Tracer {
                inner: Some(Arc::new(TracerInner {
                    epoch: inner.epoch,
                    data: Mutex::new(TraceData {
                        spans: Vec::new(),
                        stack: Vec::new(),
                        next_track: 1,
                    }),
                })),
            },
        }
    }

    /// Append every span recorded in `other` (draining it). Root spans of
    /// the fork (those with no parent inside it) are re-parented under the
    /// innermost span currently open here — the step span at the fan-out
    /// site — and the whole fork is assigned the next virtual track.
    pub fn absorb(&self, other: &Tracer) {
        let (Some(inner), Some(theirs)) = (&self.inner, &other.inner) else { return };
        let forked = {
            let mut t = theirs.data.lock();
            t.stack.clear();
            std::mem::take(&mut t.spans)
        };
        if forked.is_empty() {
            return;
        }
        let mut d = inner.data.lock();
        let offset = d.spans.len();
        let parent_here = d.stack.last().copied();
        let track = d.next_track;
        d.next_track += 1;
        for mut s in forked {
            s.parent = match s.parent {
                Some(p) => Some(p + offset),
                None => parent_here,
            };
            s.track = track;
            d.spans.push(s);
        }
    }

    /// Drain the recorded spans, closing any still-open span (a query that
    /// errored mid-step leaves its step span open) at the current time.
    pub fn finish(&self) -> Vec<Span> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let now = Self::now(inner);
        let mut d = inner.data.lock();
        let stack = std::mem::take(&mut d.stack);
        for idx in stack {
            let s = &mut d.spans[idx];
            if s.dur_nanos == 0 {
                s.dur_nanos = now.saturating_sub(s.start_nanos);
            }
        }
        std::mem::take(&mut d.spans)
    }
}

// ------------------------------------------------------------------ sink

/// A span with its sink-global id and resolved parent id.
#[derive(Debug, Clone)]
pub struct TracedSpan {
    pub id: u64,
    pub parent: Option<u64>,
    pub span: Span,
}

struct SinkInner {
    buf: VecDeque<TracedSpan>,
    next_id: u64,
}

/// Bounded, lock-cheap ring buffer of completed spans, shared by every
/// query of one graph. One lock acquisition per *query* (spans arrive as a
/// batch from [`Tracer::finish`]); when the ring wraps, the oldest spans
/// are dropped and counted.
pub struct TraceSink {
    capacity: usize,
    dropped: AtomicU64,
    total: AtomicU64,
    inner: Mutex<SinkInner>,
}

impl TraceSink {
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            total: AtomicU64::new(0),
            inner: Mutex::new(SinkInner { buf: VecDeque::new(), next_id: 0 }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans dropped because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one query's spans, assigning global ids and rewriting
    /// batch-local parent indices; evicts the oldest spans past capacity.
    pub fn push_batch(&self, spans: Vec<Span>) {
        if spans.is_empty() {
            return;
        }
        self.total.fetch_add(spans.len() as u64, Ordering::Relaxed);
        let mut g = self.inner.lock();
        let base = g.next_id;
        g.next_id += spans.len() as u64;
        for (i, span) in spans.into_iter().enumerate() {
            let parent = span.parent.map(|p| base + p as u64);
            g.buf.push_back(TracedSpan { id: base + i as u64, parent, span });
        }
        let mut evicted = 0u64;
        while g.buf.len() > self.capacity {
            g.buf.pop_front();
            evicted += 1;
        }
        if evicted > 0 {
            self.dropped.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// The retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<TracedSpan> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Timing-free rendering of the span forest, one line per span in
    /// recording order: `[kind|track] root > ... > name {attrs}`. Two runs
    /// of the same workload produce identical lines at any thread count —
    /// the seq ≡ par trace-structure tests compare exactly this.
    pub fn structure_lines(&self) -> Vec<String> {
        let spans = self.snapshot();
        let mut paths: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(spans.len());
        for ts in &spans {
            let prefix = ts
                .parent
                .and_then(|p| paths.get(&p))
                .map(|p| format!("{p} > "))
                .unwrap_or_default();
            let path = format!("{prefix}{}", ts.span.name);
            let attrs: Vec<String> =
                ts.span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push(format!(
                "[{}|t{}] {path} {{{}}}",
                ts.span.kind.as_str(),
                ts.span.track,
                attrs.join(",")
            ));
            paths.insert(ts.id, path);
        }
        out
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form),
    /// loadable in Perfetto / `chrome://tracing`. Every span becomes a
    /// complete ("X") event; `args` carries the span id, parent id and
    /// attributes so the hierarchy survives the export machine-readably.
    pub fn to_chrome_json(&self) -> Json {
        let events: Vec<Json> = self.snapshot().iter().map(chrome_event).collect();
        Json::obj(vec![
            ("traceEvents", Json::arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }

    /// One JSON object per span per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ts in self.snapshot() {
            out.push_str(&jsonl_event(&ts).to_compact());
            out.push('\n');
        }
        out
    }

    /// Write the Chrome trace-event JSON to a file.
    pub fn export_chrome(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json().to_compact())
    }

    /// Write the JSONL form to a file.
    pub fn export_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

fn chrome_event(ts: &TracedSpan) -> Json {
    let mut args = vec![("id".to_string(), Json::u64(ts.id))];
    if let Some(p) = ts.parent {
        args.push(("parent".to_string(), Json::u64(p)));
    }
    for (k, v) in &ts.span.attrs {
        args.push((k.clone(), Json::str(v)));
    }
    Json::obj(vec![
        ("name", Json::str(&ts.span.name)),
        ("cat", Json::str(ts.span.kind.as_str())),
        ("ph", Json::str("X")),
        ("ts", Json::num(ts.span.start_nanos as f64 / 1_000.0)),
        ("dur", Json::num(ts.span.dur_nanos as f64 / 1_000.0)),
        ("pid", Json::u64(1)),
        ("tid", Json::u64(ts.span.track as u64 + 1)),
        ("args", Json::Obj(args)),
    ])
}

fn jsonl_event(ts: &TracedSpan) -> Json {
    let mut fields = vec![
        ("id", Json::u64(ts.id)),
        ("name", Json::str(&ts.span.name)),
        ("kind", Json::str(ts.span.kind.as_str())),
        ("start_nanos", Json::u64(ts.span.start_nanos)),
        ("dur_nanos", Json::u64(ts.span.dur_nanos)),
        ("track", Json::u64(ts.span.track as u64)),
    ];
    if let Some(p) = ts.parent {
        fields.insert(1, ("parent", Json::u64(p)));
    }
    let attrs: Vec<(String, Json)> =
        ts.span.attrs.iter().map(|(k, v)| (k.clone(), Json::str(v))).collect();
    fields.push(("attrs", Json::Obj(attrs)));
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The contract the hot path relies on: a disabled tracer is a single
    /// null-check per event — `Option<Arc<..>>` niche-packed to one
    /// pointer, no attribute closures invoked, nothing recorded.
    #[test]
    fn disabled_tracer_is_one_null_check() {
        assert_eq!(
            std::mem::size_of::<Tracer>(),
            std::mem::size_of::<usize>(),
            "Tracer must stay a niche-packed Option<Arc<..>> pointer"
        );
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let h = t.start_with("q", SpanKind::Query, || {
            panic!("attr closure must not run when disabled")
        });
        assert!(h.is_none());
        t.event("e", SpanKind::Table, || panic!("attr closure must not run when disabled"));
        t.span_with_duration("s", SpanKind::Sql, 10, || {
            panic!("attr closure must not run when disabled")
        });
        t.end(h);
        t.pop();
        let fork = t.fork();
        assert!(!fork.is_enabled());
        t.absorb(&fork);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn spans_nest_under_open_parent() {
        let t = Tracer::enabled();
        let q = t.start("query", SpanKind::Query);
        t.event("Strategy", SpanKind::Strategy, || vec![("a".into(), "b".into())]);
        let s = t.start("Step", SpanKind::Step);
        t.span_with_duration("SELECT 1", SpanKind::Sql, 5, Vec::new);
        t.end(s);
        t.end(q);
        let spans = t.finish();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0)); // strategy under query
        assert_eq!(spans[2].parent, Some(0)); // step under query
        assert_eq!(spans[3].parent, Some(2)); // sql under step
        assert_eq!(spans[3].dur_nanos, 5);
        assert_eq!(spans[1].attrs, vec![("a".to_string(), "b".to_string())]);
    }

    #[test]
    fn fork_absorb_reparents_under_fanout_site() {
        let t = Tracer::enabled();
        let q = t.start("query", SpanKind::Query);
        let step = t.start("Step", SpanKind::Step);
        let forks: Vec<Tracer> = (0..2).map(|_| t.fork()).collect();
        for (i, f) in forks.iter().enumerate() {
            let w = f.start_with("worker", SpanKind::Worker, || {
                vec![("job".into(), i.to_string())]
            });
            f.span_with_duration("SELECT x", SpanKind::Sql, 1, Vec::new);
            f.end(w);
        }
        for f in &forks {
            t.absorb(f);
        }
        t.end(step);
        t.end(q);
        let spans = t.finish();
        // query, step, then per fork: worker + sql.
        assert_eq!(spans.len(), 6);
        assert_eq!(spans[2].name, "worker");
        assert_eq!(spans[2].parent, Some(1), "fork root re-parents under the step");
        assert_eq!(spans[3].parent, Some(2), "fork-internal parent offsets shift");
        assert_eq!(spans[2].track, 1);
        assert_eq!(spans[4].track, 2, "each fork gets its own track");
        assert_eq!(spans[4].parent, Some(1));
        assert_eq!(spans[5].parent, Some(4));
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let t = Tracer::enabled();
        t.start("query", SpanKind::Query);
        t.start("Step", SpanKind::Step);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let spans = t.finish();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.dur_nanos > 0), "{spans:?}");
    }

    #[test]
    fn ring_buffer_wraps_in_order_and_counts_drops() {
        let sink = TraceSink::new(4);
        let t = Tracer::enabled();
        for i in 0..6 {
            t.event(&format!("e{i}"), SpanKind::Sql, Vec::new);
        }
        sink.push_batch(t.finish());
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.total(), 6);
        let names: Vec<String> =
            sink.snapshot().iter().map(|s| s.span.name.clone()).collect();
        assert_eq!(names, vec!["e2", "e3", "e4", "e5"], "oldest spans drop first");
        let ids: Vec<u64> = sink.snapshot().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5], "global ids survive the wrap");
        // A second batch keeps wrapping.
        let t2 = Tracer::enabled();
        t2.event("late", SpanKind::Sql, Vec::new);
        sink.push_batch(t2.finish());
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.snapshot().last().unwrap().span.name, "late");
    }

    #[test]
    fn sink_rewrites_parents_to_global_ids() {
        let sink = TraceSink::new(16);
        for _ in 0..2 {
            let t = Tracer::enabled();
            let q = t.start("query", SpanKind::Query);
            t.event("child", SpanKind::Table, Vec::new);
            t.end(q);
            sink.push_batch(t.finish());
        }
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[3].parent, Some(spans[2].id));
        assert_ne!(spans[1].parent, spans[3].parent, "batches get distinct ids");
    }

    #[test]
    fn chrome_export_parses_and_carries_hierarchy() {
        let sink = TraceSink::new(16);
        let t = Tracer::enabled();
        let q = t.start_with("query", SpanKind::Query, || {
            vec![("gremlin".into(), "g.V()".into())]
        });
        t.span_with_duration("SELECT 1", SpanKind::Sql, 1_500, Vec::new);
        t.end(q);
        sink.push_batch(t.finish());
        let json = Json::parse(&sink.to_chrome_json().to_compact()).unwrap();
        let events = json.get("traceEvents").unwrap();
        let Json::Arr(events) = events else { panic!("traceEvents must be an array") };
        assert_eq!(events.len(), 2);
        for e in events {
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(e.get(key).is_some(), "missing {key} in {e:?}");
            }
        }
        let sql = &events[1];
        assert_eq!(sql.get("cat").and_then(|c| c.as_str()), Some("sql"));
        assert_eq!(
            sql.get("args").and_then(|a| a.get("parent")).and_then(|p| p.as_u64()),
            events[0].get("args").and_then(|a| a.get("id")).and_then(|p| p.as_u64()),
        );
        // JSONL: one parseable object per line.
        let jsonl = sink.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            let obj = Json::parse(line).unwrap();
            assert!(obj.get("kind").is_some(), "{line}");
        }
    }

    #[test]
    fn structure_lines_are_timing_free_paths() {
        let sink = TraceSink::new(16);
        let t = Tracer::enabled();
        let q = t.start("query", SpanKind::Query);
        let s = t.start("Step", SpanKind::Step);
        t.end(s);
        t.end(q);
        sink.push_batch(t.finish());
        let lines = sink.structure_lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "[query|t0] query {}");
        assert_eq!(lines[1], "[step|t0] query > Step {}");
    }
}
