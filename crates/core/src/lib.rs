//! # db2graph-core — synergistic, retrofittable graph queries inside a
//! relational database
//!
//! A Rust reproduction of the system described in *"IBM Db2 Graph:
//! Supporting Synergistic and Retrofittable Graph Queries Inside IBM Db2"*
//! (Tian et al., SIGMOD 2020). The crate implements the paper's
//! contribution — a graph layer *inside* the database — over the `reldb`
//! relational substrate and the `gremlin` traversal substrate:
//!
//! * **Graph overlay** ([`config`], [`topology`], [`ids`]): a JSON
//!   configuration maps existing tables/views onto the vertex and edge sets
//!   of a property graph, with prefixed ids, fixed or column labels,
//!   implicit edge ids, and src/dst vertex table links — no data is copied
//!   or transformed.
//! * **AutoOverlay** ([`mod@auto_overlay`]): Algorithms 1 & 2 — derive the
//!   overlay from primary/foreign-key metadata.
//! * **Optimized traversal strategies** ([`strategies`]): the four
//!   data-independent compile-time rewrites of Section 6.2, individually
//!   toggleable.
//! * **Graph Structure module** ([`graph_structure`]): the graph structure
//!   API implemented as SQL with the six data-dependent runtime
//!   optimizations of Section 6.3.
//! * **SQL Dialect module** ([`sql_dialect`]): SQL generation, a prepared
//!   template cache driven by frequent-pattern detection, and an index
//!   advisor.
//! * **Synergy** ([`graph`]): the `graphQuery` polymorphic table function,
//!   so SQL joins and aggregates can consume Gremlin results (Section 4).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use db2graph_core::Db2Graph;
//! use db2graph_core::config::healthcare_example_json;
//! use gremlin::GValue;
//! use reldb::Database;
//!
//! // Existing relational data (Figure 2 of the paper).
//! let db = Arc::new(Database::new());
//! db.execute_script(
//!     "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR,
//!                            address VARCHAR, subscriptionID BIGINT);
//!      CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR,
//!                            conceptName VARCHAR);
//!      CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR,
//!         FOREIGN KEY (sourceID) REFERENCES Disease(diseaseID),
//!         FOREIGN KEY (targetID) REFERENCES Disease(diseaseID));
//!      CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
//!         FOREIGN KEY (patientID) REFERENCES Patient(patientID),
//!         FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
//!      INSERT INTO Patient VALUES (1, 'Alice', '12 Oak St', 100);
//!      INSERT INTO Disease VALUES (10, 'E11', 'type 2 diabetes');
//!      INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019');",
//! ).unwrap();
//!
//! // Overlay a property graph onto the same tables — no copy, no transform.
//! let graph = Db2Graph::open_json(db, healthcare_example_json()).unwrap();
//! let out = graph
//!     .run("g.V().hasLabel('patient').has('name', 'Alice').out('hasDisease').values('conceptName')")
//!     .unwrap();
//! assert_eq!(out, vec![GValue::Str("type 2 diabetes".into())]);
//! ```

pub mod adjcache;
pub mod auto_overlay;
pub mod config;
pub mod error;
pub mod events;
pub mod graph;
pub mod graph_structure;
pub mod ids;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod sql_dialect;
pub mod stats;
pub mod strategies;
pub mod topology;
pub mod trace;

pub use adjcache::{AdjCache, ADJ_CACHE_MB_ENV, DEFAULT_ADJ_CACHE_MB};
pub use auto_overlay::{auto_overlay, generate_overlay, identify_tables};
pub use config::{ETableConfig, OverlayConfig, VTableConfig};
pub use error::{GraphError, GraphResult};
pub use events::{
    drain_config_warnings, record_config_warning, ConfigWarning, Event, EventLog,
    DEFAULT_EVENT_CAPACITY, DEFAULT_ROTATE_BYTES,
};
pub use graph::{Db2Graph, GraphOptions};
pub use graph_structure::Db2GraphBackend;
pub use metrics::{
    step_kind, ExplainReport, Histogram, HistogramSet, MetricsRegistry, MetricsSnapshot,
    ProfileReport, Profiler, SlowQueryEntry, SlowQueryLog, StepExplain, StepProfile, TableAction,
    TableExplain, TablePlan,
};
pub use sql_dialect::{IndexSuggestion, SqlDialect, WorkloadReport};
pub use trace::{
    Span, SpanHandle, SpanKind, TraceSink, TracedSpan, Tracer, DEFAULT_TRACE_CAPACITY,
};
pub use stats::{OverlayStats, OverlayStatsSnapshot};
pub use strategies::StrategyConfig;
pub use topology::Topology;
