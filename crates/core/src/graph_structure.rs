//! The Graph Structure module: the overlay implementation of the graph
//! structure API.
//!
//! Every graph operation here turns into SQL against the overlaid tables,
//! generated through the SQL Dialect module. The data-dependent runtime
//! optimizations of Section 6.3 are all implemented:
//!
//! 1. **Using source/destination vertex tables** — adjacency queries skip
//!    edge tables whose `src_v_table`/`dst_v_table` cannot match the source
//!    vertices' table, and endpoint lookups go straight to the one declared
//!    vertex table.
//! 2. **When a vertex table is also an edge table** — `outV()`/`inV()`
//!    construct the vertex from the edge itself (no SQL) when the endpoint
//!    vertex table is the edge's own table and its properties are subsumed
//!    by the edge's.
//! 3. **Using property names in pushdown information** — tables lacking a
//!    pushed-down predicate/projection property are eliminated.
//! 4. **Using label values** — fixed-label tables not matching the query
//!    labels are eliminated; column-label tables are always searched.
//! 5. **Using prefixed id values** — a prefixed id pins the exact table,
//!    and composite ids decompose into conjunctive column predicates.
//! 6. **Using implicit edge id values** — `src::label::dst` ids are broken
//!    apart, the embedded label eliminates tables, and the parts become
//!    conjunctive predicates.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use gremlin::backend::{
    AggOp, BackendOutput, Direction, EdgeEnd, ElementFilter, ElementKind, GraphBackend, Pred,
    PropPred,
};
use gremlin::structure::{Edge, Element, ElementId, GValue, Vertex};
use gremlin::GResult;
use reldb::{Database, DataType, Row, RowSet, Snapshot, Value};

use crate::adjcache::{AdjCache, EdgeRef, Probe};
use crate::error::{to_gremlin, GraphError, GraphResult};
use crate::ids::{implicit_edge_id, split_implicit_edge_id, EdgeIdDef, IdDef};
use crate::metrics::{MetricsRegistry, Profiler, TableAction, TableExplain, TablePlan};
use crate::pool;
use crate::sql_dialect::{
    build_select, composite_in_bucketed, ident, in_list_bucketed, SqlDialect, MAX_FRONTIER_CHUNK,
};
use crate::stats::OverlayStats;
use crate::topology::{EdgeTable, LabelDef, Topology, VertexTable};

/// Convert a relational value into a Gremlin value.
pub fn to_gvalue(v: &Value) -> GValue {
    match v {
        Value::Null => GValue::Null,
        Value::Bigint(x) => GValue::Long(*x),
        Value::Double(x) => GValue::Double(*x),
        Value::Varchar(s) => GValue::Str(s.clone()),
        Value::Boolean(b) => GValue::Bool(*b),
    }
}

/// Convert a Gremlin value into a relational value (scalar kinds only).
pub fn to_value(v: &GValue) -> Option<Value> {
    match v {
        GValue::Null => Some(Value::Null),
        GValue::Long(x) => Some(Value::Bigint(*x)),
        GValue::Double(x) => Some(Value::Double(*x)),
        GValue::Str(s) => Some(Value::Varchar(s.clone())),
        GValue::Bool(b) => Some(Value::Boolean(*b)),
        _ => None,
    }
}

/// Coerce an id text fragment to a column's type; view columns (unknown
/// type) use a numeric-looking heuristic.
fn coerce_id_text(text: &str, ty: Option<DataType>) -> GraphResult<Value> {
    match ty {
        Some(t) => IdDef::coerce(text, t),
        None => {
            if !text.is_empty()
                && text.chars().enumerate().all(|(i, c)| c.is_ascii_digit() || (i == 0 && c == '-'))
            {
                Ok(Value::Bigint(text.parse().unwrap_or(0)))
            } else {
                Ok(Value::Varchar(text.to_string()))
            }
        }
    }
}

/// The overlay backend: executes graph operations as SQL.
pub struct Db2GraphBackend {
    pub(crate) topo: Arc<Topology>,
    pub(crate) dialect: Arc<SqlDialect>,
    pub(crate) stats: Arc<OverlayStats>,
    /// Per-query event sink. Disabled by default; [`Self::with_profiler`]
    /// produces an observing clone for `profile()` runs.
    pub(crate) profiler: Profiler,
    /// Worker threads for intra-query fan-out (1 = fully sequential).
    pub(crate) threads: usize,
    /// The pinned storage snapshot every generated SQL statement reads.
    /// `None` only for backends not yet bound to a query; [`Graph::run`]
    /// and friends bind one via [`Self::with_snapshot`] so multi-statement
    /// traversals observe a single committed database state even while
    /// writers commit concurrently.
    pub(crate) read_view: Option<Snapshot>,
    /// Cooperative cancellation point: when set, every SQL-issuing
    /// operation checks the clock before touching storage and aborts with
    /// [`GraphError::Timeout`] once the instant has passed. Bound per
    /// query by [`Db2Graph::run_with_deadline`]; the serving layer uses it
    /// to shed requests that outlive their budget.
    pub(crate) deadline: Option<std::time::Instant>,
    /// Columnar CSR adjacency cache consulted before generating adjacency
    /// SQL (`None` = disabled). Shared across all shallow clones; only
    /// plain runs pinned to an unstamped snapshot use it — see
    /// `docs/VECTORIZED.md`.
    pub(crate) adj_cache: Option<Arc<AdjCache>>,
}

impl Db2GraphBackend {
    pub fn new(db: Arc<Database>, topo: Arc<Topology>) -> Db2GraphBackend {
        let registry = Arc::new(MetricsRegistry::default());
        let dialect = Arc::new(SqlDialect::with_registry(db, registry));
        Db2GraphBackend {
            topo,
            dialect,
            stats: Arc::new(OverlayStats::default()),
            profiler: Profiler::disabled(),
            threads: pool::configured_threads(),
            read_view: None,
            deadline: None,
            adj_cache: None,
        }
    }

    /// A shallow clone sharing all caches, stats and the metrics registry,
    /// but recording per-query events into `profiler`.
    pub fn with_profiler(&self, profiler: Profiler) -> Db2GraphBackend {
        Db2GraphBackend {
            topo: self.topo.clone(),
            dialect: self.dialect.clone(),
            stats: self.stats.clone(),
            profiler,
            threads: self.threads,
            read_view: self.read_view.clone(),
            deadline: self.deadline,
            adj_cache: self.adj_cache.clone(),
        }
    }

    /// A shallow clone pinned to `snapshot`: every SQL statement the clone
    /// generates (including fan-out worker jobs, which inherit the pin via
    /// [`Self::with_profiler`]) reads that committed state. Pass `None` to
    /// unpin and read the latest committed data per statement.
    pub fn with_snapshot(&self, snapshot: Option<Snapshot>) -> Db2GraphBackend {
        Db2GraphBackend {
            topo: self.topo.clone(),
            dialect: self.dialect.clone(),
            stats: self.stats.clone(),
            profiler: self.profiler.clone(),
            threads: self.threads,
            read_view: snapshot,
            deadline: self.deadline,
            adj_cache: self.adj_cache.clone(),
        }
    }

    /// A shallow clone whose SQL-issuing operations abort with
    /// [`GraphError::Timeout`] once `deadline` passes. `None` removes any
    /// deadline.
    pub fn with_deadline(&self, deadline: Option<std::time::Instant>) -> Db2GraphBackend {
        Db2GraphBackend {
            topo: self.topo.clone(),
            dialect: self.dialect.clone(),
            stats: self.stats.clone(),
            profiler: self.profiler.clone(),
            threads: self.threads,
            read_view: self.read_view.clone(),
            deadline,
            adj_cache: self.adj_cache.clone(),
        }
    }

    /// Attach (or detach) the columnar adjacency cache. Installed once by
    /// [`crate::graph::Db2Graph`] at open; per-query shallow clones then
    /// share the one instance.
    pub fn with_adj_cache(mut self, cache: Option<Arc<AdjCache>>) -> Db2GraphBackend {
        self.adj_cache = cache;
        self
    }

    /// The attached adjacency cache, if any.
    pub fn adj_cache(&self) -> Option<&Arc<AdjCache>> {
        self.adj_cache.as_ref()
    }

    /// Eagerly build *complete* cache segments (both directions) for every
    /// edge table by scanning them once at this backend's pinned snapshot.
    /// Complete segments answer even never-probed sources (absent = empty
    /// adjacency). Returns the number of edges cached, or 0 when the
    /// cache is disabled or the backend is unpinned/stamped.
    pub fn warm_adj_cache(&self) -> GraphResult<usize> {
        let Some(cache) = &self.adj_cache else { return Ok(0) };
        let Some(snap) = &self.read_view else { return Ok(0) };
        if snap.stamp() != 0 || self.profiler.is_enabled() {
            return Ok(0);
        }
        let epoch = snap.epoch();
        let filter = ElementFilter::default();
        let mut cached = 0usize;
        for (ei, et) in self.topo.edge_tables.iter().enumerate() {
            let edges: Vec<Edge> = match self.query_edge_table(et, &filter)? {
                TableResult::Elements(es) => es
                    .into_iter()
                    .filter_map(|el| match el {
                        Element::Edge(e) => Some(e),
                        _ => None,
                    })
                    .collect(),
                _ => Vec::new(),
            };
            let refs: Vec<&Edge> = edges.iter().collect();
            cache.insert_complete(ei, true, &et.name, &refs, epoch);
            cache.insert_complete(ei, false, &et.name, &refs, epoch);
            cached += edges.len();
        }
        Ok(cached)
    }

    /// Cooperative cancellation check, called on every SQL-issuing path
    /// (table scans, adjacency probes, endpoint lookups, aggregates) so a
    /// traversal's statement loop stops within one statement of the
    /// deadline passing — including inside fan-out worker jobs, which
    /// inherit the deadline through the shallow clones above.
    fn check_deadline(&self) -> GraphResult<()> {
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => Err(GraphError::Timeout),
            _ => Ok(()),
        }
    }

    /// Override the intra-query worker count (clamped to at least 1). The
    /// default comes from `DB2GRAPH_THREADS` / available parallelism.
    pub fn with_threads(mut self, threads: usize) -> Db2GraphBackend {
        self.threads = threads.max(1);
        self
    }

    /// The effective intra-query worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fan independent probe jobs out over the worker pool.
    ///
    /// Each job runs against a shallow backend clone whose profiler is a
    /// fresh fork; after the pool joins, the forks are absorbed back into
    /// this backend's profiler **in job order**, so `.profile()` output is
    /// identical to sequential execution modulo timing. Results likewise
    /// come back in job order, and the first error in job order wins —
    /// callers observe no scheduling effects.
    ///
    /// When tracing is enabled each job runs inside a `worker` span on its
    /// fork's tracer; absorbing re-parents those spans under whatever span
    /// is open at the fan-out site (the executor step), so trace structure
    /// is the same at any thread count.
    fn fan_out<T, F>(&self, jobs: Vec<F>) -> GraphResult<Vec<T>>
    where
        T: Send,
        F: FnOnce(&Db2GraphBackend) -> GraphResult<T> + Send,
    {
        let clones: Vec<Db2GraphBackend> =
            jobs.iter().map(|_| self.with_profiler(self.profiler.fork())).collect();
        let work: Vec<_> = jobs
            .into_iter()
            .zip(&clones)
            .enumerate()
            .map(|(i, (job, be))| {
                move || {
                    let tracer = be.profiler.tracer();
                    let span = tracer
                        .start_with("worker", crate::trace::SpanKind::Worker, || {
                            vec![("job".to_string(), i.to_string())]
                        });
                    let out = job(be);
                    tracer.end(span);
                    out
                }
            })
            .collect();
        let results = pool::run_ordered(self.threads, work);
        for be in &clones {
            self.profiler.absorb(&be.profiler);
        }
        results.into_iter().collect()
    }

    /// The always-on aggregate counters shared with the SQL dialect.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        self.dialect.registry()
    }

    pub fn stats(&self) -> &OverlayStats {
        &self.stats
    }

    pub fn dialect(&self) -> &SqlDialect {
        &self.dialect
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    // ---------------------------------------------------------- vertices

    /// Columns to SELECT for vertices of `vt` under an optional projection.
    fn vertex_columns(&self, vt: &VertexTable, projection: Option<&[String]>) -> (Vec<String>, Vec<String>) {
        let mut cols: Vec<String> = vt.id.columns().iter().map(|c| c.to_string()).collect();
        if let LabelDef::Column(c) = &vt.label {
            if !cols.iter().any(|x| x.eq_ignore_ascii_case(c)) {
                cols.push(c.clone());
            }
        }
        let props: Vec<String> = match projection {
            Some(keys) => vt
                .properties
                .iter()
                .filter(|p| keys.iter().any(|k| k.eq_ignore_ascii_case(p)))
                .cloned()
                .collect(),
            None => vt.properties.clone(),
        };
        for p in &props {
            if !cols.iter().any(|x| x.eq_ignore_ascii_case(p)) {
                cols.push(p.clone());
            }
        }
        (cols, props)
    }

    /// Materialize a vertex from a result row.
    fn vertex_from_row(&self, vt: &VertexTable, rs: &RowSet, row: &Row) -> GraphResult<Vertex> {
        let id_vals: Vec<Value> = vt
            .id
            .columns()
            .iter()
            .map(|c| {
                let i = rs.column_index(c).expect("id column selected");
                row[i].clone()
            })
            .collect();
        let id = vt.id.encode(&id_vals)?;
        let label = match &vt.label {
            LabelDef::Fixed(l) => l.clone(),
            LabelDef::Column(c) => {
                let i = rs.column_index(c).expect("label column selected");
                row[i].to_string()
            }
        };
        let mut v = Vertex::new(id, label);
        for p in &vt.properties {
            if let Some(i) = rs.column_index(p) {
                if !row[i].is_null() {
                    v.properties.insert(p.clone(), to_gvalue(&row[i]));
                }
            }
        }
        v.provenance = Some(vt.name.clone());
        Ok(v)
    }

    /// Translate a property predicate into a SQL conjunct for a table that
    /// has the column. Returns `None` when it cannot be pushed (the caller
    /// must post-filter).
    fn pred_to_sql(col: &str, pred: &Pred) -> Option<(String, Vec<Value>)> {
        let conv = |g: &GValue| to_value(g);
        Some(match pred {
            Pred::Eq(v) => (format!("{} = ?", ident(col)), vec![conv(v)?]),
            Pred::Neq(v) => (format!("{} <> ?", ident(col)), vec![conv(v)?]),
            Pred::Gt(v) => (format!("{} > ?", ident(col)), vec![conv(v)?]),
            Pred::Gte(v) => (format!("{} >= ?", ident(col)), vec![conv(v)?]),
            Pred::Lt(v) => (format!("{} < ?", ident(col)), vec![conv(v)?]),
            Pred::Lte(v) => (format!("{} <= ?", ident(col)), vec![conv(v)?]),
            Pred::Within(vs) => {
                let mut vals: Vec<Value> = vs.iter().map(conv).collect::<Option<_>>()?;
                if vals.is_empty() {
                    return None;
                }
                let sql = in_list_bucketed(col, &mut vals);
                (sql, vals)
            }
            Pred::Between(lo, hi) => (
                format!("({c} >= ? AND {c} < ?)", c = ident(col)),
                vec![conv(lo)?, conv(hi)?],
            ),
            Pred::Exists => (format!("{} IS NOT NULL", ident(col)), Vec::new()),
            Pred::Absent => (format!("{} IS NULL", ident(col)), Vec::new()),
        })
    }

    /// Build id-based conjuncts for a vertex table from a set of element
    /// ids. Returns `None` when no id can belong to this table (table is
    /// eliminated).
    fn id_conjunct_for(
        def: &IdDef,
        column_type: impl Fn(&str) -> Option<DataType>,
        ids: &[ElementId],
    ) -> GraphResult<Option<(String, Vec<Value>)>> {
        let cols = def.columns();
        let mut keys: Vec<Vec<Value>> = Vec::new();
        for id in ids {
            if let Some(parts) = def.decode(id) {
                let mut key = Vec::with_capacity(parts.len());
                let mut ok = true;
                for (text, col) in parts.iter().zip(&cols) {
                    match coerce_id_text(text, column_type(col)) {
                        Ok(v) => key.push(v),
                        Err(_) => {
                            // Type mismatch (e.g. text fragment for a
                            // BIGINT column): this id can't be here.
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    keys.push(key);
                }
            }
        }
        if keys.is_empty() {
            return Ok(None);
        }
        // Bucketed arity: the generated template depends only on
        // log2(|ids|), so frontier-size jitter reuses prepared statements.
        if cols.len() == 1 {
            let mut params: Vec<Value> = keys.into_iter().map(|mut k| k.remove(0)).collect();
            let sql = in_list_bucketed(cols[0], &mut params);
            Ok(Some((sql, params)))
        } else {
            let sql = composite_in_bucketed(&cols, &mut keys);
            let params: Vec<Value> = keys.into_iter().flatten().collect();
            Ok(Some((sql, params)))
        }
    }

    fn fetch_vertices(&self, filter: &ElementFilter) -> GraphResult<BackendOutput> {
        self.stats.record_considered(self.topo.vertex_tables.len() as u64);
        let mut outputs: Vec<Element> = Vec::new();
        let mut values: Vec<GValue> = Vec::new();
        let mut agg = AggCombiner::new(filter.aggregate);
        let mut pruned = 0u64;

        // One scan job per vertex table; merged in table order.
        let results = self.fan_out(
            self.topo
                .vertex_tables
                .iter()
                .map(|vt| move |be: &Db2GraphBackend| be.query_vertex_table(vt, filter, false))
                .collect(),
        )?;
        for r in results {
            match r {
                TableResult::Pruned => pruned += 1,
                TableResult::Elements(es) => outputs.extend(es),
                TableResult::Values(vs) => values.extend(vs),
                TableResult::Agg(parts) => agg.add(parts),
            }
        }
        self.stats.record_pruned(pruned);
        if filter.aggregate.is_some() {
            return Ok(agg.finish());
        }
        if filter.projection.is_some() {
            return Ok(BackendOutput::Values(values));
        }
        Ok(BackendOutput::Elements(outputs))
    }

    /// Decide how a vertex table would be accessed for a filter, without
    /// executing anything: eliminated (with the reason) or scanned with
    /// the given conjuncts. Shared by the execution path and `explain()`.
    fn vertex_table_access(
        &self,
        vt: &VertexTable,
        filter: &ElementFilter,
    ) -> GraphResult<TableAccess> {
        // --- Using Label Values: eliminate fixed-label mismatches.
        if let (Some(labels), Some(fixed)) = (&filter.labels, vt.fixed_label()) {
            if !labels.iter().any(|l| l == fixed) {
                return Ok(TableAccess::Pruned(format!(
                    "fixed label '{fixed}' not in requested labels"
                )));
            }
        }
        // --- Using Property Names: predicates and projections require the
        // property to exist on this table.
        for p in &filter.predicates {
            if p.key != "label" && p.key != "id" && !vt.has_property(&p.key) {
                // hasNot on a property the table doesn't have is trivially
                // satisfied; anything else eliminates the table.
                if !matches!(p.pred, Pred::Absent) {
                    return Ok(TableAccess::Pruned(format!(
                        "no property column for '{}'",
                        p.key
                    )));
                }
            }
        }
        if let Some(keys) = &filter.projection {
            if !keys.iter().any(|k| vt.has_property(k)) {
                return Ok(TableAccess::Pruned("no projected property column".into()));
            }
        }

        let mut plan = ScanPlan::default();

        // --- Using Prefixed Id Values: decode ids; prune on no match.
        if let Some(ids) = &filter.ids {
            match Self::id_conjunct_for(&vt.id, |c| vt.column_type(c), ids)? {
                None => {
                    return Ok(TableAccess::Pruned(
                        "no requested id fits this table (id prefix or type mismatch)".into(),
                    ))
                }
                Some((sql, mut p)) => {
                    plan.conjuncts.push(sql);
                    plan.params.append(&mut p);
                    plan.pattern_cols.extend(vt.id.columns().iter().map(|c| c.to_string()));
                }
            }
        }
        // Label predicate on a label column.
        if let Some(labels) = &filter.labels {
            if let LabelDef::Column(c) = &vt.label {
                let mut vals: Vec<Value> =
                    labels.iter().map(|l| Value::Varchar(l.clone())).collect();
                plan.conjuncts.push(in_list_bucketed(c, &mut vals));
                plan.params.extend(vals);
                plan.pattern_cols.push(c.clone());
            }
        }
        // Property predicates.
        for p in &filter.predicates {
            let col = match (p.key.as_str(), &vt.label) {
                ("label", LabelDef::Column(c)) => c.clone(),
                ("label", LabelDef::Fixed(fixed)) => {
                    // Evaluate against the constant now.
                    if !p.pred.test(Some(&GValue::Str(fixed.clone()))) {
                        return Ok(TableAccess::Pruned(format!(
                            "fixed label '{fixed}' fails the label predicate"
                        )));
                    }
                    continue;
                }
                ("id", _) => {
                    // hasId predicates that weren't folded into filter.ids:
                    // post-filter below.
                    continue;
                }
                _ => p.key.clone(),
            };
            if !vt.has_column(&col) {
                // Only reachable for hasNot on an absent column: trivially
                // true, nothing to push.
                continue;
            }
            match Self::pred_to_sql(&col, &p.pred) {
                Some((sql, mut ps)) => {
                    plan.conjuncts.push(sql);
                    plan.params.append(&mut ps);
                    plan.pattern_cols.push(col);
                }
                None => { /* post-filtered below */ }
            }
        }
        Ok(TableAccess::Scan(plan))
    }

    /// `pinned` marks accesses where the table was selected directly (the
    /// src/dst vertex table optimization) instead of considered among all
    /// tables; it only affects how the decision is profiled.
    fn query_vertex_table(
        &self,
        vt: &VertexTable,
        filter: &ElementFilter,
        pinned: bool,
    ) -> GraphResult<TableResult> {
        self.check_deadline()?;
        let ScanPlan { conjuncts, params, mut pattern_cols, .. } =
            match self.vertex_table_access(vt, filter)? {
                TableAccess::Pruned(reason) => {
                    self.profiler.record_table(&vt.name, TableAction::Pruned(reason));
                    return Ok(TableResult::Pruned);
                }
                TableAccess::Scan(plan) => plan,
            };
        self.profiler.record_table(
            &vt.name,
            if pinned { TableAction::Pinned } else { TableAction::Queried },
        );

        // Aggregate pushdown.
        if let Some(op) = filter.aggregate {
            return self.run_aggregate(
                &vt.name,
                &conjuncts,
                &params,
                &pattern_cols,
                op,
                filter.projection.as_deref(),
                |k| vt.has_property(k),
                |k| vt.column_type(k),
            );
        }

        let (cols, props) = self.vertex_columns(vt, filter.projection.as_deref());
        let sql = build_select(&vt.name, &cols, &conjuncts, None);
        pattern_cols.sort();
        pattern_cols.dedup();
        let rs = self
            .dialect
            .query_at(
                &self.stats,
                &self.profiler,
                &sql,
                &params,
                Some((&vt.name, &pattern_cols)),
                self.read_view.as_ref(),
            )
            .map_err(GraphError::Db)?;

        if let Some(keys) = &filter.projection {
            // Projection pushdown: emit scalar values in requested order.
            let mut out = Vec::new();
            for row in &rs.rows {
                for k in keys {
                    if props.iter().any(|p| p.eq_ignore_ascii_case(k)) {
                        if let Some(i) = rs.column_index(k) {
                            if !row[i].is_null() {
                                out.push(to_gvalue(&row[i]));
                            }
                        }
                    }
                }
            }
            return Ok(TableResult::Values(out));
        }

        let mut out = Vec::with_capacity(rs.rows.len());
        for row in &rs.rows {
            let v = self.vertex_from_row(vt, &rs, row)?;
            let el = Element::Vertex(v);
            // Residual check covers anything not pushed to SQL.
            if filter.matches(&el) {
                out.push(el);
            }
        }
        Ok(TableResult::Elements(out))
    }

    // ------------------------------------------------------------- edges

    fn edge_columns(&self, et: &EdgeTable, projection: Option<&[String]>) -> (Vec<String>, Vec<String>) {
        let mut cols: Vec<String> = Vec::new();
        let push = |c: &str, cols: &mut Vec<String>| {
            if !cols.iter().any(|x| x.eq_ignore_ascii_case(c)) {
                cols.push(c.to_string());
            }
        };
        for c in et.src_v.columns() {
            push(c, &mut cols);
        }
        for c in et.dst_v.columns() {
            push(c, &mut cols);
        }
        if let EdgeIdDef::Explicit(def) = &et.id {
            for c in def.columns() {
                push(c, &mut cols);
            }
        }
        if let LabelDef::Column(c) = &et.label {
            push(c, &mut cols);
        }
        let props: Vec<String> = match projection {
            Some(keys) => et
                .properties
                .iter()
                .filter(|p| keys.iter().any(|k| k.eq_ignore_ascii_case(p)))
                .cloned()
                .collect(),
            None => et.properties.clone(),
        };
        for p in &props {
            push(p, &mut cols);
        }
        (cols, props)
    }

    fn edge_from_row(&self, et: &EdgeTable, rs: &RowSet, row: &Row) -> GraphResult<Edge> {
        let get_vals = |def: &IdDef| -> Vec<Value> {
            def.columns()
                .iter()
                .map(|c| {
                    let i = rs.column_index(c).expect("endpoint column selected");
                    row[i].clone()
                })
                .collect()
        };
        let src = et.src_v.encode(&get_vals(&et.src_v))?;
        let dst = et.dst_v.encode(&get_vals(&et.dst_v))?;
        let label = match &et.label {
            LabelDef::Fixed(l) => l.clone(),
            LabelDef::Column(c) => {
                let i = rs.column_index(c).expect("label column selected");
                row[i].to_string()
            }
        };
        let id = match &et.id {
            EdgeIdDef::Explicit(def) => def.encode(&get_vals(def))?,
            EdgeIdDef::Implicit => implicit_edge_id(&src, &label, &dst),
        };
        let mut e = Edge::new(id, label, src, dst);
        for p in &et.properties {
            if let Some(i) = rs.column_index(p) {
                if !row[i].is_null() {
                    e.properties.insert(p.clone(), to_gvalue(&row[i]));
                }
            }
        }
        e.provenance = Some(et.name.clone());
        Ok(e)
    }

    fn fetch_edges(&self, filter: &ElementFilter) -> GraphResult<BackendOutput> {
        self.stats.record_considered(self.topo.edge_tables.len() as u64);
        let mut outputs: Vec<Element> = Vec::new();
        let mut values: Vec<GValue> = Vec::new();
        let mut agg = AggCombiner::new(filter.aggregate);
        let mut pruned = 0u64;
        // One scan job per edge table; merged in table order.
        let results = self.fan_out(
            self.topo
                .edge_tables
                .iter()
                .map(|et| move |be: &Db2GraphBackend| be.query_edge_table(et, filter))
                .collect(),
        )?;
        for r in results {
            match r {
                TableResult::Pruned => pruned += 1,
                TableResult::Elements(es) => outputs.extend(es),
                TableResult::Values(vs) => values.extend(vs),
                TableResult::Agg(parts) => agg.add(parts),
            }
        }
        self.stats.record_pruned(pruned);
        if filter.aggregate.is_some() {
            return Ok(agg.finish());
        }
        if filter.projection.is_some() {
            return Ok(BackendOutput::Values(values));
        }
        Ok(BackendOutput::Elements(outputs))
    }

    /// Edge-table counterpart of [`Self::vertex_table_access`]: decide,
    /// without executing, whether the table is eliminated or how it would
    /// be scanned.
    fn edge_table_access(
        &self,
        et: &EdgeTable,
        filter: &ElementFilter,
    ) -> GraphResult<TableAccess> {
        if let (Some(labels), Some(fixed)) = (&filter.labels, et.fixed_label()) {
            if !labels.iter().any(|l| l == fixed) {
                return Ok(TableAccess::Pruned(format!(
                    "fixed label '{fixed}' not in requested labels"
                )));
            }
        }
        for p in &filter.predicates {
            if p.key != "label"
                && p.key != "id"
                && !et.has_property(&p.key)
                && !matches!(p.pred, Pred::Absent)
            {
                return Ok(TableAccess::Pruned(format!(
                    "no property column for '{}'",
                    p.key
                )));
            }
        }
        if let Some(keys) = &filter.projection {
            if !keys.iter().any(|k| et.has_property(k)) {
                return Ok(TableAccess::Pruned("no projected property column".into()));
            }
        }

        let mut plan = ScanPlan::default();

        // --- Edge ids (explicit or implicit).
        if let Some(ids) = &filter.ids {
            match &et.id {
                EdgeIdDef::Explicit(def) => {
                    match Self::id_conjunct_for(def, |c| et.column_type(c), ids)? {
                        None => {
                            return Ok(TableAccess::Pruned(
                                "no requested id fits this table (id prefix or type mismatch)"
                                    .into(),
                            ))
                        }
                        Some((sql, mut p)) => {
                            plan.conjuncts.push(sql);
                            plan.params.append(&mut p);
                            plan.pattern_cols.extend(def.columns().iter().map(|c| c.to_string()));
                        }
                    }
                }
                EdgeIdDef::Implicit => {
                    if let Some(fixed) = et.fixed_label() {
                        // --- Using Implicit Edge Id Values: label inside the
                        // id eliminates tables; parts become predicates.
                        let mut src_ids = Vec::new();
                        let mut dst_ids = Vec::new();
                        for id in ids {
                            if let Some((s, d)) = split_implicit_edge_id(id, fixed) {
                                src_ids.push(ElementId::Str(s));
                                dst_ids.push(ElementId::Str(d));
                            }
                        }
                        if src_ids.is_empty() {
                            return Ok(TableAccess::Pruned(format!(
                                "no implicit edge id embeds label '{fixed}'"
                            )));
                        }
                        let src_c =
                            Self::id_conjunct_for(&et.src_v, |c| et.column_type(c), &src_ids)?;
                        let dst_c =
                            Self::id_conjunct_for(&et.dst_v, |c| et.column_type(c), &dst_ids)?;
                        match (src_c, dst_c) {
                            (Some((s_sql, mut s_p)), Some((d_sql, mut d_p))) => {
                                plan.conjuncts.push(s_sql);
                                plan.params.append(&mut s_p);
                                plan.conjuncts.push(d_sql);
                                plan.params.append(&mut d_p);
                                plan.pattern_cols
                                    .extend(et.src_v.columns().iter().map(|c| c.to_string()));
                                plan.pattern_cols
                                    .extend(et.dst_v.columns().iter().map(|c| c.to_string()));
                            }
                            _ => {
                                return Ok(TableAccess::Pruned(
                                    "implicit edge id endpoints do not fit this table".into(),
                                ))
                            }
                        }
                    } else {
                        // Column label: cannot decompose without knowing the
                        // label; fetch and post-filter by computed id.
                        plan.post_filter_ids = true;
                    }
                }
            }
        }

        // --- src/dst id constraints (GraphStep::VertexStep mutation).
        for (def, ids_opt, which) in [
            (&et.src_v, &filter.src_ids, "src"),
            (&et.dst_v, &filter.dst_ids, "dst"),
        ] {
            if let Some(ids) = ids_opt {
                match Self::id_conjunct_for(def, |c| et.column_type(c), ids)? {
                    None => {
                        return Ok(TableAccess::Pruned(format!(
                            "no {which} endpoint id fits this table"
                        )))
                    }
                    Some((sql, mut p)) => {
                        plan.conjuncts.push(sql);
                        plan.params.append(&mut p);
                        plan.pattern_cols.extend(def.columns().iter().map(|c| c.to_string()));
                    }
                }
            }
        }

        if let Some(labels) = &filter.labels {
            if let LabelDef::Column(c) = &et.label {
                let mut vals: Vec<Value> =
                    labels.iter().map(|l| Value::Varchar(l.clone())).collect();
                plan.conjuncts.push(in_list_bucketed(c, &mut vals));
                plan.params.extend(vals);
                plan.pattern_cols.push(c.clone());
            }
        }
        for p in &filter.predicates {
            let col = match (p.key.as_str(), &et.label) {
                ("label", LabelDef::Column(c)) => c.clone(),
                ("label", LabelDef::Fixed(fixed)) => {
                    if !p.pred.test(Some(&GValue::Str(fixed.clone()))) {
                        return Ok(TableAccess::Pruned(format!(
                            "fixed label '{fixed}' fails the label predicate"
                        )));
                    }
                    continue;
                }
                ("id", _) => continue,
                _ => p.key.clone(),
            };
            if !et.has_column(&col) {
                continue;
            }
            if let Some((sql, mut ps)) = Self::pred_to_sql(&col, &p.pred) {
                plan.conjuncts.push(sql);
                plan.params.append(&mut ps);
                plan.pattern_cols.push(col);
            }
        }
        Ok(TableAccess::Scan(plan))
    }

    fn query_edge_table(&self, et: &EdgeTable, filter: &ElementFilter) -> GraphResult<TableResult> {
        self.check_deadline()?;
        let ScanPlan { conjuncts, params, mut pattern_cols, post_filter_ids } =
            match self.edge_table_access(et, filter)? {
                TableAccess::Pruned(reason) => {
                    self.profiler.record_table(&et.name, TableAction::Pruned(reason));
                    return Ok(TableResult::Pruned);
                }
                TableAccess::Scan(plan) => plan,
            };
        self.profiler.record_table(&et.name, TableAction::Queried);

        if let Some(op) = filter.aggregate {
            if !post_filter_ids {
                return self.run_aggregate(
                    &et.name,
                    &conjuncts,
                    &params,
                    &pattern_cols,
                    op,
                    filter.projection.as_deref(),
                    |k| et.has_property(k),
                    |k| et.column_type(k),
                );
            }
        }

        let (cols, props) = self.edge_columns(et, filter.projection.as_deref());
        let sql = build_select(&et.name, &cols, &conjuncts, None);
        pattern_cols.sort();
        pattern_cols.dedup();
        let rs = self
            .dialect
            .query_at(
                &self.stats,
                &self.profiler,
                &sql,
                &params,
                Some((&et.name, &pattern_cols)),
                self.read_view.as_ref(),
            )
            .map_err(GraphError::Db)?;

        let mut elements: Vec<Element> = Vec::with_capacity(rs.rows.len());
        for row in &rs.rows {
            let e = self.edge_from_row(et, &rs, row)?;
            let el = Element::Edge(e);
            if filter.matches(&el) {
                elements.push(el);
            } else if !post_filter_ids {
                // filter.matches re-checks ids; when ids were pushed to SQL
                // this should never reject.
                continue;
            }
        }

        if let Some(op) = filter.aggregate {
            // Post-filtered aggregate fallback.
            return Ok(TableResult::Agg(AggParts::from_count(op, elements.len() as i64)));
        }
        if let Some(keys) = &filter.projection {
            let mut out = Vec::new();
            for el in &elements {
                for k in keys {
                    if props.iter().any(|p| p.eq_ignore_ascii_case(k)) {
                        if let Some(v) = el.properties().get(k) {
                            out.push(v.clone());
                        }
                    }
                }
            }
            return Ok(TableResult::Values(out));
        }
        Ok(TableResult::Elements(elements))
    }

    /// Run an aggregate-pushdown query for one table.
    #[allow(clippy::too_many_arguments)]
    fn run_aggregate(
        &self,
        table: &str,
        conjuncts: &[String],
        params: &[Value],
        pattern_cols: &[String],
        op: AggOp,
        projection: Option<&[String]>,
        has_property: impl Fn(&str) -> bool,
        column_type: impl Fn(&str) -> Option<DataType>,
    ) -> GraphResult<TableResult> {
        let mut pattern_cols = pattern_cols.to_vec();
        pattern_cols.sort();
        pattern_cols.dedup();
        let pattern = Some((table, pattern_cols.as_slice()));
        match (op, projection) {
            (AggOp::Count, None) => {
                let sql = build_select(table, &[], conjuncts, Some("COUNT(*)"));
                let rs = self
                    .dialect
                    .query_at(&self.stats, &self.profiler, &sql, params, pattern, self.read_view.as_ref())
                    .map_err(GraphError::Db)?;
                let n = rs.scalar().and_then(|v| v.as_i64().ok()).unwrap_or(0);
                Ok(TableResult::Agg(AggParts::from_count(op, n)))
            }
            (op, keys) => {
                // Aggregate over projected property values: per key, issue
                // the aggregate + count so mean combines across tables.
                let keys: Vec<String> = keys
                    .map(|ks| ks.iter().filter(|k| has_property(k)).cloned().collect())
                    .unwrap_or_default();
                if keys.is_empty() {
                    // count() over elements.
                    let sql = build_select(table, &[], conjuncts, Some("COUNT(*)"));
                    let rs = self
                        .dialect
                        .query_at(&self.stats, &self.profiler, &sql, params, pattern, self.read_view.as_ref())
                        .map_err(GraphError::Db)?;
                    let n = rs.scalar().and_then(|v| v.as_i64().ok()).unwrap_or(0);
                    return Ok(TableResult::Agg(AggParts::from_count(op, n)));
                }
                let mut parts = AggParts::empty(op);
                for k in &keys {
                    let func = match op {
                        AggOp::Count => format!("COUNT({})", ident(k)),
                        AggOp::Sum => format!("SUM({})", ident(k)),
                        AggOp::Mean => format!("SUM({0}), COUNT({0})", ident(k)),
                        AggOp::Min => format!("MIN({})", ident(k)),
                        AggOp::Max => format!("MAX({})", ident(k)),
                    };
                    let sql = build_select(table, &[], conjuncts, Some(&func));
                    let rs = self
                        .dialect
                        .query_at(&self.stats, &self.profiler, &sql, params, pattern, self.read_view.as_ref())
                        .map_err(GraphError::Db)?;
                    let row = rs.rows.first();
                    let all_long = matches!(column_type(k), Some(DataType::Bigint));
                    match op {
                        AggOp::Count => {
                            let n = row
                                .and_then(|r| r.first())
                                .and_then(|v| v.as_i64().ok())
                                .unwrap_or(0);
                            parts.count += n;
                        }
                        AggOp::Sum | AggOp::Mean => {
                            if let Some(r) = row {
                                if let Ok(s) = r[0].as_f64() {
                                    parts.sum += s;
                                    parts.saw_values = true;
                                }
                                if op == AggOp::Mean {
                                    parts.count += r[1].as_i64().unwrap_or(0);
                                } else {
                                    parts.count += 1;
                                }
                                parts.all_long &= all_long;
                            }
                        }
                        AggOp::Min | AggOp::Max => {
                            if let Some(r) = row {
                                if !r[0].is_null() {
                                    let v = to_gvalue(&r[0]);
                                    parts.merge_minmax(op, v);
                                }
                            }
                        }
                    }
                }
                Ok(TableResult::Agg(parts))
            }
        }
    }

    // --------------------------------------------------- vertex lookups

    /// Bulk-resolve vertices by id. `hint` (a vertex-table index) pins the
    /// table directly — the src/dst vertex table optimization. Without a
    /// hint, prefixed-id decoding eliminates tables.
    pub(crate) fn lookup_vertices(
        &self,
        ids: &[ElementId],
        hint: Option<usize>,
        filter: &ElementFilter,
    ) -> GraphResult<HashMap<ElementId, Vertex>> {
        let mut out = HashMap::with_capacity(ids.len());
        if ids.is_empty() {
            return Ok(out);
        }
        self.check_deadline()?;
        let unique_ids: Vec<ElementId> = {
            // An id constraint already on the filter (a pushed-down hasId)
            // intersects with the requested endpoint ids.
            let allowed: Option<HashSet<&ElementId>> =
                filter.ids.as_ref().map(|v| v.iter().collect());
            let mut seen = HashSet::new();
            ids.iter()
                .filter(|i| allowed.as_ref().map(|a| a.contains(i)).unwrap_or(true))
                .filter(|i| seen.insert((*i).clone()))
                .cloned()
                .collect()
        };
        if unique_ids.is_empty() {
            return Ok(out);
        }
        let candidates: Vec<usize> = match hint {
            Some(i) => {
                self.stats.record_considered(1);
                vec![i]
            }
            None => {
                self.stats.record_considered(self.topo.vertex_tables.len() as u64);
                (0..self.topo.vertex_tables.len()).collect()
            }
        };
        // One job per (candidate table × id chunk); large frontiers split
        // so each statement stays within the template bucket ceiling.
        let chunks: Vec<&[ElementId]> = unique_ids.chunks(MAX_FRONTIER_CHUNK).collect();
        let mut jobs: Vec<(usize, &[ElementId])> = Vec::new();
        for &ti in &candidates {
            for chunk in &chunks {
                jobs.push((ti, chunk));
            }
        }
        let results = self.fan_out(
            jobs.iter()
                .map(|&(ti, chunk)| {
                    move |be: &Db2GraphBackend| {
                        let vt = &be.topo.vertex_tables[ti];
                        let mut sub = filter.clone();
                        sub.ids = Some(chunk.to_vec());
                        sub.projection = None;
                        sub.aggregate = None;
                        be.query_vertex_table(vt, &sub, hint.is_some())
                    }
                })
                .collect(),
        )?;
        // A table counts as pruned only when every one of its chunks was.
        let mut chunks_pruned: HashMap<usize, usize> = HashMap::new();
        for (&(ti, _), r) in jobs.iter().zip(results) {
            match r {
                TableResult::Pruned => *chunks_pruned.entry(ti).or_insert(0) += 1,
                TableResult::Elements(es) => {
                    for el in es {
                        if let Element::Vertex(v) = el {
                            out.insert(v.id.clone(), v);
                        }
                    }
                }
                _ => unreachable!("projection/aggregate cleared"),
            }
        }
        let pruned =
            chunks_pruned.values().filter(|&&n| n == chunks.len()).count() as u64;
        self.stats.record_pruned(pruned);
        Ok(out)
    }

    /// "When a vertex table is also an edge table": construct the endpoint
    /// vertex directly from the edge when the vertex table *is* the edge's
    /// table and the vertex's properties are subsumed by the edge's.
    fn vertex_from_edge(&self, edge: &Edge, endpoint: &ElementId, vt_idx: usize) -> Option<Vertex> {
        let vt = &self.topo.vertex_tables[vt_idx];
        let et_name = edge.provenance.as_deref()?;
        if !vt.name.eq_ignore_ascii_case(et_name) {
            return None;
        }
        let label = vt.fixed_label()?;
        // Vertex property columns must be subsumed by the edge's
        // configured property columns.
        let et_idx = self.topo.edge_table_index(et_name)?;
        let et = &self.topo.edge_tables[et_idx];
        if !vt.properties.iter().all(|p| et.properties.iter().any(|q| q.eq_ignore_ascii_case(p))) {
            return None;
        }
        let mut v = Vertex::new(endpoint.clone(), label);
        for p in &vt.properties {
            if let Some(val) = edge.properties.get(p) {
                v.properties.insert(p.clone(), val.clone());
            }
        }
        v.provenance = Some(vt.name.clone());
        self.stats.record_vertex_from_edge(1);
        Some(v)
    }

    // ----------------------------------------------------------- explain

    /// The SQL statements an aggregate pushdown would issue, mirroring the
    /// shapes [`Self::run_aggregate`] executes.
    fn aggregate_sqls(table: &str, conjuncts: &[String], op: AggOp, keys: &[String]) -> Vec<String> {
        if keys.is_empty() {
            return vec![build_select(table, &[], conjuncts, Some("COUNT(*)"))];
        }
        keys.iter()
            .map(|k| {
                let func = match op {
                    AggOp::Count => format!("COUNT({})", ident(k)),
                    AggOp::Sum => format!("SUM({})", ident(k)),
                    AggOp::Mean => format!("SUM({0}), COUNT({0})", ident(k)),
                    AggOp::Min => format!("MIN({})", ident(k)),
                    AggOp::Max => format!("MAX({})", ident(k)),
                };
                build_select(table, &[], conjuncts, Some(&func))
            })
            .collect()
    }

    /// Dry-run a `V()`/`E()` step: per table, either the SQL it would
    /// generate or the reason it is eliminated. No data is touched.
    pub fn explain_elements(
        &self,
        kind: ElementKind,
        filter: &ElementFilter,
    ) -> GraphResult<Vec<TableExplain>> {
        let mut out = Vec::new();
        match kind {
            ElementKind::Vertices => {
                for vt in &self.topo.vertex_tables {
                    let plan = match self.vertex_table_access(vt, filter)? {
                        TableAccess::Pruned(reason) => {
                            out.push(TableExplain {
                                table: vt.name.clone(),
                                plan: TablePlan::Pruned { reason },
                            });
                            continue;
                        }
                        TableAccess::Scan(p) => p,
                    };
                    let sql = match filter.aggregate {
                        Some(op) => {
                            let keys: Vec<String> = filter
                                .projection
                                .as_deref()
                                .map(|ks| {
                                    ks.iter().filter(|k| vt.has_property(k)).cloned().collect()
                                })
                                .unwrap_or_default();
                            Self::aggregate_sqls(&vt.name, &plan.conjuncts, op, &keys)
                        }
                        None => {
                            let (cols, _) =
                                self.vertex_columns(vt, filter.projection.as_deref());
                            vec![build_select(&vt.name, &cols, &plan.conjuncts, None)]
                        }
                    };
                    out.push(TableExplain {
                        table: vt.name.clone(),
                        plan: TablePlan::Query { sql },
                    });
                }
            }
            ElementKind::Edges => {
                for et in &self.topo.edge_tables {
                    let plan = match self.edge_table_access(et, filter)? {
                        TableAccess::Pruned(reason) => {
                            out.push(TableExplain {
                                table: et.name.clone(),
                                plan: TablePlan::Pruned { reason },
                            });
                            continue;
                        }
                        TableAccess::Scan(p) => p,
                    };
                    let sql = match filter.aggregate {
                        // A post-filtered id check forces materialization,
                        // as in query_edge_table.
                        Some(op) if !plan.post_filter_ids => {
                            let keys: Vec<String> = filter
                                .projection
                                .as_deref()
                                .map(|ks| {
                                    ks.iter().filter(|k| et.has_property(k)).cloned().collect()
                                })
                                .unwrap_or_default();
                            Self::aggregate_sqls(&et.name, &plan.conjuncts, op, &keys)
                        }
                        _ => {
                            let (cols, _) = self.edge_columns(et, filter.projection.as_deref());
                            vec![build_select(&et.name, &cols, &plan.conjuncts, None)]
                        }
                    };
                    out.push(TableExplain {
                        table: et.name.clone(),
                        plan: TablePlan::Query { sql },
                    });
                }
            }
        }
        Ok(out)
    }

    /// Dry-run an adjacency step: which edge tables remain candidates
    /// after label elimination. The concrete SQL depends on the runtime
    /// frontier, so candidates carry a description instead of a statement.
    pub fn explain_adjacency(&self, edge_labels: &[String]) -> Vec<TableExplain> {
        let label_filter: Option<Vec<String>> =
            if edge_labels.is_empty() { None } else { Some(edge_labels.to_vec()) };
        let candidates: Vec<usize> = match &label_filter {
            Some(labels) => self.topo.edge_tables_for_labels(labels),
            None => (0..self.topo.edge_tables.len()).collect(),
        };
        self.topo
            .edge_tables
            .iter()
            .enumerate()
            .map(|(i, et)| {
                if candidates.contains(&i) {
                    let mut detail =
                        String::from("candidate; queried per frontier batch of source ids");
                    if et.src_v_table.is_some() || et.dst_v_table.is_some() {
                        detail.push_str(
                            " (declared src/dst vertex table links can skip it per direction)",
                        );
                    }
                    TableExplain { table: et.name.clone(), plan: TablePlan::Candidate { detail } }
                } else {
                    TableExplain {
                        table: et.name.clone(),
                        plan: TablePlan::Pruned {
                            reason: "label not served by this table".into(),
                        },
                    }
                }
            })
            .collect()
    }

    /// Structured explain for one compiled step; non-GSA steps yield
    /// nothing (they never touch the database).
    pub fn explain_compiled_step(&self, step: &gremlin::step::Step) -> Vec<TableExplain> {
        use gremlin::step::Step;
        match step {
            Step::Graph(g) => self.explain_elements(g.kind, &g.filter).unwrap_or_default(),
            Step::Vertex(v) => self.explain_adjacency(&v.edge_labels),
            Step::EdgeVertex(_) => vec![TableExplain {
                table: "<edge endpoints>".into(),
                plan: TablePlan::Candidate {
                    detail: "vertices fetched by endpoint id; the declared src/dst vertex \
                             table pins the lookup, and vertex-from-edge skips SQL when the \
                             edge subsumes the vertex"
                        .into(),
                },
            }],
            _ => Vec::new(),
        }
    }
}

// ----------------------------------------------------------- aggregates

/// Per-table aggregate pieces, combinable across tables.
pub(crate) struct AggParts {
    op: AggOp,
    count: i64,
    sum: f64,
    all_long: bool,
    saw_values: bool,
    minmax: Option<GValue>,
}

impl AggParts {
    fn empty(op: AggOp) -> AggParts {
        AggParts { op, count: 0, sum: 0.0, all_long: true, saw_values: false, minmax: None }
    }

    fn from_count(op: AggOp, n: i64) -> AggParts {
        let mut p = AggParts::empty(op);
        p.count = n;
        p
    }

    fn merge_minmax(&mut self, op: AggOp, v: GValue) {
        self.saw_values = true;
        self.minmax = Some(match self.minmax.take() {
            None => v,
            Some(cur) => {
                let keep_new = match op {
                    AggOp::Min => v.total_cmp(&cur).is_lt(),
                    AggOp::Max => v.total_cmp(&cur).is_gt(),
                    _ => false,
                };
                if keep_new {
                    v
                } else {
                    cur
                }
            }
        });
    }
}

struct AggCombiner {
    op: Option<AggOp>,
    acc: Option<AggParts>,
}

impl AggCombiner {
    fn new(op: Option<AggOp>) -> AggCombiner {
        AggCombiner { op, acc: None }
    }

    fn add(&mut self, parts: AggParts) {
        match &mut self.acc {
            None => self.acc = Some(parts),
            Some(acc) => {
                acc.count += parts.count;
                acc.sum += parts.sum;
                acc.all_long &= parts.all_long;
                acc.saw_values |= parts.saw_values;
                if let Some(v) = parts.minmax {
                    acc.merge_minmax(parts.op, v);
                }
            }
        }
    }

    fn finish(self) -> BackendOutput {
        let op = self.op.expect("combiner used only with aggregate");
        let acc = match self.acc {
            Some(a) => a,
            None => AggParts::empty(op),
        };
        match op {
            AggOp::Count => BackendOutput::Aggregate(GValue::Long(acc.count)),
            AggOp::Sum => {
                if !acc.saw_values {
                    BackendOutput::Elements(Vec::new())
                } else if acc.all_long {
                    BackendOutput::Aggregate(GValue::Long(acc.sum as i64))
                } else {
                    BackendOutput::Aggregate(GValue::Double(acc.sum))
                }
            }
            AggOp::Mean => {
                if acc.count == 0 {
                    BackendOutput::Elements(Vec::new())
                } else {
                    BackendOutput::Aggregate(GValue::Double(acc.sum / acc.count as f64))
                }
            }
            AggOp::Min | AggOp::Max => match acc.minmax {
                Some(v) => BackendOutput::Aggregate(v),
                None => BackendOutput::Elements(Vec::new()),
            },
        }
    }
}

enum TableResult {
    Pruned,
    Elements(Vec<Element>),
    Values(Vec<GValue>),
    Agg(AggParts),
}

/// Everything needed to scan one table: WHERE conjuncts (with `?`
/// placeholders), their parameters, and the predicate columns for the
/// dialect's pattern tracking.
#[derive(Default)]
struct ScanPlan {
    conjuncts: Vec<String>,
    params: Vec<Value>,
    pattern_cols: Vec<String>,
    /// Edge tables with a column label and implicit ids cannot push an id
    /// filter to SQL; the computed ids are checked after materialization.
    post_filter_ids: bool,
}

/// The data-independent access decision for one table.
enum TableAccess {
    /// Eliminated before any SQL, with the reason.
    Pruned(String),
    Scan(ScanPlan),
}

// ------------------------------------------------------ GraphBackend impl

impl GraphBackend for Db2GraphBackend {
    fn graph_elements(&self, kind: ElementKind, filter: &ElementFilter) -> GResult<BackendOutput> {
        let r = match kind {
            ElementKind::Vertices => self.fetch_vertices(filter),
            ElementKind::Edges => self.fetch_edges(filter),
        };
        r.map_err(to_gremlin)
    }

    fn adjacent(
        &self,
        sources: &[Element],
        direction: Direction,
        edge_labels: &[String],
        to: ElementKind,
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>> {
        self.adjacent_impl(sources, direction, edge_labels, to, filter)
            .map_err(to_gremlin)
    }

    fn edge_endpoints(
        &self,
        edges: &[Edge],
        end: EdgeEnd,
        came_from: &[Option<ElementId>],
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>> {
        self.edge_endpoints_impl(edges, end, came_from, filter).map_err(to_gremlin)
    }

    fn backend_name(&self) -> &str {
        "db2graph"
    }

    fn explain_step(&self, step: &gremlin::step::Step) -> Vec<String> {
        self.explain_compiled_step(step)
            .into_iter()
            .flat_map(|t| match t.plan {
                TablePlan::Query { sql } => sql
                    .into_iter()
                    .map(|q| format!("{}: {q}", t.table))
                    .collect::<Vec<_>>(),
                TablePlan::Candidate { detail } => vec![format!("{}: {detail}", t.table)],
                TablePlan::Pruned { reason } => {
                    vec![format!("{}: pruned ({reason})", t.table)]
                }
            })
            .collect()
    }
}

impl Db2GraphBackend {
    fn adjacent_impl(
        &self,
        sources: &[Element],
        direction: Direction,
        edge_labels: &[String],
        to: ElementKind,
        filter: &ElementFilter,
    ) -> GraphResult<Vec<Vec<Element>>> {
        let mut groups: Vec<Vec<Element>> = vec![Vec::new(); sources.len()];
        if sources.is_empty() {
            return Ok(groups);
        }
        self.check_deadline()?;
        // Map source vertex id -> positions (a vertex can appear several
        // times in the frontier).
        let mut src_positions: HashMap<ElementId, Vec<usize>> = HashMap::new();
        for (i, s) in sources.iter().enumerate() {
            src_positions.entry(s.id().clone()).or_default().push(i);
        }
        // Group source ids by their provenance vertex table (for the
        // src/dst vertex table elimination). Insertion-ordered groups with
        // set-backed dedup: frontier order decides probe order, and a 10k
        // frontier no longer pays a quadratic `Vec::contains` scan.
        let mut by_table: Vec<(Option<usize>, Vec<ElementId>)> = Vec::new();
        let mut group_of: HashMap<Option<usize>, usize> = HashMap::new();
        let mut group_seen: Vec<HashSet<ElementId>> = Vec::new();
        for s in sources {
            let vt_idx = s.provenance().and_then(|t| self.topo.vertex_table_index(t));
            let gi = *group_of.entry(vt_idx).or_insert_with(|| {
                by_table.push((vt_idx, Vec::new()));
                group_seen.push(HashSet::new());
                by_table.len() - 1
            });
            if group_seen[gi].insert(s.id().clone()) {
                by_table[gi].1.push(s.id().clone());
            }
        }

        // Candidate edge tables by label.
        let label_filter: Option<Vec<String>> =
            if edge_labels.is_empty() { None } else { Some(edge_labels.to_vec()) };
        let candidates: Vec<usize> = match &label_filter {
            Some(labels) => self.topo.edge_tables_for_labels(labels),
            None => (0..self.topo.edge_tables.len()).collect(),
        };
        self.stats.record_considered(self.topo.edge_tables.len() as u64);
        self.stats
            .record_pruned((self.topo.edge_tables.len() - candidates.len()) as u64);
        if self.profiler.is_enabled() {
            for (i, et) in self.topo.edge_tables.iter().enumerate() {
                if !candidates.contains(&i) {
                    self.profiler.record_table(
                        &et.name,
                        TableAction::Pruned("label not served by this table".into()),
                    );
                }
            }
        }

        // Edge-level filter for the SQL query (only when edges are the
        // output; vertex filters apply after endpoint resolution).
        let edge_filter_preds: Vec<PropPred> =
            if to == ElementKind::Edges { filter.predicates.clone() } else { Vec::new() };

        // Adjacency-cache context. The CSR cache is consulted (and fed)
        // only for plain runs pinned to an unstamped snapshot: profiled
        // runs must reproduce the exact SQL-path profile at any thread
        // count, and stamped snapshots observe session-private writes the
        // shared cache must not hold. `epoch` is the snapshot's pin — the
        // cache's validity rule keys off it (docs/VECTORIZED.md).
        let cache_ctx: Option<(Arc<AdjCache>, u64)> = match (&self.adj_cache, &self.read_view) {
            (Some(c), Some(snap)) if snap.stamp() == 0 && !self.profiler.is_enabled() => {
                Some((c.clone(), snap.epoch()))
            }
            _ => None,
        };
        // A probe context is cacheable only when its SQL is unconstrained
        // beyond the frontier ids — then each probed id's rows are its
        // *complete* adjacency, so the cached entry can serve any later
        // query without post-filtering. A label filter stays cacheable
        // only through fixed-label tables (the candidate list already did
        // the elimination; the SQL adds no row constraint there).
        let ctx_cacheable = cache_ctx.is_some()
            && (to == ElementKind::Vertices
                || (edge_filter_preds.is_empty()
                    && filter.src_ids.is_none()
                    && filter.dst_ids.is_none()));

        struct FoundEdge {
            edge: Edge,
            et_idx: usize,
            via_out: bool,
        }

        // Phase 1 (sequential, cheap): expand the probe space —
        // (edge table × source-table group × direction × frontier chunk) —
        // recording the pruning decisions on the coordinator thread so the
        // profile stream is ordered like sequential execution. Each
        // (table × group × direction) becomes one *unit*: its cache-hit
        // sources expand in memory, its misses fall back to the batched
        // SQL path with the exact chunking the pure-SQL path uses.
        struct ProbeSpec {
            et_idx: usize,
            sub: ElementFilter,
        }
        struct Unit {
            et_idx: usize,
            via_out: bool,
            /// Cache-hit adjacency spans, one per hit source, frontier
            /// order. Expanded on work-stealing morsels — no SQL.
            hits: Vec<Vec<EdgeRef>>,
            /// Frontier ids that missed, chunked exactly like the pure
            /// SQL path chunks them; aligned 1:1 with this unit's probes.
            miss_chunks: Vec<Vec<ElementId>>,
            /// This unit's probes are `probes[probe_start..][..miss_chunks.len()]`.
            probe_start: usize,
            /// Feed this unit's SQL results back into the cache.
            populate: bool,
        }
        let mut units: Vec<Unit> = Vec::new();
        let mut probes: Vec<ProbeSpec> = Vec::new();
        for &ei in &candidates {
            let et = &self.topo.edge_tables[ei];
            for (vt_idx, ids) in &by_table {
                let passes = |dir_out: bool| -> bool {
                    // Source table link optimization: skip when the edge
                    // table's declared endpoint table differs from the
                    // sources' table.
                    let declared = if dir_out { et.src_v_table } else { et.dst_v_table };
                    match (declared, vt_idx) {
                        (Some(d), Some(v)) => d == *v,
                        _ => true,
                    }
                };
                let mut dirs: Vec<bool> = Vec::new();
                match direction {
                    Direction::Out => dirs.push(true),
                    Direction::In => dirs.push(false),
                    Direction::Both => {
                        dirs.push(true);
                        dirs.push(false);
                    }
                }
                for dir_out in dirs {
                    if !passes(dir_out) {
                        self.stats.record_pruned(1);
                        if self.profiler.is_enabled() {
                            self.profiler.record_table(
                                &et.name,
                                TableAction::Pruned(format!(
                                    "declared {} vertex table differs from sources' table",
                                    if dir_out { "src" } else { "dst" }
                                )),
                            );
                        }
                        continue;
                    }
                    // Serve what the cache can: hit sources expand without
                    // SQL, miss sources continue to the probe path below.
                    let unit_cacheable = ctx_cacheable
                        && (label_filter.is_none() || et.fixed_label().is_some());
                    let (hits, remaining): (Vec<Vec<EdgeRef>>, Vec<ElementId>) =
                        match (&cache_ctx, unit_cacheable) {
                            (Some((cache, epoch)), true) => {
                                let mut hits = Vec::new();
                                let mut miss = Vec::new();
                                let served = cache.lookup(ei, dir_out, ids, *epoch);
                                for (id, probe) in ids.iter().zip(served) {
                                    match probe {
                                        Probe::Hit(refs) => hits.push(refs),
                                        Probe::Miss => miss.push(id.clone()),
                                    }
                                }
                                (hits, miss)
                            }
                            _ => (Vec::new(), ids.clone()),
                        };
                    let probe_start = probes.len();
                    let mut miss_chunks: Vec<Vec<ElementId>> = Vec::new();
                    // Chunked so one statement never exceeds the template
                    // bucket ceiling; chunks partition the ids, so an edge
                    // matches exactly one chunk per direction.
                    for chunk in remaining.chunks(MAX_FRONTIER_CHUNK) {
                        let mut sub = ElementFilter {
                            labels: label_filter.clone(),
                            predicates: edge_filter_preds.clone(),
                            ..Default::default()
                        };
                        // Endpoint constraints folded into the step's filter
                        // (e.g. a getLink-style `filter(inV().id() == x)`)
                        // combine with the frontier ids.
                        if to == ElementKind::Edges {
                            sub.src_ids = filter.src_ids.clone();
                            sub.dst_ids = filter.dst_ids.clone();
                        }
                        let chunk_set: HashSet<&ElementId> = chunk.iter().collect();
                        let intersect =
                            |slot: &mut Option<Vec<ElementId>>| match slot {
                                None => *slot = Some(chunk.to_vec()),
                                Some(existing) => existing.retain(|i| chunk_set.contains(i)),
                            };
                        if dir_out {
                            intersect(&mut sub.src_ids);
                        } else {
                            intersect(&mut sub.dst_ids);
                        }
                        probes.push(ProbeSpec { et_idx: ei, sub });
                        miss_chunks.push(chunk.to_vec());
                    }
                    units.push(Unit {
                        et_idx: ei,
                        via_out: dir_out,
                        hits,
                        miss_chunks,
                        probe_start,
                        populate: unit_cacheable,
                    });
                }
            }
        }

        // Phase 2 (parallel): run the independent cache-miss probes;
        // results come back in probe order.
        let mut results: Vec<Option<TableResult>> = self
            .fan_out(
                probes
                    .iter()
                    .map(|p| {
                        move |be: &Db2GraphBackend| {
                            be.query_edge_table(&be.topo.edge_tables[p.et_idx], &p.sub)
                        }
                    })
                    .collect(),
            )?
            .into_iter()
            .map(Some)
            .collect();

        // Phase 3: merge — units in probe nesting order; within a unit,
        // cache hits (expanded in-memory on work-stealing morsels, no
        // SQL) before its SQL-probe results. Each source's edges come
        // wholly from one hit span or one SQL chunk, in SQL row order
        // either way, so every per-source group below is identical to the
        // pure SQL path's — the cache changes *where* a group's edges come
        // from, never their content or order.
        let mut found: Vec<FoundEdge> = Vec::new();
        for unit in &units {
            if !unit.hits.is_empty() {
                let expanded: Vec<Edge> = pool::run_morsels(
                    self.threads,
                    &unit.hits,
                    pool::morsel_size(unit.hits.len()),
                    |_, spans| {
                        spans
                            .iter()
                            .flat_map(|refs| refs.iter().map(EdgeRef::materialize))
                            .collect()
                    },
                );
                found.extend(expanded.into_iter().map(|edge| FoundEdge {
                    edge,
                    et_idx: unit.et_idx,
                    via_out: unit.via_out,
                }));
            }
            for (k, chunk) in unit.miss_chunks.iter().enumerate() {
                let r = results[unit.probe_start + k].take().expect("probe result consumed once");
                let edges: Vec<Edge> = match r {
                    // A pruned unconstrained probe means the chunk's ids
                    // cannot exist in this table: their adjacency here is
                    // known empty, which is itself cacheable.
                    TableResult::Pruned => Vec::new(),
                    TableResult::Elements(es) => es
                        .into_iter()
                        .filter_map(|el| match el {
                            Element::Edge(e) => Some(e),
                            _ => None,
                        })
                        .collect(),
                    _ => unreachable!("no projection/aggregate in sub-filter"),
                };
                if unit.populate {
                    if let Some((cache, epoch)) = &cache_ctx {
                        let refs: Vec<&Edge> = edges.iter().collect();
                        let table = &self.topo.edge_tables[unit.et_idx].name;
                        cache.insert(unit.et_idx, unit.via_out, table, chunk, &refs, *epoch);
                    }
                }
                found.extend(edges.into_iter().map(|edge| FoundEdge {
                    edge,
                    et_idx: unit.et_idx,
                    via_out: unit.via_out,
                }));
            }
        }

        match to {
            ElementKind::Edges => {
                for f in found {
                    let anchor = if f.via_out { &f.edge.src } else { &f.edge.dst };
                    if let Some(positions) = src_positions.get(anchor) {
                        for &p in positions {
                            groups[p].push(Element::Edge(f.edge.clone()));
                        }
                    }
                }
            }
            ElementKind::Vertices => {
                // Resolve opposite endpoints, batched per edge table +
                // direction (so the dst_v_table hint applies).
                // Insertion-ordered groups with set-backed dedup, so the
                // lookups run in discovery order regardless of hashing.
                let mut need: Vec<((usize, bool), Vec<ElementId>)> = Vec::new();
                let mut need_of: HashMap<(usize, bool), usize> = HashMap::new();
                let mut need_seen: Vec<HashSet<ElementId>> = Vec::new();
                for f in &found {
                    let target =
                        if f.via_out { f.edge.dst.clone() } else { f.edge.src.clone() };
                    let key = (f.et_idx, f.via_out);
                    let gi = *need_of.entry(key).or_insert_with(|| {
                        need.push((key, Vec::new()));
                        need_seen.push(HashSet::new());
                        need.len() - 1
                    });
                    if need_seen[gi].insert(target.clone()) {
                        need[gi].1.push(target);
                    }
                }
                // Each lookup fans out internally (table × chunk jobs), so
                // the group loop itself stays sequential — no nested
                // thread explosion.
                let mut resolved: HashMap<ElementId, Vertex> = HashMap::new();
                for ((et_idx, via_out), ids) in need {
                    let et = &self.topo.edge_tables[et_idx];
                    let hint = if via_out { et.dst_v_table } else { et.src_v_table };
                    let m = self.lookup_vertices(&ids, hint, filter)?;
                    resolved.extend(m);
                }
                for f in found {
                    let (anchor, target) = if f.via_out {
                        (&f.edge.src, &f.edge.dst)
                    } else {
                        (&f.edge.dst, &f.edge.src)
                    };
                    if let Some(v) = resolved.get(target) {
                        if let Some(positions) = src_positions.get(anchor) {
                            for &p in positions {
                                groups[p].push(Element::Vertex(v.clone()));
                            }
                        }
                    }
                }
            }
        }
        Ok(groups)
    }

    fn edge_endpoints_impl(
        &self,
        edges: &[Edge],
        end: EdgeEnd,
        came_from: &[Option<ElementId>],
        filter: &ElementFilter,
    ) -> GraphResult<Vec<Vec<Element>>> {
        // Endpoint ids needed per edge.
        let mut wanted: Vec<Vec<ElementId>> = Vec::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            let ids = match end {
                EdgeEnd::Out => vec![e.src.clone()],
                EdgeEnd::In => vec![e.dst.clone()],
                EdgeEnd::Both => vec![e.src.clone(), e.dst.clone()],
                EdgeEnd::Other => {
                    let from = came_from.get(i).and_then(|o| o.as_ref());
                    match from {
                        Some(f) if *f == e.src => vec![e.dst.clone()],
                        Some(f) if *f == e.dst => vec![e.src.clone()],
                        _ => vec![e.dst.clone()],
                    }
                }
            };
            wanted.push(ids);
        }
        // Try the vertex-from-edge shortcut; collect the rest per edge
        // table endpoint hint. Need-groups are insertion-ordered with
        // set-backed dedup (no quadratic `Vec::contains`, no HashMap
        // iteration-order nondeterminism in the lookup sequence).
        let mut resolved: HashMap<ElementId, Vertex> = HashMap::new();
        let mut need: Vec<(Option<usize>, Vec<ElementId>)> = Vec::new();
        let mut need_of: HashMap<Option<usize>, usize> = HashMap::new();
        let mut need_seen: Vec<HashSet<ElementId>> = Vec::new();
        for (e, ids) in edges.iter().zip(&wanted) {
            let et_idx = e.provenance.as_deref().and_then(|t| self.topo.edge_table_index(t));
            for id in ids {
                if resolved.contains_key(id) {
                    continue;
                }
                let hint = et_idx.and_then(|ei| {
                    let et = &self.topo.edge_tables[ei];
                    if *id == e.src {
                        et.src_v_table
                    } else {
                        et.dst_v_table
                    }
                });
                if let Some(vt_idx) = hint {
                    if let Some(v) = self.vertex_from_edge(e, id, vt_idx) {
                        let el = Element::Vertex(v.clone());
                        if filter.matches(&el) {
                            resolved.insert(id.clone(), v);
                        } else {
                            // Filtered out: record absence via no entry.
                        }
                        continue;
                    }
                }
                let gi = *need_of.entry(hint).or_insert_with(|| {
                    need.push((hint, Vec::new()));
                    need_seen.push(HashSet::new());
                    need.len() - 1
                });
                if need_seen[gi].insert(id.clone()) {
                    need[gi].1.push(id.clone());
                }
            }
        }
        // lookup_vertices fans out internally per (table × chunk).
        for (hint, ids) in need {
            let m = self.lookup_vertices(&ids, hint, filter)?;
            resolved.extend(m);
        }
        let mut out = Vec::with_capacity(edges.len());
        for ids in wanted {
            let mut group = Vec::new();
            for id in ids {
                if let Some(v) = resolved.get(&id) {
                    group.push(Element::Vertex(v.clone()));
                }
            }
            out.push(group);
        }
        Ok(out)
    }
}
