//! AutoOverlay: automatic overlay-configuration generation (Section 5.1).
//!
//! Implements the paper's Algorithm 1 (identify vertex and edge tables from
//! primary/foreign-key constraints) and Algorithm 2 (generate the overlay
//! configuration):
//!
//! * a table **with a primary key** is a vertex table; if it also has
//!   foreign keys it is *additionally* one edge table per foreign key (fact
//!   tables play both roles);
//! * a table **without a primary key** but with `k >= 2` foreign keys is
//!   `C(k, 2)` edge tables, one per pair of foreign keys (many-to-many
//!   link tables);
//! * vertex ids are the primary key prefixed with a unique table
//!   identifier; labels are fixed to the table name; remaining columns are
//!   properties; edges use the implicit `src::label::dst` id.

use reldb::{Database, TableSchema};

use crate::config::{ETableConfig, OverlayConfig, VTableConfig};
use crate::error::{GraphError, GraphResult};

/// Result of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRoles {
    pub vertex_tables: Vec<String>,
    pub edge_tables: Vec<String>,
}

/// Algorithm 1: classify tables into vertex tables and edge tables.
pub fn identify_tables(tables: &[TableSchema]) -> TableRoles {
    let mut vertex_tables = Vec::new();
    let mut edge_tables = Vec::new();
    for t in tables {
        if t.has_primary_key() {
            vertex_tables.push(t.name.clone());
            if !t.foreign_keys.is_empty() {
                edge_tables.push(t.name.clone());
            }
        } else if t.foreign_keys.len() >= 2 {
            edge_tables.push(t.name.clone());
        }
    }
    TableRoles { vertex_tables, edge_tables }
}

/// The unique table identifier used as id prefix: the lower-cased table
/// name (the paper allows "the table name or some other unique constant").
fn table_prefix(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// Build the id definition string for a vertex table: the primary key
/// columns prefixed with the table identifier.
fn vertex_id_def(t: &TableSchema) -> String {
    let pk = t.primary_key.as_ref().expect("vertex tables have a primary key");
    let mut parts = vec![format!("'{}'", table_prefix(&t.name))];
    parts.extend(pk.iter().cloned());
    parts.join("::")
}

/// Build an endpoint definition referencing `ref_table` through the given
/// columns of the edge table.
fn endpoint_def(ref_table: &str, cols: &[String]) -> String {
    let mut parts = vec![format!("'{}'", table_prefix(ref_table))];
    parts.extend(cols.iter().cloned());
    parts.join("::")
}

/// Algorithm 2: generate the overlay configuration for a set of tables.
pub fn generate_overlay(tables: &[TableSchema]) -> GraphResult<OverlayConfig> {
    let roles = identify_tables(tables);
    if roles.vertex_tables.is_empty() {
        return Err(GraphError::Config(
            "no table has a primary key; AutoOverlay cannot identify vertex tables (specify an overlay manually)".into(),
        ));
    }
    let by_name = |name: &str| -> &TableSchema {
        tables.iter().find(|t| t.name == *name).expect("role tables come from input")
    };

    let mut config = OverlayConfig::default();
    for name in &roles.vertex_tables {
        let t = by_name(name);
        let pk = t.primary_key.as_ref().unwrap();
        let properties: Vec<String> = t
            .columns
            .iter()
            .map(|c| c.name.clone())
            .filter(|c| !pk.iter().any(|p| p.eq_ignore_ascii_case(c)))
            .collect();
        config.v_tables.push(VTableConfig {
            table_name: t.name.clone(),
            prefixed_id: true,
            id: vertex_id_def(t),
            fix_label: true,
            label: format!("'{}'", t.name),
            properties: Some(properties),
        });
    }

    for name in &roles.edge_tables {
        let t = by_name(name);
        if t.has_primary_key() {
            // Fact-table case: the table itself is the source vertex; one
            // edge table per foreign key.
            let pk = t.primary_key.as_ref().unwrap();
            for fk in &t.foreign_keys {
                let properties: Vec<String> = t
                    .columns
                    .iter()
                    .map(|c| c.name.clone())
                    .filter(|c| {
                        !pk.iter().any(|p| p.eq_ignore_ascii_case(c))
                            && !fk.columns.iter().any(|p| p.eq_ignore_ascii_case(c))
                    })
                    .collect();
                config.e_tables.push(ETableConfig {
                    table_name: t.name.clone(),
                    src_v_table: Some(t.name.clone()),
                    src_v: vertex_id_def(t),
                    dst_v_table: resolve_vertex_table(&roles, &fk.ref_table),
                    dst_v: endpoint_def(&fk.ref_table, &fk.columns),
                    prefixed_edge_id: false,
                    implicit_edge_id: true,
                    id: None,
                    fix_label: true,
                    label: format!("'{}_{}'", t.name, fk.ref_table),
                    properties: Some(properties),
                });
            }
        } else {
            // Link-table case: one edge table per pair of foreign keys.
            let fks = &t.foreign_keys;
            for i in 0..fks.len() {
                for j in (i + 1)..fks.len() {
                    let fk1 = &fks[i];
                    let fk2 = &fks[j];
                    let properties: Vec<String> = t
                        .columns
                        .iter()
                        .map(|c| c.name.clone())
                        .filter(|c| {
                            !fk1.columns.iter().any(|p| p.eq_ignore_ascii_case(c))
                                && !fk2.columns.iter().any(|p| p.eq_ignore_ascii_case(c))
                        })
                        .collect();
                    config.e_tables.push(ETableConfig {
                        table_name: t.name.clone(),
                        src_v_table: resolve_vertex_table(&roles, &fk1.ref_table),
                        src_v: endpoint_def(&fk1.ref_table, &fk1.columns),
                        dst_v_table: resolve_vertex_table(&roles, &fk2.ref_table),
                        dst_v: endpoint_def(&fk2.ref_table, &fk2.columns),
                        prefixed_edge_id: false,
                        implicit_edge_id: true,
                        id: None,
                        fix_label: true,
                        label: format!("'{}_{}_{}'", fk1.ref_table, t.name, fk2.ref_table),
                        properties: Some(properties),
                    });
                }
            }
        }
    }
    Ok(config)
}

/// Only link `src_v_table`/`dst_v_table` when the referenced table is a
/// configured vertex table (it always is when it has a primary key).
fn resolve_vertex_table(roles: &TableRoles, name: &str) -> Option<String> {
    roles
        .vertex_tables
        .iter()
        .find(|v| v.eq_ignore_ascii_case(name))
        .cloned()
}

/// Generate the overlay for a database, optionally restricted to a subset
/// of tables.
pub fn auto_overlay(db: &Database, include: Option<&[&str]>) -> GraphResult<OverlayConfig> {
    let mut schemas = db.table_schemas();
    if let Some(include) = include {
        schemas.retain(|s| include.iter().any(|n| n.eq_ignore_ascii_case(&s.name)));
        // Drop foreign keys that point outside the included set, so the
        // generated overlay is self-contained.
        let names: Vec<String> = schemas.iter().map(|s| s.name.clone()).collect();
        for s in &mut schemas {
            s.foreign_keys
                .retain(|fk| names.iter().any(|n| n.eq_ignore_ascii_case(&fk.ref_table)));
        }
    }
    generate_overlay(&schemas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldb::{ColumnDef, DataType};

    fn schemas() -> Vec<TableSchema> {
        vec![
            // Vertex table.
            TableSchema::new(
                "Patient",
                vec![
                    ColumnDef::new("patientID", DataType::Bigint).not_null(),
                    ColumnDef::new("name", DataType::Varchar),
                ],
            )
            .with_primary_key(vec!["patientID"]),
            // Vertex table.
            TableSchema::new(
                "Disease",
                vec![
                    ColumnDef::new("diseaseID", DataType::Bigint).not_null(),
                    ColumnDef::new("conceptName", DataType::Varchar),
                ],
            )
            .with_primary_key(vec!["diseaseID"]),
            // Pure link table: no PK, two FKs.
            TableSchema::new(
                "HasDisease",
                vec![
                    ColumnDef::new("patientID", DataType::Bigint),
                    ColumnDef::new("diseaseID", DataType::Bigint),
                    ColumnDef::new("description", DataType::Varchar),
                ],
            )
            .with_foreign_key(vec!["patientID"], "Patient", vec!["patientID"])
            .with_foreign_key(vec!["diseaseID"], "Disease", vec!["diseaseID"]),
            // Fact table: PK + FK -> vertex table AND edge table.
            TableSchema::new(
                "Visit",
                vec![
                    ColumnDef::new("visitID", DataType::Bigint).not_null(),
                    ColumnDef::new("patientID", DataType::Bigint),
                    ColumnDef::new("cost", DataType::Double),
                ],
            )
            .with_primary_key(vec!["visitID"])
            .with_foreign_key(vec!["patientID"], "Patient", vec!["patientID"]),
            // Table with neither PK nor 2 FKs: ignored.
            TableSchema::new("Scratch", vec![ColumnDef::new("x", DataType::Bigint)]),
        ]
    }

    #[test]
    fn algorithm1_roles() {
        let roles = identify_tables(&schemas());
        assert_eq!(roles.vertex_tables, vec!["Patient", "Disease", "Visit"]);
        assert_eq!(roles.edge_tables, vec!["HasDisease", "Visit"]);
    }

    #[test]
    fn algorithm2_generates_valid_config() {
        let config = generate_overlay(&schemas()).unwrap();
        config.validate_shape().unwrap();
        assert_eq!(config.v_tables.len(), 3);
        // Visit (1 FK) + HasDisease (C(2,2)=1 pair) = 2 edge tables.
        assert_eq!(config.e_tables.len(), 2);

        let patient = config.v_tables.iter().find(|v| v.table_name == "Patient").unwrap();
        assert_eq!(patient.id, "'patient'::patientID");
        assert!(patient.prefixed_id);
        assert_eq!(patient.label, "'Patient'");
        assert_eq!(patient.properties, Some(vec!["name".to_string()]));

        let visit_edge = config.e_tables.iter().find(|e| e.table_name == "Visit").unwrap();
        assert_eq!(visit_edge.src_v, "'visit'::visitID");
        assert_eq!(visit_edge.dst_v, "'patient'::patientID");
        assert_eq!(visit_edge.src_v_table.as_deref(), Some("Visit"));
        assert!(visit_edge.implicit_edge_id);
        // Properties exclude PK and FK columns.
        assert_eq!(visit_edge.properties, Some(vec!["cost".to_string()]));

        let hd = config.e_tables.iter().find(|e| e.table_name == "HasDisease").unwrap();
        assert_eq!(hd.src_v, "'patient'::patientID");
        assert_eq!(hd.dst_v, "'disease'::diseaseID");
        assert_eq!(hd.label, "'Patient_HasDisease_Disease'");
        assert_eq!(hd.properties, Some(vec!["description".to_string()]));
    }

    #[test]
    fn many_to_many_pairs() {
        // 3 FKs, no PK -> C(3,2) = 3 edge tables.
        let t = TableSchema::new(
            "Tri",
            vec![
                ColumnDef::new("a", DataType::Bigint),
                ColumnDef::new("b", DataType::Bigint),
                ColumnDef::new("c", DataType::Bigint),
            ],
        )
        .with_foreign_key(vec!["a"], "A", vec!["id"])
        .with_foreign_key(vec!["b"], "B", vec!["id"])
        .with_foreign_key(vec!["c"], "C", vec!["id"]);
        let mut tables = vec![t];
        for n in ["A", "B", "C"] {
            tables.push(
                TableSchema::new(n, vec![ColumnDef::new("id", DataType::Bigint).not_null()])
                    .with_primary_key(vec!["id"]),
            );
        }
        let config = generate_overlay(&tables).unwrap();
        assert_eq!(config.e_tables.len(), 3);
        let labels: Vec<&str> = config.e_tables.iter().map(|e| e.label.as_str()).collect();
        assert!(labels.contains(&"'A_Tri_B'"));
        assert!(labels.contains(&"'A_Tri_C'"));
        assert!(labels.contains(&"'B_Tri_C'"));
    }

    #[test]
    fn no_pk_anywhere_errors() {
        let t = TableSchema::new("X", vec![ColumnDef::new("a", DataType::Bigint)]);
        assert!(generate_overlay(&[t]).is_err());
    }

    #[test]
    fn end_to_end_against_database() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR);
             CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptName VARCHAR);
             CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
                FOREIGN KEY (patientID) REFERENCES Patient(patientID),
                FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));",
        )
        .unwrap();
        let config = auto_overlay(&db, None).unwrap();
        assert_eq!(config.v_tables.len(), 2);
        assert_eq!(config.e_tables.len(), 1);
        // Restricting to a subset drops edges whose endpoints are excluded.
        let config = auto_overlay(&db, Some(&["Patient", "HasDisease"])).unwrap();
        assert_eq!(config.v_tables.len(), 1);
        assert!(config.e_tables.is_empty()); // fk to Disease dropped -> only 1 fk left
    }
}
