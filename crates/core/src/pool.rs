//! A small scoped worker pool for intra-query parallelism.
//!
//! One Gremlin step over the SQL overlay expands into a set of *independent*
//! probes — one per (edge table, source table, direction) for adjacency, one
//! per vertex table for `V()`/`E()`, one per id chunk for endpoint
//! resolution. These probes share nothing but read-only state (`reldb`'s
//! `Database` takes `&self` everywhere, and every worker reads the one
//! storage snapshot its query pinned at entry — see `docs/CONSISTENCY.md`),
//! so they can run on worker threads without any coordination beyond
//! joining, and concurrent writers never change what any worker observes.
//!
//! The pool is deliberately minimal: [`run_ordered`] executes a batch of
//! closures on up to `threads` scoped threads (`std::thread::scope`, so
//! borrows of the caller's stack work and nothing outlives the call) and
//! returns the results **in the order the jobs were given**, regardless of
//! which thread finished first. Determinism of merged query results falls
//! out of that ordering guarantee; callers never see scheduling effects.
//!
//! Thread count resolution: explicit configuration wins, then the
//! `DB2GRAPH_THREADS` environment variable, then the machine's available
//! parallelism. A count of 1 (or a batch of 1 job) short-circuits to plain
//! inline execution with zero threading overhead — the sequential and
//! parallel paths are the same code.
//!
//! Observability: the pool itself records nothing. Callers that need
//! per-job telemetry (the backend's `fan_out`) give each job a forked
//! [`Tracer`](crate::trace::Tracer)/`Profiler` and absorb the forks back in
//! job order after [`run_ordered`] returns — the same ordering guarantee
//! that makes results deterministic makes the absorbed span *tree*
//! deterministic at any thread count (see `docs/OBSERVABILITY.md`).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Environment variable overriding the worker count for query execution.
pub const THREADS_ENV: &str = "DB2GRAPH_THREADS";

/// The worker count to use when none is configured explicitly:
/// `DB2GRAPH_THREADS` if set and parseable, otherwise the machine's
/// available parallelism (at least 1).
pub fn configured_threads() -> usize {
    let auto = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if let Ok(v) = std::env::var(THREADS_ENV) {
        match v.trim().parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => {
                let fallback = auto();
                crate::events::record_config_warning(
                    THREADS_ENV,
                    &v,
                    &format!("available parallelism ({fallback})"),
                );
                return fallback;
            }
        }
    }
    auto()
}

/// Run `jobs` on up to `threads` scoped worker threads, returning results
/// in job order. With `threads <= 1` or fewer than two jobs, runs inline on
/// the calling thread — no spawn, no locks.
///
/// Panics in a job propagate to the caller (after all workers have been
/// joined), matching inline execution semantics closely enough for our use:
/// a panicking probe aborts the query either way.
pub fn run_ordered<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    // Each slot holds the pending job going in and the result coming out;
    // workers claim slots through one shared atomic cursor, so a slow probe
    // never blocks the others (work stealing degenerates to work sharing).
    let cells: Vec<Mutex<JobCell<T, F>>> =
        jobs.into_iter().map(|j| Mutex::new(JobCell::Pending(j))).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut cell = cells[i].lock();
                if let JobCell::Pending(job) = std::mem::replace(&mut *cell, JobCell::Empty) {
                    let out = {
                        // Run without holding the lock: nobody else can
                        // claim index i (the cursor is monotonic), and the
                        // result write re-acquires below.
                        drop(cell);
                        job()
                    };
                    *cells[i].lock() = JobCell::Done(out);
                }
            });
        }
    });
    cells
        .into_iter()
        .map(|c| match c.into_inner() {
            JobCell::Done(v) => v,
            _ => unreachable!("worker pool joined with unfinished job"),
        })
        .collect()
}

enum JobCell<T, F> {
    Pending(F),
    Empty,
    Done(T),
}

/// Morsel size for a frontier of `n` items: a function of the frontier
/// *only* (never the thread count), so the morsel boundaries — and with
/// them every per-morsel result vector — are identical at any thread
/// count. Targets ~64 morsels per frontier for stealable granularity,
/// clamped so tiny frontiers aren't over-split and huge ones don't
/// produce unboundedly large claims.
pub fn morsel_size(n: usize) -> usize {
    (n / 64).clamp(16, 1024)
}

/// Morsel-driven execution over a frontier: workers pull contiguous
/// `[start, start+morsel)` ranges of `items` from one shared atomic
/// cursor (work stealing: a fast worker takes more morsels, a slow one is
/// never waited on mid-frontier), run `f(start, slice)` on each, and the
/// per-morsel outputs are concatenated **in morsel order** — so the
/// result is byte-identical to running `f` over the whole frontier
/// inline, at any thread count. With `threads <= 1` or a single-morsel
/// frontier, runs inline with zero threading overhead.
pub fn run_morsels<T, R, F>(threads: usize, items: &[T], morsel: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let m = morsel.max(1);
    if threads <= 1 || n <= m {
        return f(0, items);
    }
    let slots = n.div_ceil(m);
    let results: Vec<Mutex<Option<Vec<R>>>> = (0..slots).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(slots) {
            scope.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= slots {
                    break;
                }
                let start = k * m;
                let end = (start + m).min(n);
                *results[k].lock() = Some(f(start, &items[start..end]));
            });
        }
    });
    results
        .into_iter()
        .flat_map(|c| c.into_inner().expect("morsel pool joined with unfinished morsel"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        // Jobs finishing in reverse order still land in submission order.
        let jobs: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                    i * 2
                }
            })
            .collect();
        let out = run_ordered(4, jobs);
        assert_eq!(out, (0..32usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        let jobs: Vec<_> = (0..4)
            .map(|i| move || (i, std::thread::current().id()))
            .collect();
        for (i, (v, t)) in run_ordered(1, jobs).into_iter().enumerate() {
            assert_eq!(v, i);
            assert_eq!(t, tid);
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let none: Vec<fn() -> usize> = Vec::new();
        assert!(run_ordered::<usize, _>(8, none).is_empty());
        assert_eq!(run_ordered(8, vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn more_jobs_than_threads() {
        let jobs: Vec<_> = (0..100usize).map(|i| move || i).collect();
        assert_eq!(run_ordered(3, jobs), (0..100usize).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_caller_state() {
        let data: Vec<usize> = (0..10).collect();
        let jobs: Vec<_> = data.iter().map(|v| move || *v + 1).collect();
        let out = run_ordered(4, jobs);
        assert_eq!(out, (1..11usize).collect::<Vec<_>>());
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn morsel_size_is_thread_independent_and_clamped() {
        assert_eq!(morsel_size(0), 16);
        assert_eq!(morsel_size(100), 16);
        assert_eq!(morsel_size(6400), 100);
        assert_eq!(morsel_size(1 << 20), 1024);
    }

    #[test]
    fn morsels_merge_in_item_order_at_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|v| v * 3).collect();
        for threads in [1, 2, 8] {
            let out = run_morsels(threads, &items, morsel_size(items.len()), |start, slice| {
                assert_eq!(slice[0], start);
                slice.iter().map(|v| v * 3).collect()
            });
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn morsels_allow_variable_output_cardinality() {
        // A morsel's output need not be one-per-item (adjacency fans out).
        let items: Vec<usize> = (0..100).collect();
        let out = run_morsels(4, &items, 16, |_, slice| {
            slice.iter().flat_map(|&v| std::iter::repeat(v).take(v % 3)).collect()
        });
        let expect: Vec<usize> =
            items.iter().flat_map(|&v| std::iter::repeat(v).take(v % 3)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_frontier_short_circuits() {
        let none: Vec<usize> = Vec::new();
        let out = run_morsels(8, &none, 16, |_, s| s.to_vec());
        assert!(out.is_empty());
    }
}
