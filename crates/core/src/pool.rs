//! A small scoped worker pool for intra-query parallelism.
//!
//! One Gremlin step over the SQL overlay expands into a set of *independent*
//! probes — one per (edge table, source table, direction) for adjacency, one
//! per vertex table for `V()`/`E()`, one per id chunk for endpoint
//! resolution. These probes share nothing but read-only state (`reldb`'s
//! `Database` takes `&self` everywhere, and every worker reads the one
//! storage snapshot its query pinned at entry — see `docs/CONSISTENCY.md`),
//! so they can run on worker threads without any coordination beyond
//! joining, and concurrent writers never change what any worker observes.
//!
//! The pool is deliberately minimal: [`run_ordered`] executes a batch of
//! closures on up to `threads` scoped threads (`std::thread::scope`, so
//! borrows of the caller's stack work and nothing outlives the call) and
//! returns the results **in the order the jobs were given**, regardless of
//! which thread finished first. Determinism of merged query results falls
//! out of that ordering guarantee; callers never see scheduling effects.
//!
//! Thread count resolution: explicit configuration wins, then the
//! `DB2GRAPH_THREADS` environment variable, then the machine's available
//! parallelism. A count of 1 (or a batch of 1 job) short-circuits to plain
//! inline execution with zero threading overhead — the sequential and
//! parallel paths are the same code.
//!
//! Observability: the pool itself records nothing. Callers that need
//! per-job telemetry (the backend's `fan_out`) give each job a forked
//! [`Tracer`](crate::trace::Tracer)/`Profiler` and absorb the forks back in
//! job order after [`run_ordered`] returns — the same ordering guarantee
//! that makes results deterministic makes the absorbed span *tree*
//! deterministic at any thread count (see `docs/OBSERVABILITY.md`).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Environment variable overriding the worker count for query execution.
pub const THREADS_ENV: &str = "DB2GRAPH_THREADS";

/// The worker count to use when none is configured explicitly:
/// `DB2GRAPH_THREADS` if set and parseable, otherwise the machine's
/// available parallelism (at least 1).
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `jobs` on up to `threads` scoped worker threads, returning results
/// in job order. With `threads <= 1` or fewer than two jobs, runs inline on
/// the calling thread — no spawn, no locks.
///
/// Panics in a job propagate to the caller (after all workers have been
/// joined), matching inline execution semantics closely enough for our use:
/// a panicking probe aborts the query either way.
pub fn run_ordered<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    // Each slot holds the pending job going in and the result coming out;
    // workers claim slots through one shared atomic cursor, so a slow probe
    // never blocks the others (work stealing degenerates to work sharing).
    let cells: Vec<Mutex<JobCell<T, F>>> =
        jobs.into_iter().map(|j| Mutex::new(JobCell::Pending(j))).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut cell = cells[i].lock();
                if let JobCell::Pending(job) = std::mem::replace(&mut *cell, JobCell::Empty) {
                    let out = {
                        // Run without holding the lock: nobody else can
                        // claim index i (the cursor is monotonic), and the
                        // result write re-acquires below.
                        drop(cell);
                        job()
                    };
                    *cells[i].lock() = JobCell::Done(out);
                }
            });
        }
    });
    cells
        .into_iter()
        .map(|c| match c.into_inner() {
            JobCell::Done(v) => v,
            _ => unreachable!("worker pool joined with unfinished job"),
        })
        .collect()
}

enum JobCell<T, F> {
    Pending(F),
    Empty,
    Done(T),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        // Jobs finishing in reverse order still land in submission order.
        let jobs: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                    i * 2
                }
            })
            .collect();
        let out = run_ordered(4, jobs);
        assert_eq!(out, (0..32usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        let jobs: Vec<_> = (0..4)
            .map(|i| move || (i, std::thread::current().id()))
            .collect();
        for (i, (v, t)) in run_ordered(1, jobs).into_iter().enumerate() {
            assert_eq!(v, i);
            assert_eq!(t, tid);
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let none: Vec<fn() -> usize> = Vec::new();
        assert!(run_ordered::<usize, _>(8, none).is_empty());
        assert_eq!(run_ordered(8, vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn more_jobs_than_threads() {
        let jobs: Vec<_> = (0..100usize).map(|i| move || i).collect();
        assert_eq!(run_ordered(3, jobs), (0..100usize).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_caller_state() {
        let data: Vec<usize> = (0..10).collect();
        let jobs: Vec<_> = data.iter().map(|v| move || *v + 1).collect();
        let out = run_ordered(4, jobs);
        assert_eq!(out, (1..11usize).collect::<Vec<_>>());
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
