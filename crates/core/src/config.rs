//! The overlay configuration file format (Section 5 of the paper).
//!
//! The JSON schema matches the paper's example verbatim: a `v_tables` array
//! and an `e_tables` array, each entry naming a table (or view) and
//! describing how its columns define the property-graph required fields
//! (`id`, `label`, and for edges `src_v`/`dst_v`) and properties.

use serde::{Deserialize, Serialize};

use crate::error::{GraphError, GraphResult};

/// A full graph overlay configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct OverlayConfig {
    #[serde(default)]
    pub v_tables: Vec<VTableConfig>,
    #[serde(default)]
    pub e_tables: Vec<ETableConfig>,
}

/// Configuration of one vertex table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VTableConfig {
    pub table_name: String,
    /// Whether the id is prefixed with a unique table identifier
    /// (`'patient'::patientID`). Enables the prefixed-id runtime
    /// optimization.
    #[serde(default)]
    pub prefixed_id: bool,
    /// Id definition string, e.g. `"'patient'::patientID"` or `"diseaseID"`.
    pub id: String,
    /// Whether all vertices from this table share one constant label.
    #[serde(default)]
    pub fix_label: bool,
    /// Label definition: a constant `"'patient'"` when `fix_label`, else a
    /// column name.
    pub label: String,
    /// Property columns. `None` means "all columns not used by required
    /// fields" (the paper's default).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub properties: Option<Vec<String>>,
}

/// Configuration of one edge table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ETableConfig {
    pub table_name: String,
    /// Vertex table all source vertices come from, when known. Enables the
    /// src/dst table runtime optimization (Section 6.3).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub src_v_table: Option<String>,
    /// Source vertex id definition; must match the id definition of the
    /// source vertex table when `src_v_table` is set.
    pub src_v: String,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dst_v_table: Option<String>,
    pub dst_v: String,
    /// Explicit prefixed edge id (like vertex prefixed ids).
    #[serde(default)]
    pub prefixed_edge_id: bool,
    /// Use the implicit `src_v::label::dst_v` edge id.
    #[serde(default)]
    pub implicit_edge_id: bool,
    /// Explicit id definition (required unless `implicit_edge_id`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub id: Option<String>,
    #[serde(default)]
    pub fix_label: bool,
    pub label: String,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub properties: Option<Vec<String>>,
}

impl OverlayConfig {
    /// Parse a configuration from JSON text.
    pub fn from_json(text: &str) -> GraphResult<OverlayConfig> {
        serde_json::from_str(text)
            .map_err(|e| GraphError::Config(format!("invalid overlay JSON: {e}")))
    }

    /// Serialize to pretty JSON (what AutoOverlay writes out).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("overlay config serializes")
    }

    /// Structural sanity checks that do not need the database catalog.
    pub fn validate_shape(&self) -> GraphResult<()> {
        if self.v_tables.is_empty() {
            return Err(GraphError::Config("overlay has no vertex tables".into()));
        }
        for v in &self.v_tables {
            if v.table_name.is_empty() {
                return Err(GraphError::Config("vertex table with empty name".into()));
            }
            if v.fix_label && !(v.label.starts_with('\'') && v.label.ends_with('\'')) {
                return Err(GraphError::Config(format!(
                    "vertex table '{}': fix_label requires a quoted constant label",
                    v.table_name
                )));
            }
        }
        for e in &self.e_tables {
            if e.implicit_edge_id && e.id.is_some() {
                return Err(GraphError::Config(format!(
                    "edge table '{}': implicit_edge_id and explicit id are mutually exclusive",
                    e.table_name
                )));
            }
            if !e.implicit_edge_id && e.id.is_none() {
                return Err(GraphError::Config(format!(
                    "edge table '{}': needs either implicit_edge_id or an id definition",
                    e.table_name
                )));
            }
            if e.fix_label && !(e.label.starts_with('\'') && e.label.ends_with('\'')) {
                return Err(GraphError::Config(format!(
                    "edge table '{}': fix_label requires a quoted constant label",
                    e.table_name
                )));
            }
        }
        Ok(())
    }
}

/// Parse a label definition: `Some(constant)` when quoted, else `None`
/// (meaning: it's a column name).
pub fn parse_label_constant(label: &str) -> Option<String> {
    label
        .strip_prefix('\'')
        .and_then(|s| s.strip_suffix('\''))
        .map(str::to_string)
}

/// The paper's Section 5 example configuration (healthcare overlay), used
/// by tests, examples, and documentation.
pub fn healthcare_example_json() -> &'static str {
    r#"{
  "v_tables": [
    {
      "table_name": "Patient",
      "prefixed_id": true,
      "id": "'patient'::patientID",
      "fix_label": true,
      "label": "'patient'",
      "properties": ["patientID", "name", "address", "subscriptionID"]
    },
    {
      "table_name": "Disease",
      "id": "diseaseID",
      "fix_label": true,
      "label": "'disease'",
      "properties": ["diseaseID", "conceptCode", "conceptName"]
    }
  ],
  "e_tables": [
    {
      "table_name": "DiseaseOntology",
      "src_v_table": "Disease",
      "src_v": "sourceID",
      "dst_v_table": "Disease",
      "dst_v": "targetID",
      "prefixed_edge_id": true,
      "id": "'ontology'::sourceID::targetID",
      "label": "type"
    },
    {
      "table_name": "HasDisease",
      "src_v_table": "Patient",
      "src_v": "'patient'::patientID",
      "dst_v_table": "Disease",
      "dst_v": "diseaseID",
      "implicit_edge_id": true,
      "fix_label": true,
      "label": "'hasDisease'"
    }
  ]
}"#
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_parses() {
        let cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.validate_shape().unwrap();
        assert_eq!(cfg.v_tables.len(), 2);
        assert_eq!(cfg.e_tables.len(), 2);
        let patient = &cfg.v_tables[0];
        assert!(patient.prefixed_id);
        assert_eq!(patient.id, "'patient'::patientID");
        assert!(patient.fix_label);
        let ontology = &cfg.e_tables[0];
        assert!(!ontology.fix_label);
        assert_eq!(ontology.label, "type");
        assert!(ontology.prefixed_edge_id);
        let hd = &cfg.e_tables[1];
        assert!(hd.implicit_edge_id);
        assert!(hd.properties.is_none()); // defaults to remaining columns
    }

    #[test]
    fn roundtrip_json() {
        let cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        let text = cfg.to_json();
        let cfg2 = OverlayConfig::from_json(&text).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn shape_validation_catches_mistakes() {
        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.e_tables[1].id = Some("'x'::a".into());
        assert!(cfg.validate_shape().is_err()); // implicit + explicit id

        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.e_tables[0].id = None;
        assert!(cfg.validate_shape().is_err()); // no id at all

        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.v_tables[0].label = "patient".into(); // fix_label without quotes
        assert!(cfg.validate_shape().is_err());

        let cfg = OverlayConfig::default();
        assert!(cfg.validate_shape().is_err()); // no vertex tables

        assert!(OverlayConfig::from_json("{ not json").is_err());
    }

    #[test]
    fn label_constant_parsing() {
        assert_eq!(parse_label_constant("'patient'"), Some("patient".into()));
        assert_eq!(parse_label_constant("type"), None);
    }
}
