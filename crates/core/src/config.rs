//! The overlay configuration file format (Section 5 of the paper).
//!
//! The JSON schema matches the paper's example verbatim: a `v_tables` array
//! and an `e_tables` array, each entry naming a table (or view) and
//! describing how its columns define the property-graph required fields
//! (`id`, `label`, and for edges `src_v`/`dst_v`) and properties.

use crate::error::{GraphError, GraphResult};
use crate::json::Json;

/// A full graph overlay configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OverlayConfig {
    pub v_tables: Vec<VTableConfig>,
    pub e_tables: Vec<ETableConfig>,
}

/// Configuration of one vertex table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VTableConfig {
    pub table_name: String,
    /// Whether the id is prefixed with a unique table identifier
    /// (`'patient'::patientID`). Enables the prefixed-id runtime
    /// optimization.
    pub prefixed_id: bool,
    /// Id definition string, e.g. `"'patient'::patientID"` or `"diseaseID"`.
    pub id: String,
    /// Whether all vertices from this table share one constant label.
    pub fix_label: bool,
    /// Label definition: a constant `"'patient'"` when `fix_label`, else a
    /// column name.
    pub label: String,
    /// Property columns. `None` means "all columns not used by required
    /// fields" (the paper's default).
    pub properties: Option<Vec<String>>,
}

/// Configuration of one edge table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ETableConfig {
    pub table_name: String,
    /// Vertex table all source vertices come from, when known. Enables the
    /// src/dst table runtime optimization (Section 6.3).
    pub src_v_table: Option<String>,
    /// Source vertex id definition; must match the id definition of the
    /// source vertex table when `src_v_table` is set.
    pub src_v: String,
    pub dst_v_table: Option<String>,
    pub dst_v: String,
    /// Explicit prefixed edge id (like vertex prefixed ids).
    pub prefixed_edge_id: bool,
    /// Use the implicit `src_v::label::dst_v` edge id.
    pub implicit_edge_id: bool,
    /// Explicit id definition (required unless `implicit_edge_id`).
    pub id: Option<String>,
    pub fix_label: bool,
    pub label: String,
    pub properties: Option<Vec<String>>,
}

// JSON (de)serialization is hand-rolled over [`crate::json`]; the schema —
// field names, optional fields defaulting to false/None, `properties`
// omitted when absent — matches what serde derive produced in earlier
// revisions, so existing config files keep parsing byte-for-byte.

fn err(msg: impl Into<String>) -> GraphError {
    GraphError::Config(format!("invalid overlay JSON: {}", msg.into()))
}

fn get_string(obj: &Json, ctx: &str, key: &str) -> GraphResult<String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| err(format!("{ctx}: missing string field '{key}'")))
}

fn get_opt_string(obj: &Json, ctx: &str, key: &str) -> GraphResult<Option<String>> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(err(format!("{ctx}: field '{key}' must be a string"))),
    }
}

fn get_bool(obj: &Json, ctx: &str, key: &str) -> GraphResult<bool> {
    match obj.get(key) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| err(format!("{ctx}: field '{key}' must be a boolean"))),
    }
}

fn get_properties(obj: &Json, ctx: &str) -> GraphResult<Option<Vec<String>>> {
    match obj.get("properties") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| err(format!("{ctx}: properties must be strings")))
            })
            .collect::<GraphResult<Vec<_>>>()
            .map(Some),
        Some(_) => Err(err(format!("{ctx}: field 'properties' must be an array"))),
    }
}

fn properties_json(props: &[String]) -> Json {
    Json::Arr(props.iter().map(|p| Json::str(p.clone())).collect())
}

impl VTableConfig {
    fn from_json_value(v: &Json) -> GraphResult<VTableConfig> {
        if v.as_object().is_none() {
            return Err(err("v_tables entries must be objects"));
        }
        let table_name = get_string(v, "v_table", "table_name")?;
        let ctx = format!("v_table '{table_name}'");
        Ok(VTableConfig {
            prefixed_id: get_bool(v, &ctx, "prefixed_id")?,
            id: get_string(v, &ctx, "id")?,
            fix_label: get_bool(v, &ctx, "fix_label")?,
            label: get_string(v, &ctx, "label")?,
            properties: get_properties(v, &ctx)?,
            table_name,
        })
    }

    fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("table_name", Json::str(self.table_name.clone())),
            ("prefixed_id", Json::Bool(self.prefixed_id)),
            ("id", Json::str(self.id.clone())),
            ("fix_label", Json::Bool(self.fix_label)),
            ("label", Json::str(self.label.clone())),
        ];
        if let Some(props) = &self.properties {
            fields.push(("properties", properties_json(props)));
        }
        Json::obj(fields)
    }
}

impl ETableConfig {
    fn from_json_value(v: &Json) -> GraphResult<ETableConfig> {
        if v.as_object().is_none() {
            return Err(err("e_tables entries must be objects"));
        }
        let table_name = get_string(v, "e_table", "table_name")?;
        let ctx = format!("e_table '{table_name}'");
        Ok(ETableConfig {
            src_v_table: get_opt_string(v, &ctx, "src_v_table")?,
            src_v: get_string(v, &ctx, "src_v")?,
            dst_v_table: get_opt_string(v, &ctx, "dst_v_table")?,
            dst_v: get_string(v, &ctx, "dst_v")?,
            prefixed_edge_id: get_bool(v, &ctx, "prefixed_edge_id")?,
            implicit_edge_id: get_bool(v, &ctx, "implicit_edge_id")?,
            id: get_opt_string(v, &ctx, "id")?,
            fix_label: get_bool(v, &ctx, "fix_label")?,
            label: get_string(v, &ctx, "label")?,
            properties: get_properties(v, &ctx)?,
            table_name,
        })
    }

    fn to_json_value(&self) -> Json {
        let mut fields = vec![("table_name", Json::str(self.table_name.clone()))];
        if let Some(t) = &self.src_v_table {
            fields.push(("src_v_table", Json::str(t.clone())));
        }
        fields.push(("src_v", Json::str(self.src_v.clone())));
        if let Some(t) = &self.dst_v_table {
            fields.push(("dst_v_table", Json::str(t.clone())));
        }
        fields.push(("dst_v", Json::str(self.dst_v.clone())));
        fields.push(("prefixed_edge_id", Json::Bool(self.prefixed_edge_id)));
        fields.push(("implicit_edge_id", Json::Bool(self.implicit_edge_id)));
        if let Some(id) = &self.id {
            fields.push(("id", Json::str(id.clone())));
        }
        fields.push(("fix_label", Json::Bool(self.fix_label)));
        fields.push(("label", Json::str(self.label.clone())));
        if let Some(props) = &self.properties {
            fields.push(("properties", properties_json(props)));
        }
        Json::obj(fields)
    }
}

impl OverlayConfig {
    /// Parse a configuration from JSON text.
    pub fn from_json(text: &str) -> GraphResult<OverlayConfig> {
        let doc = Json::parse(text).map_err(err)?;
        if doc.as_object().is_none() {
            return Err(err("top level must be an object"));
        }
        let section = |key: &str| -> GraphResult<Vec<Json>> {
            match doc.get(key) {
                None | Some(Json::Null) => Ok(Vec::new()),
                Some(Json::Arr(items)) => Ok(items.clone()),
                Some(_) => Err(err(format!("'{key}' must be an array"))),
            }
        };
        Ok(OverlayConfig {
            v_tables: section("v_tables")?
                .iter()
                .map(VTableConfig::from_json_value)
                .collect::<GraphResult<_>>()?,
            e_tables: section("e_tables")?
                .iter()
                .map(ETableConfig::from_json_value)
                .collect::<GraphResult<_>>()?,
        })
    }

    /// Serialize to pretty JSON (what AutoOverlay writes out).
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            (
                "v_tables",
                Json::Arr(self.v_tables.iter().map(VTableConfig::to_json_value).collect()),
            ),
            (
                "e_tables",
                Json::Arr(self.e_tables.iter().map(ETableConfig::to_json_value).collect()),
            ),
        ])
        .to_pretty()
    }

    /// Structural sanity checks that do not need the database catalog.
    pub fn validate_shape(&self) -> GraphResult<()> {
        if self.v_tables.is_empty() {
            return Err(GraphError::Config("overlay has no vertex tables".into()));
        }
        for v in &self.v_tables {
            if v.table_name.is_empty() {
                return Err(GraphError::Config("vertex table with empty name".into()));
            }
            if v.fix_label && !(v.label.starts_with('\'') && v.label.ends_with('\'')) {
                return Err(GraphError::Config(format!(
                    "vertex table '{}': fix_label requires a quoted constant label",
                    v.table_name
                )));
            }
        }
        for e in &self.e_tables {
            if e.implicit_edge_id && e.id.is_some() {
                return Err(GraphError::Config(format!(
                    "edge table '{}': implicit_edge_id and explicit id are mutually exclusive",
                    e.table_name
                )));
            }
            if !e.implicit_edge_id && e.id.is_none() {
                return Err(GraphError::Config(format!(
                    "edge table '{}': needs either implicit_edge_id or an id definition",
                    e.table_name
                )));
            }
            if e.fix_label && !(e.label.starts_with('\'') && e.label.ends_with('\'')) {
                return Err(GraphError::Config(format!(
                    "edge table '{}': fix_label requires a quoted constant label",
                    e.table_name
                )));
            }
        }
        Ok(())
    }
}

/// Parse a label definition: `Some(constant)` when quoted, else `None`
/// (meaning: it's a column name).
pub fn parse_label_constant(label: &str) -> Option<String> {
    label
        .strip_prefix('\'')
        .and_then(|s| s.strip_suffix('\''))
        .map(str::to_string)
}

/// The paper's Section 5 example configuration (healthcare overlay), used
/// by tests, examples, and documentation.
pub fn healthcare_example_json() -> &'static str {
    r#"{
  "v_tables": [
    {
      "table_name": "Patient",
      "prefixed_id": true,
      "id": "'patient'::patientID",
      "fix_label": true,
      "label": "'patient'",
      "properties": ["patientID", "name", "address", "subscriptionID"]
    },
    {
      "table_name": "Disease",
      "id": "diseaseID",
      "fix_label": true,
      "label": "'disease'",
      "properties": ["diseaseID", "conceptCode", "conceptName"]
    }
  ],
  "e_tables": [
    {
      "table_name": "DiseaseOntology",
      "src_v_table": "Disease",
      "src_v": "sourceID",
      "dst_v_table": "Disease",
      "dst_v": "targetID",
      "prefixed_edge_id": true,
      "id": "'ontology'::sourceID::targetID",
      "label": "type"
    },
    {
      "table_name": "HasDisease",
      "src_v_table": "Patient",
      "src_v": "'patient'::patientID",
      "dst_v_table": "Disease",
      "dst_v": "diseaseID",
      "implicit_edge_id": true,
      "fix_label": true,
      "label": "'hasDisease'"
    }
  ]
}"#
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_parses() {
        let cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.validate_shape().unwrap();
        assert_eq!(cfg.v_tables.len(), 2);
        assert_eq!(cfg.e_tables.len(), 2);
        let patient = &cfg.v_tables[0];
        assert!(patient.prefixed_id);
        assert_eq!(patient.id, "'patient'::patientID");
        assert!(patient.fix_label);
        let ontology = &cfg.e_tables[0];
        assert!(!ontology.fix_label);
        assert_eq!(ontology.label, "type");
        assert!(ontology.prefixed_edge_id);
        let hd = &cfg.e_tables[1];
        assert!(hd.implicit_edge_id);
        assert!(hd.properties.is_none()); // defaults to remaining columns
    }

    #[test]
    fn roundtrip_json() {
        let cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        let text = cfg.to_json();
        let cfg2 = OverlayConfig::from_json(&text).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn shape_validation_catches_mistakes() {
        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.e_tables[1].id = Some("'x'::a".into());
        assert!(cfg.validate_shape().is_err()); // implicit + explicit id

        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.e_tables[0].id = None;
        assert!(cfg.validate_shape().is_err()); // no id at all

        let mut cfg = OverlayConfig::from_json(healthcare_example_json()).unwrap();
        cfg.v_tables[0].label = "patient".into(); // fix_label without quotes
        assert!(cfg.validate_shape().is_err());

        let cfg = OverlayConfig::default();
        assert!(cfg.validate_shape().is_err()); // no vertex tables

        assert!(OverlayConfig::from_json("{ not json").is_err());
    }

    #[test]
    fn label_constant_parsing() {
        assert_eq!(parse_label_constant("'patient'"), Some("patient".into()));
        assert_eq!(parse_label_constant("type"), None);
    }
}
