//! The four LinkBench query templates (Table 1) and the workload driver.
//!
//! | LinkBench query        | Gremlin                                        |
//! |------------------------|------------------------------------------------|
//! | getNode(id, lbl)       | `g.V(id).hasLabel(lbl)`                        |
//! | countLinks(id1, lbl)   | `g.V(id1).outE(lbl).count()`                   |
//! | getLink(id1, lbl, id2) | `g.V(id1).outE(lbl).filter(inV().id() == id2)` |
//! | getLinkList(id1, lbl)  | `g.V(id1).outE(lbl)`                           |
//!
//! Note: the paper's Table 1 prints `outV()` in getLink; since the query's
//! purpose is "fetch the link from id1 *to* id2" and `outV()` of an
//! out-edge of `id1` is always `id1` itself, we take that as a typo for
//! `inV()` (see EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::GraphData;

/// The four query types of the LinkBench query-only workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    GetNode,
    CountLinks,
    GetLink,
    GetLinkList,
}

impl QueryKind {
    pub const ALL: [QueryKind; 4] = [
        QueryKind::GetNode,
        QueryKind::CountLinks,
        QueryKind::GetLink,
        QueryKind::GetLinkList,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::GetNode => "getNode",
            QueryKind::CountLinks => "countLinks",
            QueryKind::GetLink => "getLink",
            QueryKind::GetLinkList => "getLinkList",
        }
    }
}

/// Gremlin text for getNode(id, lbl).
pub fn get_node(id: i64, label: &str) -> String {
    format!("g.V({id}).hasLabel('{label}')")
}

/// Gremlin text for countLinks(id1, lbl).
pub fn count_links(id1: i64, label: &str) -> String {
    format!("g.V({id1}).outE('{label}').count()")
}

/// Gremlin text for getLink(id1, lbl, id2).
pub fn get_link(id1: i64, label: &str, id2: i64) -> String {
    format!("g.V({id1}).outE('{label}').filter(inV().id() == {id2})")
}

/// Gremlin text for getLinkList(id1, lbl).
pub fn get_link_list(id1: i64, label: &str) -> String {
    format!("g.V({id1}).outE('{label}')")
}

/// Deterministic stream of LinkBench queries of one kind, parameterized
/// from the generated dataset (hot vertices queried more often, existing
/// links used for getLink).
pub struct QueryStream<'a> {
    data: &'a GraphData,
    kind: QueryKind,
    rng: StdRng,
}

impl<'a> QueryStream<'a> {
    pub fn new(data: &'a GraphData, kind: QueryKind, seed: u64) -> QueryStream<'a> {
        QueryStream { data, kind, rng: StdRng::seed_from_u64(seed) }
    }

    /// Next query's Gremlin text.
    pub fn next_query(&mut self) -> String {
        match self.kind {
            QueryKind::GetNode => {
                let id = self.data.sample_vertex(&mut self.rng);
                get_node(id, self.data.vertex_label(id))
            }
            QueryKind::CountLinks => {
                let l = self.data.sample_link(&mut self.rng);
                count_links(l.id1, &l.label)
            }
            QueryKind::GetLink => {
                let l = self.data.sample_link(&mut self.rng);
                get_link(l.id1, &l.label, l.id2)
            }
            QueryKind::GetLinkList => {
                let l = self.data.sample_link(&mut self.rng);
                get_link_list(l.id1, &l.label)
            }
        }
    }

    /// A batch of `n` queries.
    pub fn batch(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

/// A mixed stream cycling uniformly through all four kinds (used for
/// warmups and smoke tests).
pub fn mixed_batch(data: &GraphData, n: usize, seed: u64) -> Vec<(QueryKind, String)> {
    let mut streams: Vec<QueryStream<'_>> = QueryKind::ALL
        .iter()
        .map(|&k| QueryStream::new(data, k, seed ^ (k as u64).wrapping_mul(0x9e3779b9)))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let i = rng.gen_range(0..streams.len());
            (QueryKind::ALL[i], streams[i].next_query())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, LinkBenchConfig};
    use crate::tables::{materialize, overlay_config};
    use db2graph_core::Db2Graph;
    use gremlin::GValue;

    #[test]
    fn templates_render_table1_shapes() {
        assert_eq!(get_node(5, "vt1"), "g.V(5).hasLabel('vt1')");
        assert_eq!(count_links(5, "et2"), "g.V(5).outE('et2').count()");
        assert_eq!(get_link(5, "et2", 9), "g.V(5).outE('et2').filter(inV().id() == 9)");
        assert_eq!(get_link_list(5, "et2"), "g.V(5).outE('et2')");
    }

    #[test]
    fn streams_are_deterministic_and_valid() {
        let data = generate(&LinkBenchConfig::small().with_vertices(500));
        let mut a = QueryStream::new(&data, QueryKind::GetLink, 1);
        let mut b = QueryStream::new(&data, QueryKind::GetLink, 1);
        assert_eq!(a.batch(10), b.batch(10));
        let mut c = QueryStream::new(&data, QueryKind::GetLink, 2);
        assert_ne!(a.batch(10), c.batch(10));
    }

    #[test]
    fn all_query_kinds_execute_and_hit() {
        let data = generate(&LinkBenchConfig::small().with_vertices(400));
        let (db, _) = materialize(&data).unwrap();
        let graph = Db2Graph::open(db, &overlay_config()).unwrap();
        // getNode finds the vertex (label matches by construction).
        let mut s = QueryStream::new(&data, QueryKind::GetNode, 7);
        let out = graph.run(&s.next_query()).unwrap();
        assert_eq!(out.len(), 1);
        // getLink over an existing link returns exactly one edge.
        let mut s = QueryStream::new(&data, QueryKind::GetLink, 7);
        let out = graph.run(&s.next_query()).unwrap();
        assert_eq!(out.len(), 1);
        // countLinks returns a positive count for a sampled source.
        let mut s = QueryStream::new(&data, QueryKind::CountLinks, 7);
        let out = graph.run(&s.next_query()).unwrap();
        match &out[0] {
            GValue::Long(n) => assert!(*n >= 1),
            other => panic!("{other:?}"),
        }
        // getLinkList returns at least the sampled link.
        let mut s = QueryStream::new(&data, QueryKind::GetLinkList, 7);
        let out = graph.run(&s.next_query()).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn mixed_batch_covers_kinds() {
        let data = generate(&LinkBenchConfig::small().with_vertices(300));
        let batch = mixed_batch(&data, 64, 5);
        let kinds: std::collections::HashSet<QueryKind> =
            batch.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds.len(), 4);
    }
}
