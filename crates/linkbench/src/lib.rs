//! # linkbench — the evaluation workload
//!
//! A deterministic LinkBench-like benchmark (the paper evaluates on
//! Facebook's LinkBench, Section 8): a power-law social graph with 10
//! vertex and 10 edge types ([`gen`]), materialized into relational tables
//! with the overlay that retrofits a graph view onto them ([`tables`]),
//! plus the four query-only templates of Table 1 and their workload driver
//! ([`queries`]).

pub mod gen;
pub mod queries;
pub mod tables;

pub use gen::{generate, DatasetStats, GraphData, LinkBenchConfig};
pub use queries::{mixed_batch, QueryKind, QueryStream};
pub use tables::{materialize, overlay_config, to_elements, NUM_TYPES};
