//! Synthetic LinkBench-like graph generation.
//!
//! Reproduces the *shape* of the paper's Table 2 datasets: a social-graph
//! workload with a power-law out-degree distribution (average degree
//! ≈ 4.2–4.3 with a very heavy maximum-degree tail), 10 vertex types, 10
//! edge types, 3 properties per vertex and 4 per edge. Row counts are
//! scaled down (the paper used 10M/100M vertices on a 256 GB server); the
//! benchmark harness scales cache budgets proportionally so the relative
//! behaviour reproduces.
//!
//! Generation is deterministic for a given seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct LinkBenchConfig {
    pub num_vertices: u64,
    /// Average out-degree; LinkBench's datasets sit at ~4.2–4.3.
    pub avg_degree: f64,
    pub num_vertex_types: usize,
    pub num_edge_types: usize,
    /// Power-law skew exponent for source-vertex sampling (0 = uniform,
    /// larger = heavier head). 0.7 yields a max degree of a few percent of
    /// all edges, like LinkBench.
    pub skew: f64,
    pub seed: u64,
}

impl LinkBenchConfig {
    /// A small dataset (CI-friendly; stands in for LinkBench-10M).
    pub fn small() -> LinkBenchConfig {
        LinkBenchConfig {
            num_vertices: 10_000,
            avg_degree: 4.3,
            num_vertex_types: 10,
            num_edge_types: 10,
            skew: 0.7,
            seed: 42,
        }
    }

    /// A larger dataset (stands in for LinkBench-100M; 10× the small one).
    pub fn large() -> LinkBenchConfig {
        LinkBenchConfig { num_vertices: 100_000, seed: 43, ..LinkBenchConfig::small() }
    }

    /// Scale to an arbitrary vertex count.
    pub fn with_vertices(mut self, n: u64) -> LinkBenchConfig {
        self.num_vertices = n;
        self
    }
}

/// A generated vertex: 3 properties (version, time, data) per LinkBench's
/// node table.
#[derive(Debug, Clone)]
pub struct NodeData {
    pub id: i64,
    pub label: String,
    pub version: i64,
    pub time: i64,
    pub data: String,
}

/// A generated edge: 4 properties (visibility, time, version, data) per
/// LinkBench's link table.
#[derive(Debug, Clone)]
pub struct LinkData {
    pub id1: i64,
    pub id2: i64,
    pub label: String,
    pub visibility: i64,
    pub time: i64,
    pub version: i64,
    pub data: String,
}

/// A complete generated dataset.
#[derive(Debug, Clone)]
pub struct GraphData {
    pub nodes: Vec<NodeData>,
    pub links: Vec<LinkData>,
    pub config: LinkBenchConfig,
}

/// Table 2 statistics for a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub num_vertices: u64,
    pub num_edges: u64,
    pub avg_degree: f64,
    pub max_degree: u64,
    pub csv_bytes: u64,
}

/// Sample a power-law-distributed vertex rank in `[0, n)`:
/// `rank = floor(n * u^(1/(1-skew)))` puts mass `∝ rank^(-skew)` on low
/// ranks.
fn sample_rank(rng: &mut StdRng, n: u64, skew: f64) -> u64 {
    if skew <= 0.0 {
        return rng.gen_range(0..n);
    }
    let a = 1.0 / (1.0 - skew.min(0.99));
    let u: f64 = rng.gen::<f64>();
    ((n as f64) * u.powf(a)).floor().min((n - 1) as f64) as u64
}

fn random_payload(rng: &mut StdRng, len: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
}

/// Generate a dataset.
pub fn generate(config: &LinkBenchConfig) -> GraphData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_vertices;
    let mut nodes = Vec::with_capacity(n as usize);
    for id in 0..n as i64 {
        let vt = rng.gen_range(0..config.num_vertex_types);
        nodes.push(NodeData {
            id,
            label: format!("vt{vt}"),
            version: rng.gen_range(1..100),
            time: 1_500_000_000 + rng.gen_range(0..100_000_000),
            data: random_payload(&mut rng, 32),
        });
    }
    let target_edges = (n as f64 * config.avg_degree) as u64;
    let mut links = Vec::with_capacity(target_edges as usize);
    let mut seen: HashSet<(i64, u8, i64)> = HashSet::with_capacity(target_edges as usize);
    let mut attempts = 0u64;
    while (links.len() as u64) < target_edges && attempts < target_edges * 4 {
        attempts += 1;
        let src = sample_rank(&mut rng, n, config.skew) as i64;
        let dst = rng.gen_range(0..n) as i64;
        if src == dst {
            continue;
        }
        let et = rng.gen_range(0..config.num_edge_types) as u8;
        // Implicit edge ids require (src, label, dst) uniqueness.
        if !seen.insert((src, et, dst)) {
            continue;
        }
        links.push(LinkData {
            id1: src,
            id2: dst,
            label: format!("et{et}"),
            visibility: rng.gen_range(0..2),
            time: 1_500_000_000 + rng.gen_range(0..100_000_000),
            version: rng.gen_range(1..50),
            data: random_payload(&mut rng, 20),
        });
    }
    GraphData { nodes, links, config: config.clone() }
}

impl GraphData {
    /// Compute Table 2's statistics.
    pub fn stats(&self) -> DatasetStats {
        let mut out_deg: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
        for l in &self.links {
            *out_deg.entry(l.id1).or_insert(0) += 1;
        }
        let max_degree = out_deg.values().copied().max().unwrap_or(0);
        let csv_bytes: u64 = self
            .nodes
            .iter()
            .map(|v| (20 + v.label.len() + v.data.len() + 22) as u64)
            .sum::<u64>()
            + self
                .links
                .iter()
                .map(|e| (30 + e.label.len() + e.data.len() + 30) as u64)
                .sum::<u64>();
        DatasetStats {
            num_vertices: self.nodes.len() as u64,
            num_edges: self.links.len() as u64,
            avg_degree: self.links.len() as f64 / self.nodes.len() as f64,
            max_degree,
            csv_bytes,
        }
    }

    /// Random existing vertex id, biased toward hot (high-degree) vertices
    /// like LinkBench's access distributions.
    pub fn sample_vertex(&self, rng: &mut StdRng) -> i64 {
        sample_rank(rng, self.nodes.len() as u64, self.config.skew) as i64
    }

    /// Random existing edge (for getLink-style queries).
    pub fn sample_link(&self, rng: &mut StdRng) -> &LinkData {
        &self.links[rng.gen_range(0..self.links.len())]
    }

    /// Label of a vertex by id (ids are dense 0..n).
    pub fn vertex_label(&self, id: i64) -> &str {
        &self.nodes[id as usize].label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = LinkBenchConfig::small().with_vertices(500);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.nodes.len(), b.nodes.len());
        assert_eq!(a.links.len(), b.links.len());
        assert_eq!(a.links[0].id1, b.links[0].id1);
        assert_eq!(a.nodes[10].data, b.nodes[10].data);
    }

    #[test]
    fn shape_matches_table2() {
        let cfg = LinkBenchConfig::small().with_vertices(2_000);
        let g = generate(&cfg);
        let s = g.stats();
        assert_eq!(s.num_vertices, 2_000);
        // Average degree near the configured 4.3 (dedup/self-loop losses
        // allowed).
        assert!(s.avg_degree > 3.5 && s.avg_degree < 4.4, "{}", s.avg_degree);
        // Heavy tail: max degree far above the average.
        assert!(s.max_degree as f64 > 10.0 * s.avg_degree, "max {}", s.max_degree);
        assert!(s.csv_bytes > 0);
    }

    #[test]
    fn labels_span_the_type_space() {
        let g = generate(&LinkBenchConfig::small().with_vertices(2_000));
        let vlabels: std::collections::HashSet<&str> =
            g.nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(vlabels.len(), 10);
        let elabels: std::collections::HashSet<&str> =
            g.links.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(elabels.len(), 10);
    }

    #[test]
    fn edge_keys_are_unique() {
        let g = generate(&LinkBenchConfig::small().with_vertices(1_000));
        let mut seen = HashSet::new();
        for l in &g.links {
            assert!(seen.insert((l.id1, l.label.clone(), l.id2)));
            assert_ne!(l.id1, l.id2);
        }
    }

    #[test]
    fn sampling_prefers_hot_vertices() {
        let g = generate(&LinkBenchConfig::small().with_vertices(10_000));
        let mut rng = StdRng::seed_from_u64(7);
        let mut low = 0;
        for _ in 0..1000 {
            if g.sample_vertex(&mut rng) < 1000 {
                low += 1;
            }
        }
        // With skew 0.7, far more than 10% of samples land in the first 10%.
        assert!(low > 400, "{low}");
    }

    #[test]
    fn uniform_sampling_when_skew_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0;
        for _ in 0..1000 {
            if sample_rank(&mut rng, 1000, 0.0) < 100 {
                low += 1;
            }
        }
        assert!((50..200).contains(&low), "{low}");
    }
}
