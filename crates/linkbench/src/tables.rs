//! Materializing a LinkBench dataset into the relational database, and the
//! overlay configuration that retrofits a graph view onto it.
//!
//! Following common practice — and the paper's dataset description ("There
//! are 10 types of vertices and also 10 types of edges") — each vertex type
//! and each edge type is stored in its own table: `nodes_vt0..nodes_vt9`
//! and `links_et0..links_et9`, each with a *fixed label* in the overlay.
//! This is the layout where the paper's optimizations matter: label values
//! and pushed-down predicates eliminate 9 of 10 tables per query, and the
//! GraphStep::VertexStep mutation avoids querying any vertex table at all.
//!
//! Vertex ids are globally unique across the ten tables (LinkBench ids),
//! so the overlay uses plain unprefixed ids; a query without a label must
//! therefore search all ten tables — exactly the behaviour Section 6.3's
//! optimizations exist to avoid.

use std::sync::Arc;
use std::time::{Duration, Instant};

use db2graph_core::{ETableConfig, OverlayConfig, VTableConfig};
use gremlin::structure::{Edge, Vertex};
use reldb::{Database, DbResult, Value};

use crate::gen::GraphData;

/// Number of per-type tables (matches the generator's 10 vertex and 10
/// edge types).
pub const NUM_TYPES: usize = 10;

/// Create the 10+10 table schema with the indexes the paper grants every
/// system, and bulk-insert the dataset. Returns the database and the load
/// duration.
pub fn materialize(data: &GraphData) -> DbResult<(Arc<Database>, Duration)> {
    let db = Arc::new(Database::new());
    let mut ddl = String::new();
    for k in 0..NUM_TYPES {
        ddl.push_str(&format!(
            "CREATE TABLE nodes_vt{k} (
                id BIGINT PRIMARY KEY,
                version BIGINT,
                time BIGINT,
                data VARCHAR
            );\n"
        ));
    }
    for k in 0..NUM_TYPES {
        ddl.push_str(&format!(
            "CREATE TABLE links_et{k} (
                id1 BIGINT NOT NULL,
                id2 BIGINT NOT NULL,
                visibility BIGINT,
                time BIGINT,
                version BIGINT,
                data VARCHAR
            );
            CREATE INDEX ix_links_et{k}_id1 ON links_et{k} (id1);
            CREATE INDEX ix_links_et{k}_id2 ON links_et{k} (id2);\n"
        ));
    }
    db.execute_script(&ddl)?;

    let start = Instant::now();
    db.set_enforce_foreign_keys(false);
    let node_tables: Vec<_> = (0..NUM_TYPES)
        .map(|k| db.get_table(&format!("nodes_vt{k}")).expect("created above"))
        .collect();
    for n in &data.nodes {
        let k: usize = n.label[2..].parse().expect("label vtK");
        db.insert_row(
            &node_tables[k],
            vec![
                Value::Bigint(n.id),
                Value::Bigint(n.version),
                Value::Bigint(n.time),
                Value::Varchar(n.data.clone()),
            ],
        )?;
    }
    let link_tables: Vec<_> = (0..NUM_TYPES)
        .map(|k| db.get_table(&format!("links_et{k}")).expect("created above"))
        .collect();
    for l in &data.links {
        let k: usize = l.label[2..].parse().expect("label etK");
        db.insert_row(
            &link_tables[k],
            vec![
                Value::Bigint(l.id1),
                Value::Bigint(l.id2),
                Value::Bigint(l.visibility),
                Value::Bigint(l.time),
                Value::Bigint(l.version),
                Value::Varchar(l.data.clone()),
            ],
        )?;
    }
    db.set_enforce_foreign_keys(true);
    Ok((db, start.elapsed()))
}

/// The overlay configuration: ten fixed-label vertex tables and ten
/// fixed-label edge tables with implicit edge ids.
pub fn overlay_config() -> OverlayConfig {
    let v_tables = (0..NUM_TYPES)
        .map(|k| VTableConfig {
            table_name: format!("nodes_vt{k}"),
            prefixed_id: false,
            id: "id".into(),
            fix_label: true,
            label: format!("'vt{k}'"),
            properties: Some(vec!["version".into(), "time".into(), "data".into()]),
        })
        .collect();
    let e_tables = (0..NUM_TYPES)
        .map(|k| ETableConfig {
            table_name: format!("links_et{k}"),
            // Sources/destinations span all ten node tables, so no
            // src_v_table/dst_v_table link can be declared.
            src_v_table: None,
            src_v: "id1".into(),
            dst_v_table: None,
            dst_v: "id2".into(),
            prefixed_edge_id: false,
            implicit_edge_id: true,
            id: None,
            fix_label: true,
            label: format!("'et{k}'"),
            properties: Some(vec![
                "visibility".into(),
                "time".into(),
                "version".into(),
                "data".into(),
            ]),
        })
        .collect();
    OverlayConfig { v_tables, e_tables }
}

/// Build the equivalent graph directly as vertices/edges (for loading the
/// baseline stores without going through export, used by unit tests).
pub fn to_elements(data: &GraphData) -> (Vec<Vertex>, Vec<Edge>) {
    let vertices: Vec<Vertex> = data
        .nodes
        .iter()
        .map(|n| {
            Vertex::new(n.id, n.label.as_str())
                .with_property("version", n.version)
                .with_property("time", n.time)
                .with_property("data", n.data.as_str())
        })
        .collect();
    let edges: Vec<Edge> = data
        .links
        .iter()
        .map(|l| {
            Edge::new(
                format!("{}::{}::{}", l.id1, l.label, l.id2),
                l.label.as_str(),
                l.id1,
                l.id2,
            )
            .with_property("visibility", l.visibility)
            .with_property("time", l.time)
            .with_property("version", l.version)
            .with_property("data", l.data.as_str())
        })
        .collect();
    (vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, LinkBenchConfig};
    use db2graph_core::Db2Graph;
    use gremlin::GValue;

    #[test]
    fn materialize_and_overlay_roundtrip() {
        let data = generate(&LinkBenchConfig::small().with_vertices(300));
        let (db, _t) = materialize(&data).unwrap();
        let mut total = 0;
        for k in 0..NUM_TYPES {
            let rs = db.execute(&format!("SELECT COUNT(*) FROM nodes_vt{k}")).unwrap();
            total += rs.scalar().unwrap().as_i64().unwrap();
        }
        assert_eq!(total, 300);

        let graph = Db2Graph::open(db, &overlay_config()).unwrap();
        let out = graph.run("g.V().count()").unwrap();
        assert_eq!(out, vec![GValue::Long(300)]);
        let out = graph.run("g.E().count()").unwrap();
        assert_eq!(out, vec![GValue::Long(data.links.len() as i64)]);
    }

    #[test]
    fn degree_queries_agree_with_generator() {
        let data = generate(&LinkBenchConfig::small().with_vertices(300));
        let (db, _) = materialize(&data).unwrap();
        let graph = Db2Graph::open(db, &overlay_config()).unwrap();
        let expected = data.links.iter().filter(|l| l.id1 == 0).count() as i64;
        let out = graph.run("g.V(0).outE().count()").unwrap();
        assert_eq!(out, vec![GValue::Long(expected)]);
        // Per-label degree matches too.
        let expected = data
            .links
            .iter()
            .filter(|l| l.id1 == 0 && l.label == "et3")
            .count() as i64;
        let out = graph.run("g.V(0).outE('et3').count()").unwrap();
        assert_eq!(out, vec![GValue::Long(expected)]);
    }

    #[test]
    fn label_elimination_prunes_nine_tables() {
        let data = generate(&LinkBenchConfig::small().with_vertices(300));
        let (db, _) = materialize(&data).unwrap();
        let graph = Db2Graph::open(db, &overlay_config()).unwrap();
        let before = graph.stats();
        let id = data.nodes[5].id;
        let label = &data.nodes[5].label;
        graph.run(&format!("g.V({id}).hasLabel('{label}')")).unwrap();
        let d = graph.stats().since(&before);
        assert_eq!(d.sql_queries, 1, "label should pin one table: {d:?}");
        // Without a label, all ten node tables must be searched.
        let before = graph.stats();
        graph.run(&format!("g.V({id})")).unwrap();
        let d = graph.stats().since(&before);
        assert_eq!(d.sql_queries, NUM_TYPES as u64, "{d:?}");
    }

    #[test]
    fn elements_match_row_counts() {
        let data = generate(&LinkBenchConfig::small().with_vertices(200));
        let (vs, es) = to_elements(&data);
        assert_eq!(vs.len(), 200);
        assert_eq!(es.len(), data.links.len());
        assert_eq!(vs[5].properties.len(), 3);
        assert_eq!(es[0].properties.len(), 4);
    }
}
