//! Minimal HTTP/1.1 request reader and response writer over `std::net`.
//!
//! Only what the query service needs: one request per connection
//! (`Connection: close`), a method + path + body, hard limits on header
//! and body size, and socket read timeouts against slow clients. Anything
//! malformed becomes a structured [`HttpError`] the worker maps to a 4xx
//! response — never a panic.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Read-side failure classification; each variant maps to one status code.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed before sending a full request head; nothing to
    /// answer.
    Closed,
    /// The socket read timed out before the request completed (408).
    Timeout,
    /// The request head exceeded the header budget (431).
    HeadersTooLarge,
    /// The declared or delivered body exceeded the body budget (413).
    BodyTooLarge,
    /// Unparseable request line, header, or length (400).
    Malformed(String),
    /// Transport error mid-read; connection is unusable.
    Io(std::io::Error),
}

/// A parsed request: just enough surface for routing.
pub struct Request {
    pub method: String,
    pub path: String,
    /// Raw query string (without the `?`); empty when absent. The service
    /// routes on the path alone, but `/wal` reads its position from here.
    pub query: String,
    /// Header `(name, value)` pairs in arrival order, names and values
    /// trimmed. Routing needs only a couple (`X-Request-Id`, `Accept`);
    /// keeping them all costs one small Vec per request.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Total bytes read off the wire (head + body), for ingress metering.
    pub wire_bytes: u64,
}

impl Request {
    /// The value of query parameter `name`, if present (no percent
    /// decoding — replication positions are plain integers).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// The first header named `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// One `read()` charged against the request's total deadline: the socket
/// timeout is shrunk to the remaining budget before every read, so a
/// slow-loris client dripping one byte per read cannot renew the clock —
/// the whole request must arrive within `read_timeout` of the first read.
fn read_some(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
) -> Result<usize, HttpError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(HttpError::Timeout);
    }
    // `set_read_timeout(Some(0))` is an error, and `remaining` is nonzero
    // here; any other failure surfaces on the read itself.
    let _ = stream.set_read_timeout(Some(remaining));
    match stream.read(chunk) {
        Ok(n) => Ok(n),
        Err(e) if is_timeout(&e) => Err(HttpError::Timeout),
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// Read one full request from the stream under the given limits.
/// `read_timeout` is the total budget for the whole request (head and
/// body together), not a per-read idle timeout.
pub fn read_request(
    stream: &mut TcpStream,
    max_header_bytes: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
) -> Result<Request, HttpError> {
    let deadline = Instant::now() + read_timeout;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let n = match read_some(stream, &mut chunk, deadline)? {
            0 => {
                return if buf.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Malformed("connection closed mid-request".into()))
                }
            }
            n => n,
        };
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol {:?}",
                other.unwrap_or("")
            )))
        }
    }
    // Split off the query string; the service routes on the path alone.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length: usize = 0;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header line '{line}'")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length '{value}'")))?;
        }
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    if body.len() > content_length {
        // Pipelined extra bytes: this server is strictly one request per
        // connection, so anything past the declared body is an error.
        return Err(HttpError::Malformed("unexpected bytes after request body".into()));
    }
    while body.len() < content_length {
        let n = match read_some(stream, &mut chunk, deadline)? {
            0 => return Err(HttpError::Malformed("connection closed mid-body".into())),
            n => n,
        };
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_length {
            return Err(HttpError::Malformed("body longer than content-length".into()));
        }
    }
    let wire_bytes = (body_start + body.len()) as u64;
    Ok(Request { method, path, query, headers, body, wire_bytes })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete JSON response and return the bytes put on the wire.
/// Every response closes the connection — admission control is per
/// request, so connection reuse would let one client squat a worker.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<u64> {
    write_response_raw(stream, status, "application/json", body.as_bytes(), false)
}

/// Write a complete response with an explicit content type, optionally
/// headers-only (a `HEAD` answer: the `Content-Length` still describes
/// the body a `GET` would have returned, but no body bytes follow).
/// Returns the bytes put on the wire.
pub fn write_response_raw(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    head_only: bool,
) -> std::io::Result<u64> {
    write_response_with(stream, status, content_type, body, head_only, &[])
}

/// [`write_response_raw`] with extra response headers (e.g. the
/// `X-Request-Id` correlation header). Header values must already be
/// wire-safe: no CR/LF.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    head_only: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if head_only {
        stream.flush()?;
        return Ok(head.len() as u64);
    }
    stream.write_all(body)?;
    stream.flush()?;
    Ok((head.len() + body.len()) as u64)
}
