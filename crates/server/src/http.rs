//! Minimal HTTP/1.1 request reader and response writer over `std::net`.
//!
//! Only what the query service needs: persistent connections with
//! keep-alive negotiation (HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
//! close, `Connection: close` / `keep-alive` override either way), a
//! method + path + body, hard limits on header and body size, and socket
//! read timeouts against slow clients. Bytes a client pipelines past one
//! request's body are carried over as the start of the next request.
//! Anything malformed becomes a structured [`HttpError`] the worker maps
//! to a 4xx response — never a panic.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Read-side failure classification; each variant maps to one status code.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed (or the idle keep-alive window lapsed) before
    /// sending a full request head; nothing to answer.
    Closed,
    /// The socket read timed out before the request completed (408).
    Timeout,
    /// The request head exceeded the header budget (431).
    HeadersTooLarge,
    /// The declared or delivered body exceeded the body budget (413).
    BodyTooLarge,
    /// Unparseable request line, header, or length (400).
    Malformed(String),
    /// A well-formed request using a feature this server does not
    /// implement — `Transfer-Encoding` framing (501). Distinct from
    /// `Malformed` because the request isn't broken, just unsupported,
    /// and smuggling defenses require refusing rather than guessing.
    Unsupported(String),
    /// Transport error mid-read; connection is unusable.
    Io(std::io::Error),
}

/// A parsed request: just enough surface for routing.
pub struct Request {
    pub method: String,
    pub path: String,
    /// Raw query string (without the `?`); empty when absent. The service
    /// routes on the path alone, but `/wal` reads its position from here.
    pub query: String,
    /// Header `(name, value)` pairs in arrival order, names and values
    /// trimmed. Routing needs only a couple (`X-Request-Id`, `Accept`),
    /// keeping them all costs one small Vec per request.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Total bytes read off the wire (head + body), for ingress metering.
    pub wire_bytes: u64,
    /// The negotiated connection disposition: `true` when this exchange
    /// must be the connection's last (HTTP/1.0 without `keep-alive`, or
    /// an explicit `Connection: close`).
    pub close: bool,
}

impl Request {
    /// The value of query parameter `name`, if present (no percent
    /// decoding — replication positions are plain integers).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// The first header named `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// One `read()` charged against the request's total deadline: the socket
/// timeout is shrunk to the remaining budget before every read, so a
/// slow-loris client dripping one byte per read cannot renew the clock —
/// the whole request must arrive within `read_timeout` of the first read.
fn read_some(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
) -> Result<usize, HttpError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(HttpError::Timeout);
    }
    // `set_read_timeout(Some(0))` is an error, and `remaining` is nonzero
    // here; any other failure surfaces on the read itself.
    let _ = stream.set_read_timeout(Some(remaining));
    match stream.read(chunk) {
        Ok(n) => Ok(n),
        Err(e) if is_timeout(&e) => Err(HttpError::Timeout),
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// Does a `Connection` header value list `token`? Values are a
/// comma-separated token list (`keep-alive`, `close, te`), compared
/// case-insensitively.
fn connection_lists(value: &str, token: &str) -> bool {
    value.split(',').any(|t| t.trim().eq_ignore_ascii_case(token))
}

/// Read one full request from the stream under the given limits.
/// `read_timeout` is the total budget for the whole request (head and
/// body together), not a per-read idle timeout.
///
/// `carry` holds bytes a previous call over-read past its request's body
/// (a pipelining client). They are consumed as the front of this request,
/// and any bytes past *this* request's body are left in `carry` for the
/// next call — the keep-alive loop threads one buffer through the
/// connection's lifetime. Pass an empty `Vec` for one-shot use.
pub fn read_request(
    stream: &mut TcpStream,
    max_header_bytes: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
    carry: &mut Vec<u8>,
) -> Result<Request, HttpError> {
    let deadline = Instant::now() + read_timeout;
    let mut buf: Vec<u8> = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    // Accumulate until the blank line ending the head. `scanned` remembers
    // how far previous passes looked, so each new read only scans the new
    // bytes (minus a 3-byte overlap for a separator split across reads)
    // instead of re-walking the whole buffer quadratically.
    let mut scanned = 0usize;
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf, &mut scanned) {
            break pos;
        }
        if buf.len() > max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let n = match read_some(stream, &mut chunk, deadline)? {
            0 => {
                return if buf.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Malformed("connection closed mid-request".into()))
                }
            }
            n => n,
        };
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no target".into()))?;
    let http10 = match parts.next() {
        Some("HTTP/1.0") => true,
        Some(v) if v.starts_with("HTTP/1.") => false,
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol {:?}",
                other.unwrap_or("")
            )))
        }
    };
    // Split off the query string; the service routes on the path alone.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header line '{line}'")));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length '{value}'")))?;
            // Duplicate Content-Length headers are a request-smuggling
            // vector on reused connections: two framings of one byte
            // stream. Identical repeats are tolerated (RFC 9112 §6.3);
            // conflicting ones are refused outright.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(HttpError::Malformed(
                    "conflicting content-length headers".into(),
                ));
            }
            content_length = Some(parsed);
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked (or any) transfer coding is not implemented; rather
            // than guess at framing — the other half of the smuggling
            // vector — refuse with 501.
            return Err(HttpError::Unsupported(
                "transfer-encoding is not supported; use content-length".into(),
            ));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    // Negotiate the connection disposition: explicit `Connection` tokens
    // win; otherwise HTTP/1.1 keeps alive and HTTP/1.0 closes.
    let connection = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("connection"))
        .map(|(_, v)| v.as_str());
    let close = match connection {
        Some(v) if connection_lists(v, "close") => true,
        Some(v) if connection_lists(v, "keep-alive") => false,
        _ => http10,
    };

    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf.split_off(body_start.min(buf.len()));
    while body.len() < content_length {
        let n = match read_some(stream, &mut chunk, deadline)? {
            0 => return Err(HttpError::Malformed("connection closed mid-body".into())),
            n => n,
        };
        body.extend_from_slice(&chunk[..n]);
    }
    if body.len() > content_length {
        // Bytes past the declared body are the next pipelined request:
        // hand them to the caller's carry buffer for the next read.
        *carry = body.split_off(content_length);
    }
    let wire_bytes = (body_start + body.len()) as u64;
    Ok(Request { method, path, query, headers, body, wire_bytes, close })
}

/// Find the `\r\n\r\n` ending the request head. `scanned` is how many
/// bytes earlier calls already searched; the scan resumes 3 bytes before
/// it (a separator can straddle the boundary) and advances it to the
/// current length, keeping the whole accumulate loop linear.
fn find_head_end(buf: &[u8], scanned: &mut usize) -> Option<usize> {
    let start = scanned.saturating_sub(3);
    let found = buf[start..].windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + start);
    *scanned = buf.len();
    found
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete JSON response that closes the connection, returning
/// the bytes put on the wire. One-shot paths (shed threads, fatal parse
/// errors) use this; the serving loop uses [`write_response_with`] to
/// negotiate keep-alive.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<u64> {
    write_response_with(stream, status, "application/json", body.as_bytes(), false, true, &[])
}

/// Write a complete response: explicit content type, optionally
/// headers-only (a `HEAD` answer: the `Content-Length` still describes
/// the body a `GET` would have returned, but no body bytes follow), the
/// negotiated connection disposition (`close`), and extra response
/// headers (e.g. the `X-Request-Id` correlation header — values must
/// already be wire-safe: no CR/LF). Returns the bytes put on the wire.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    head_only: bool,
    close: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<u64> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if head_only {
        stream.flush()?;
        return Ok(head.len() as u64);
    }
    stream.write_all(body)?;
    stream.flush()?;
    Ok((head.len() + body.len()) as u64)
}
