//! Serving-layer counters, separate from the graph's [`MetricsRegistry`]:
//! these measure the network surface (admission, shedding, deadlines,
//! bytes), not query execution.

use std::sync::atomic::{AtomicU64, Ordering};

use db2graph_core::json::Json;
use db2graph_core::HistogramSet;

/// Key-set cap for the per-endpoint latency histograms: the endpoint
/// namespace is fixed and tiny, so anything past this is `<other>`.
const ENDPOINT_HISTOGRAM_KEYS: usize = 32;

/// Atomic counters shared by the acceptor, every worker, and `/metrics`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections the acceptor pulled off the listener.
    accepted: AtomicU64,
    /// Connections admitted into the bounded queue.
    admitted: AtomicU64,
    /// Connections shed with 429 because the queue was full.
    rejected: AtomicU64,
    /// Requests a worker finished (response written or write failed);
    /// after a graceful shutdown `completed == admitted` — zero dropped
    /// in-flight queries.
    completed: AtomicU64,
    /// Requests answered 4xx (malformed HTTP, bad JSON, bad Gremlin).
    bad_requests: AtomicU64,
    /// Queries aborted by the per-request deadline (503).
    query_timeouts: AtomicU64,
    /// Request bytes read off the wire.
    bytes_in: AtomicU64,
    /// Response bytes written to the wire.
    bytes_out: AtomicU64,
    /// Gauge: requests currently being handled by workers.
    in_flight: AtomicU64,
    /// `accept()` calls that failed (fd exhaustion, transient network
    /// errors) — previously only backed off, never counted.
    accept_errors: AtomicU64,
    /// Responses written with a 4xx/5xx status (shed 429s count under
    /// `rejected`, not here). The SLO monitor's error rate reads this.
    error_responses: AtomicU64,
    /// Wall-time latency per endpoint path, for per-endpoint p99 SLOs and
    /// the Prometheus exposition.
    endpoints: EndpointHistograms,
}

/// Wrapper so `ServerMetrics` can stay `Default` while bounding the
/// endpoint key set.
#[derive(Debug)]
struct EndpointHistograms(HistogramSet);

impl Default for EndpointHistograms {
    fn default() -> EndpointHistograms {
        EndpointHistograms(HistogramSet::new(ENDPOINT_HISTOGRAM_KEYS))
    }
}

impl ServerMetrics {
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_error_response(&self) {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one served request's wall time against its endpoint path.
    pub fn record_endpoint_latency(&self, endpoint: &str, nanos: u64) {
        self.endpoints.0.record(endpoint, nanos);
    }

    /// The per-endpoint latency histograms (path → log2 histogram).
    pub fn endpoint_histograms(&self) -> &HistogramSet {
        &self.endpoints.0
    }

    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_query_timeout(&self) {
        self.query_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// RAII in-flight gauge increment; decrements on drop so early
    /// returns and write failures can't leak the gauge.
    pub fn enter(&self) -> InFlight<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlight { metrics: self }
    }

    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    pub fn bad_requests(&self) -> u64 {
        self.bad_requests.load(Ordering::Relaxed)
    }

    pub fn query_timeouts(&self) -> u64 {
        self.query_timeouts.load(Ordering::Relaxed)
    }

    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    pub fn error_responses(&self) -> u64 {
        self.error_responses.load(Ordering::Relaxed)
    }

    /// JSON for the `server` section of `/metrics`. `queued` is passed in
    /// by the caller, which owns the admission queue.
    pub fn to_json(&self, queued: usize) -> Json {
        Json::obj(vec![
            ("accepted", Json::u64(self.accepted())),
            ("admitted", Json::u64(self.admitted())),
            ("rejected", Json::u64(self.rejected())),
            ("completed", Json::u64(self.completed())),
            ("bad_requests", Json::u64(self.bad_requests())),
            ("query_timeouts", Json::u64(self.query_timeouts())),
            ("bytes_in", Json::u64(self.bytes_in.load(Ordering::Relaxed))),
            ("bytes_out", Json::u64(self.bytes_out.load(Ordering::Relaxed))),
            ("in_flight", Json::u64(self.in_flight())),
            ("queued", Json::u64(queued as u64)),
            ("accept_errors", Json::u64(self.accept_errors())),
            ("error_responses", Json::u64(self.error_responses())),
            ("endpoint_latency", self.endpoints.0.to_json()),
        ])
    }
}

/// See [`ServerMetrics::enter`].
pub struct InFlight<'a> {
    metrics: &'a ServerMetrics,
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}
