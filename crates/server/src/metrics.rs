//! Serving-layer counters, separate from the graph's [`MetricsRegistry`]:
//! these measure the network surface (admission, shedding, deadlines,
//! bytes), not query execution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use db2graph_core::json::Json;
use db2graph_core::HistogramSet;

/// Key-set cap for the per-endpoint latency histograms: the endpoint
/// namespace is fixed and tiny, so anything past this is `<other>`.
const ENDPOINT_HISTOGRAM_KEYS: usize = 32;

/// Atomic counters shared by the acceptor, every worker, and `/metrics`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections the acceptor pulled off the listener.
    accepted: AtomicU64,
    /// Connections admitted into the bounded queue.
    admitted: AtomicU64,
    /// Connections shed with 429 because the queue was full.
    rejected: AtomicU64,
    /// Requests a worker finished (response written or write failed);
    /// after a graceful shutdown `completed == admitted` — zero dropped
    /// in-flight queries.
    completed: AtomicU64,
    /// Requests answered 4xx (malformed HTTP, bad JSON, bad Gremlin).
    bad_requests: AtomicU64,
    /// Queries aborted by the per-request deadline (503).
    query_timeouts: AtomicU64,
    /// Request bytes read off the wire.
    bytes_in: AtomicU64,
    /// Response bytes written to the wire.
    bytes_out: AtomicU64,
    /// Gauge: requests currently being handled by workers.
    in_flight: AtomicU64,
    /// `accept()` calls that failed (fd exhaustion, transient network
    /// errors) — previously only backed off, never counted.
    accept_errors: AtomicU64,
    /// Responses written with a 4xx/5xx status (shed 429s count under
    /// `rejected`, not here). The SLO monitor's error rate reads this.
    error_responses: AtomicU64,
    /// Wall-time latency per endpoint path, for per-endpoint p99 SLOs and
    /// the Prometheus exposition.
    endpoints: EndpointHistograms,
    /// Requests served on an already-used connection (request ≥ 2 of a
    /// keep-alive connection) — the churn the persistent loop saves.
    keepalive_reuses: AtomicU64,
    /// 429/503 sheds that carried a computed `Retry-After` hint (every
    /// shed should; a gap between this and `rejected` is a bug).
    retry_after_hints: AtomicU64,
    /// Sessions begun via `POST /session`.
    sessions_began: AtomicU64,
    /// Sessions ended by an explicit commit.
    sessions_committed: AtomicU64,
    /// Sessions ended by an explicit rollback.
    sessions_rolled_back: AtomicU64,
    /// Abandoned sessions the idle reaper rolled back.
    sessions_reaped: AtomicU64,
    /// Gauge: sessions currently open (begun, not yet ended).
    sessions_open: AtomicU64,
    /// Completion-rate sample backing the `Retry-After` estimate.
    drain: Mutex<Option<DrainSample>>,
}

/// One observation of the completion counter, plus the rate derived from
/// the previous observation — the queue's measured drain rate.
#[derive(Debug, Clone, Copy)]
struct DrainSample {
    at: Instant,
    completed: u64,
    /// Requests completed per second over the last sampling window; 0.0
    /// until a window with progress has been observed.
    rate: f64,
}

/// Minimum spacing between drain-rate samples: shorter windows are noise.
const DRAIN_SAMPLE_MIN: f64 = 0.25;

/// `Retry-After` is clamped to this range: at least 1 (the smallest
/// honest integer hint), at most 60 (past a minute the estimate is
/// guesswork and clients should just re-poll).
const RETRY_AFTER_MAX_SECS: u64 = 60;

/// Wrapper so `ServerMetrics` can stay `Default` while bounding the
/// endpoint key set.
#[derive(Debug)]
struct EndpointHistograms(HistogramSet);

impl Default for EndpointHistograms {
    fn default() -> EndpointHistograms {
        EndpointHistograms(HistogramSet::new(ENDPOINT_HISTOGRAM_KEYS))
    }
}

impl ServerMetrics {
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_error_response(&self) {
        self.error_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one served request's wall time against its endpoint path.
    pub fn record_endpoint_latency(&self, endpoint: &str, nanos: u64) {
        self.endpoints.0.record(endpoint, nanos);
    }

    /// The per-endpoint latency histograms (path → log2 histogram).
    pub fn endpoint_histograms(&self) -> &HistogramSet {
        &self.endpoints.0
    }

    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_query_timeout(&self) {
        self.query_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_session_began(&self) {
        self.sessions_began.fetch_add(1, Ordering::Relaxed);
        self.sessions_open.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_session_committed(&self) {
        self.sessions_committed.fetch_add(1, Ordering::Relaxed);
        self.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn record_session_rolled_back(&self) {
        self.sessions_rolled_back.fetch_add(1, Ordering::Relaxed);
        self.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn record_session_reaped(&self) {
        self.sessions_reaped.fetch_add(1, Ordering::Relaxed);
        self.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Compute the `Retry-After` hint for one shed, against the queue
    /// depth the caller observed, and count the hint.
    ///
    /// The estimate is the observed backlog (`queued` + requests mid-
    /// execution + this one) divided by the queue's measured drain rate —
    /// the completion counter's slope over the last ≥250 ms window —
    /// clamped to `[1, 60]` seconds. Before any drain has been observed
    /// (cold start, or a fully wedged pool) the honest answer is "soon,
    /// try again": 1 second, rather than a fabricated larger number.
    pub fn retry_after_secs(&self, queued: u64) -> u64 {
        self.retry_after_hints.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let completed = self.completed();
        let mut slot = self.drain.lock().unwrap_or_else(|e| e.into_inner());
        let rate = match *slot {
            None => {
                *slot = Some(DrainSample { at: now, completed, rate: 0.0 });
                0.0
            }
            Some(prev) => {
                let elapsed = now.saturating_duration_since(prev.at).as_secs_f64();
                if elapsed >= DRAIN_SAMPLE_MIN {
                    let drained = completed.saturating_sub(prev.completed);
                    let rate = drained as f64 / elapsed;
                    *slot = Some(DrainSample { at: now, completed, rate });
                    rate
                } else {
                    prev.rate
                }
            }
        };
        drop(slot);
        let backlog = queued + self.in_flight() + 1;
        if rate <= 0.0 {
            return 1;
        }
        ((backlog as f64 / rate).ceil() as u64).clamp(1, RETRY_AFTER_MAX_SECS)
    }

    /// RAII in-flight gauge increment; decrements on drop so early
    /// returns and write failures can't leak the gauge.
    pub fn enter(&self) -> InFlight<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlight { metrics: self }
    }

    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    pub fn bad_requests(&self) -> u64 {
        self.bad_requests.load(Ordering::Relaxed)
    }

    pub fn query_timeouts(&self) -> u64 {
        self.query_timeouts.load(Ordering::Relaxed)
    }

    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    pub fn error_responses(&self) -> u64 {
        self.error_responses.load(Ordering::Relaxed)
    }

    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    pub fn retry_after_hints(&self) -> u64 {
        self.retry_after_hints.load(Ordering::Relaxed)
    }

    pub fn sessions_began(&self) -> u64 {
        self.sessions_began.load(Ordering::Relaxed)
    }

    pub fn sessions_committed(&self) -> u64 {
        self.sessions_committed.load(Ordering::Relaxed)
    }

    pub fn sessions_rolled_back(&self) -> u64 {
        self.sessions_rolled_back.load(Ordering::Relaxed)
    }

    pub fn sessions_reaped(&self) -> u64 {
        self.sessions_reaped.load(Ordering::Relaxed)
    }

    pub fn sessions_open(&self) -> u64 {
        self.sessions_open.load(Ordering::Relaxed)
    }

    /// JSON for the `server` section of `/metrics`. `queued` is passed in
    /// by the caller, which owns the admission queue.
    pub fn to_json(&self, queued: usize) -> Json {
        Json::obj(vec![
            ("accepted", Json::u64(self.accepted())),
            ("admitted", Json::u64(self.admitted())),
            ("rejected", Json::u64(self.rejected())),
            ("completed", Json::u64(self.completed())),
            ("bad_requests", Json::u64(self.bad_requests())),
            ("query_timeouts", Json::u64(self.query_timeouts())),
            ("bytes_in", Json::u64(self.bytes_in.load(Ordering::Relaxed))),
            ("bytes_out", Json::u64(self.bytes_out.load(Ordering::Relaxed))),
            ("in_flight", Json::u64(self.in_flight())),
            ("queued", Json::u64(queued as u64)),
            ("accept_errors", Json::u64(self.accept_errors())),
            ("error_responses", Json::u64(self.error_responses())),
            ("keepalive_reuses", Json::u64(self.keepalive_reuses())),
            ("retry_after_hints", Json::u64(self.retry_after_hints())),
            ("sessions_began", Json::u64(self.sessions_began())),
            ("sessions_committed", Json::u64(self.sessions_committed())),
            ("sessions_rolled_back", Json::u64(self.sessions_rolled_back())),
            ("sessions_reaped", Json::u64(self.sessions_reaped())),
            ("sessions_open", Json::u64(self.sessions_open())),
            ("endpoint_latency", self.endpoints.0.to_json()),
        ])
    }
}

/// See [`ServerMetrics::enter`].
pub struct InFlight<'a> {
    metrics: &'a ServerMetrics,
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}
