//! Log-shipping read replicas: the follower half of replication.
//!
//! A follower is an ordinary in-memory database that mirrors a durable
//! primary by pulling its WAL over HTTP and applying whole commits
//! through the same idempotent net-change path crash recovery replays:
//!
//! 1. **Tail.** `GET /wal?from_seq=N` returns a shipped batch (see
//!    [`ShippedBatch`]): raw WAL frames starting at `N`, still in their
//!    on-disk framing, plus the primary's own next sequence so the
//!    follower can compute its lag in records.
//! 2. **Apply.** [`reldb::Database::apply_wal_frames`] validates every
//!    frame (CRC + strict decode — a truncated batch is rejected, never
//!    partially applied) and publishes each commit's epoch exactly like a
//!    local writer would, so concurrent readers stay snapshot-consistent.
//! 3. **Bootstrap.** When the primary answers `410 Gone` — its WAL
//!    rotated past the follower's position, or the follower is brand new
//!    against a primary whose log no longer starts at 0 — the follower
//!    fetches `GET /checkpoint` and installs the image wholesale, then
//!    resumes tailing at the image's sequence.
//!
//! The [`ReplicaDaemon`] runs this loop in the background with
//! reconnect-and-backoff on primary loss; [`sync_once`] runs it
//! synchronously until caught up, for bootstrapping a follower *before*
//! the graph overlay reads its catalog. See `docs/REPLICATION.md`.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use db2graph_core::json::Json;
use db2graph_core::EventLog;
use reldb::{Database, WalTail};

use crate::client::http_call_bytes;

/// Preamble magic of a `GET /wal` response body.
pub const SHIP_MAGIC: &[u8; 8] = b"D2GSHIP1";
/// Preamble length: magic + from_seq + records + primary_next_seq.
pub const SHIP_HEADER_LEN: usize = 32;

/// Cap on frame bytes per `/wal` response; a far-behind follower catches
/// up over multiple polls instead of one giant body.
pub const MAX_SHIP_BYTES: usize = 4 << 20;

/// Gauges and counters for the replication section of `/metrics`.
#[derive(Debug, Default)]
pub struct ReplicaMetrics {
    /// Gauge: highest commit epoch the follower has published locally.
    pub applied_epoch: AtomicU64,
    /// Gauge: records the primary had beyond our position at the last
    /// successful poll (`primary_next_seq - next_seq`).
    pub lag_records: AtomicU64,
    /// Polls that failed at the transport layer (primary down or
    /// unreachable) and entered backoff.
    pub reconnects: AtomicU64,
    /// Checkpoint-image installs (first contact and 410-triggered).
    pub bootstraps: AtomicU64,
    /// Total WAL records applied.
    pub applied_records: AtomicU64,
}

impl ReplicaMetrics {
    /// JSON for the `replication` section of `/metrics`.
    pub fn to_json(&self, primary: &str) -> Json {
        Json::obj(vec![
            ("primary", Json::str(primary)),
            ("replica_applied_epoch", Json::u64(self.applied_epoch.load(Ordering::Relaxed))),
            ("replication_lag_records", Json::u64(self.lag_records.load(Ordering::Relaxed))),
            ("replica_reconnects", Json::u64(self.reconnects.load(Ordering::Relaxed))),
            ("replica_bootstraps", Json::u64(self.bootstraps.load(Ordering::Relaxed))),
            ("replica_applied_records", Json::u64(self.applied_records.load(Ordering::Relaxed))),
        ])
    }
}

// ------------------------------------------------------------ wire codec

/// Encode a primary-side [`WalTail`] as a `/wal` response body.
pub fn encode_ship(tail: &WalTail) -> Vec<u8> {
    let mut out = Vec::with_capacity(SHIP_HEADER_LEN + tail.frames.len());
    out.extend_from_slice(SHIP_MAGIC);
    out.extend_from_slice(&tail.from_seq.to_le_bytes());
    out.extend_from_slice(&tail.records.to_le_bytes());
    out.extend_from_slice(&tail.primary_next_seq.to_le_bytes());
    out.extend_from_slice(&tail.frames);
    out
}

/// A decoded `/wal` response body.
#[derive(Debug)]
pub struct ShippedBatch {
    pub from_seq: u64,
    pub records: u64,
    pub primary_next_seq: u64,
    pub frames: Vec<u8>,
}

/// Decode a `/wal` response body, validating the preamble. Frame-level
/// validation (CRC, strict decode) happens in
/// [`reldb::Database::apply_wal_frames`].
pub fn decode_ship(body: &[u8]) -> Result<ShippedBatch, String> {
    if body.len() < SHIP_HEADER_LEN || &body[..8] != SHIP_MAGIC {
        return Err("shipped wal batch has a corrupt preamble".into());
    }
    let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().unwrap());
    Ok(ShippedBatch {
        from_seq: u64_at(8),
        records: u64_at(16),
        primary_next_seq: u64_at(24),
        frames: body[SHIP_HEADER_LEN..].to_vec(),
    })
}

// ------------------------------------------------------------- apply step

/// What one replication round-trip accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Applied `records` WAL records; `lag` remained behind the primary.
    Applied { records: u64, lag: u64 },
    /// Installed a checkpoint image after the primary reported our
    /// position gone (410).
    Bootstrapped,
}

/// A replication step failure, split by whether backing off and retrying
/// can help.
#[derive(Debug)]
pub enum StepError {
    /// Transport-level failure: primary down, unreachable, or the
    /// response was truncated. Retry with backoff.
    Transport(String),
    /// The primary answered but the payload or our apply state is wrong
    /// (corrupt stream, misconfigured primary). Retrying identically
    /// will not help; the daemon re-bootstraps.
    Protocol(String),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Transport(m) => write!(f, "transport: {m}"),
            StepError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

fn resolve(primary: &str) -> Result<SocketAddr, StepError> {
    primary
        .to_socket_addrs()
        .map_err(|e| StepError::Transport(format!("resolve {primary}: {e}")))?
        .next()
        .ok_or_else(|| StepError::Transport(format!("{primary} resolved to no address")))
}

/// Install the primary's checkpoint image, replacing the follower's whole
/// state (the replica-side equivalent of a restart).
fn bootstrap(db: &Database, primary: &str, timeout: Duration) -> Result<(), StepError> {
    let addr = resolve(primary)?;
    let r = http_call_bytes(addr, "GET", "/checkpoint", b"", timeout)
        .map_err(|e| StepError::Transport(format!("GET /checkpoint: {e}")))?;
    if r.status != 200 {
        return Err(StepError::Protocol(format!(
            "GET /checkpoint answered {}: {}",
            r.status,
            String::from_utf8_lossy(&r.bytes)
        )));
    }
    db.install_checkpoint_image(&r.bytes)
        .map_err(|e| StepError::Protocol(format!("install checkpoint image: {e}")))?;
    Ok(())
}

/// One replication round-trip: tail the primary's WAL at our position and
/// apply what arrives, falling back to a checkpoint bootstrap on 410.
pub fn replicate_step(
    db: &Database,
    primary: &str,
    timeout: Duration,
    metrics: &ReplicaMetrics,
) -> Result<StepOutcome, StepError> {
    let addr = resolve(primary)?;
    let from = db.applied_wal_seq();
    let r = http_call_bytes(addr, "GET", &format!("/wal?from_seq={from}"), b"", timeout)
        .map_err(|e| StepError::Transport(format!("GET /wal: {e}")))?;
    match r.status {
        200 => {
            let batch = decode_ship(&r.bytes).map_err(StepError::Protocol)?;
            if batch.from_seq != from {
                return Err(StepError::Protocol(format!(
                    "primary shipped frames at sequence {}, asked for {from}",
                    batch.from_seq
                )));
            }
            let applied = db
                .apply_wal_frames(from, &batch.frames)
                .map_err(|e| StepError::Protocol(format!("apply shipped frames: {e}")))?;
            let lag = batch.primary_next_seq.saturating_sub(from + applied);
            metrics.applied_records.fetch_add(applied, Ordering::Relaxed);
            metrics.applied_epoch.store(db.commit_epoch(), Ordering::Relaxed);
            metrics.lag_records.store(lag, Ordering::Relaxed);
            Ok(StepOutcome::Applied { records: applied, lag })
        }
        410 => {
            bootstrap(db, primary, timeout)?;
            metrics.bootstraps.fetch_add(1, Ordering::Relaxed);
            metrics.applied_epoch.store(db.commit_epoch(), Ordering::Relaxed);
            Ok(StepOutcome::Bootstrapped)
        }
        s => Err(StepError::Protocol(format!(
            "GET /wal answered {s}: {}",
            String::from_utf8_lossy(&r.bytes)
        ))),
    }
}

/// Synchronously replicate until the follower is caught up with the
/// primary (a tail poll returns zero records), retrying transport errors
/// until `deadline` elapses. Use this to bootstrap a follower *before*
/// constructing the graph overlay, so the overlay reads a populated
/// catalog.
pub fn sync_once(
    db: &Database,
    primary: &str,
    timeout: Duration,
    deadline: Duration,
) -> Result<(), String> {
    let metrics = ReplicaMetrics::default();
    let started = std::time::Instant::now();
    loop {
        match replicate_step(db, primary, timeout, &metrics) {
            Ok(StepOutcome::Applied { records: 0, .. }) => return Ok(()),
            Ok(_) => {}
            Err(e) => {
                if started.elapsed() >= deadline {
                    return Err(format!("initial sync from {primary} failed: {e}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

// ---------------------------------------------------------------- daemon

/// Ceiling for the reconnect backoff.
const MAX_BACKOFF: Duration = Duration::from_secs(3);

/// Background apply loop: polls the primary at `poll` cadence while
/// caught up, streams continuously while behind, and on primary loss
/// retries with exponential backoff (counted in
/// [`ReplicaMetrics::reconnects`]) — the follower keeps serving reads at
/// its last applied epoch throughout.
pub struct ReplicaDaemon {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
    metrics: Arc<ReplicaMetrics>,
    primary: String,
}

impl ReplicaDaemon {
    pub fn start(
        db: Arc<Database>,
        primary: String,
        poll: Duration,
        timeout: Duration,
        events: Arc<EventLog>,
    ) -> ReplicaDaemon {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let metrics = Arc::new(ReplicaMetrics::default());
        let primary_label = primary.clone();
        let handle = {
            let stop = stop.clone();
            let metrics = metrics.clone();
            std::thread::Builder::new()
                .name("replica-apply".into())
                .spawn(move || {
                    let (lock, cv) = &*stop;
                    let mut backoff = poll;
                    // Emit the reconnect event only on the healthy→down
                    // edge, not every backoff retry while down.
                    let mut was_connected = true;
                    loop {
                        let wait = match replicate_step(&db, &primary, timeout, &metrics) {
                            // Still behind (or just bootstrapped): keep
                            // streaming without a pause.
                            Ok(StepOutcome::Applied { records, .. }) if records > 0 => {
                                was_connected = true;
                                backoff = poll;
                                Duration::ZERO
                            }
                            Ok(StepOutcome::Bootstrapped) => {
                                events.emit(
                                    "replica_bootstrap",
                                    vec![
                                        ("primary", Json::str(primary.clone())),
                                        ("applied_epoch", Json::u64(db.commit_epoch())),
                                    ],
                                );
                                was_connected = true;
                                backoff = poll;
                                Duration::ZERO
                            }
                            Ok(StepOutcome::Applied { .. }) => {
                                was_connected = true;
                                backoff = poll;
                                poll
                            }
                            Err(e) => {
                                metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                                if was_connected {
                                    events.emit(
                                        "replica_reconnect",
                                        vec![
                                            ("primary", Json::str(primary.clone())),
                                            ("error", Json::str(e.to_string())),
                                        ],
                                    );
                                }
                                was_connected = false;
                                backoff = (backoff * 2).min(MAX_BACKOFF);
                                // A protocol error means identical retries
                                // are useless: drop our position so the
                                // next round re-bootstraps from the
                                // checkpoint instead of looping on a
                                // poisoned stream.
                                if let StepError::Protocol(detail) = &e {
                                    events.emit(
                                        "replica_gap",
                                        vec![
                                            ("primary", Json::str(primary.clone())),
                                            ("detail", Json::str(detail.clone())),
                                        ],
                                    );
                                    if let Err(e) = bootstrap(&db, &primary, timeout) {
                                        let _ = e; // primary still down; backoff covers it
                                    } else {
                                        metrics.bootstraps.fetch_add(1, Ordering::Relaxed);
                                        events.emit(
                                            "replica_bootstrap",
                                            vec![
                                                ("primary", Json::str(primary.clone())),
                                                ("applied_epoch", Json::u64(db.commit_epoch())),
                                            ],
                                        );
                                    }
                                }
                                backoff
                            }
                        };
                        let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                        if *stopped {
                            return;
                        }
                        if !wait.is_zero() {
                            let (guard, _) = cv
                                .wait_timeout(stopped, wait)
                                .unwrap_or_else(|e| e.into_inner());
                            stopped = guard;
                            if *stopped {
                                return;
                            }
                        }
                        drop(stopped);
                    }
                })
                .expect("spawn replica daemon")
        };
        ReplicaDaemon { stop, handle: Some(handle), metrics, primary: primary_label }
    }

    pub fn metrics(&self) -> &Arc<ReplicaMetrics> {
        &self.metrics
    }

    /// The `host:port` this daemon follows.
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// Signal the thread and join it.
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        let _ = handle.join();
    }
}

impl Drop for ReplicaDaemon {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_codec_round_trips() {
        let tail = WalTail {
            from_seq: 7,
            records: 2,
            next_seq: 9,
            primary_next_seq: 12,
            frames: vec![1, 2, 3, 4],
        };
        let body = encode_ship(&tail);
        let batch = decode_ship(&body).unwrap();
        assert_eq!(
            (batch.from_seq, batch.records, batch.primary_next_seq, batch.frames.as_slice()),
            (7, 2, 12, &[1u8, 2, 3, 4][..])
        );
        assert!(decode_ship(&body[..SHIP_HEADER_LEN - 1]).is_err());
        assert!(decode_ship(b"NOTMAGIC________________________").is_err());
    }
}
