//! A minimal blocking HTTP/1.1 client for the query service: the load
//! driver, the smoke/stress tests, and scripts all speak to the server
//! through this one code path, so client-side framing bugs can't hide in
//! per-test copies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A complete response: status code and body text.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub body: String,
}

/// Open a connection, send one request, and read the response to EOF
/// (the server always closes after one exchange). `timeout` bounds both
/// connect and socket reads.
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// POST a Gremlin script to `/query` (the common case in tests/benches).
pub fn post_query(addr: SocketAddr, gremlin: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    http_call(addr, "POST", "/query", gremlin, timeout)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("bad status line '{status_line}'")))?;
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    Ok(HttpResponse { status, body })
}
