//! A minimal blocking HTTP/1.1 client for the query service: the load
//! driver, the smoke/stress tests, the replication apply loop, and
//! scripts all speak to the server through this one code path, so
//! client-side framing bugs can't hide in per-test copies.
//!
//! Responses are framed by `Content-Length`, and a body shorter than the
//! header promises is an *error*, never a silent short read: the replica
//! apply loop feeds these bytes straight into WAL replay, where a
//! truncated-but-"successful" body would corrupt catch-up.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A complete textual response: status code, response headers, and body
/// text.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    /// Response header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpResponse {
    /// The first response header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_of(&self.headers, name)
    }
}

/// A complete response with the body kept as raw bytes (the replication
/// endpoints ship binary WAL frames and checkpoint images).
#[derive(Debug)]
pub struct HttpBytesResponse {
    pub status: u16,
    /// Response header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    pub bytes: Vec<u8>,
}

impl HttpBytesResponse {
    /// The first response header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_of(&self.headers, name)
    }
}

fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
}

/// Open a connection, send one request, and read the response (the server
/// always closes after one exchange). `timeout` bounds connect and every
/// socket read/write. The body is validated against `Content-Length`.
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    http_call_with_headers(addr, method, path, body, &[], timeout)
}

/// [`http_call`] with extra request headers (e.g. a caller-chosen
/// `X-Request-Id`, or `Accept: text/plain` for the Prometheus form of
/// `/metrics`). Header names and values must be wire-safe (no CR/LF).
pub fn http_call_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    request_headers: &[(&str, &str)],
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let r = http_call_bytes_with_headers(
        addr,
        method,
        path,
        body.as_bytes(),
        request_headers,
        timeout,
    )?;
    Ok(HttpResponse {
        status: r.status,
        headers: r.headers,
        body: String::from_utf8_lossy(&r.bytes).into_owned(),
    })
}

/// [`http_call`] with a binary request body and the response body returned
/// as raw bytes.
pub fn http_call_bytes(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpBytesResponse> {
    http_call_bytes_with_headers(addr, method, path, body, &[], timeout)
}

/// The one code path every one-shot client call funnels through. Sends
/// `Connection: close`, so the server tears the connection down after the
/// exchange; [`HttpClient`] is the keep-alive counterpart.
pub fn http_call_bytes_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    request_headers: &[(&str, &str)],
    timeout: Duration,
) -> std::io::Result<HttpBytesResponse> {
    // One deadline for the whole exchange. A per-read socket timeout
    // would let a hostile server drip one byte per `timeout` and renew
    // the clock forever — the reverse of the slow-loris the server side
    // already defends against.
    let deadline = Instant::now() + timeout;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_write_timeout(Some(timeout))?;
    write_request(&mut stream, addr, method, path, body, request_headers, true)?;
    read_one_response(&mut stream, deadline, method)
}

/// POST a Gremlin script to `/query` (the common case in tests/benches).
pub fn post_query(addr: SocketAddr, gremlin: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    http_call(addr, "POST", "/query", gremlin, timeout)
}

fn write_request(
    stream: &mut TcpStream,
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    request_headers: &[(&str, &str)],
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n",
        body.len()
    );
    if close {
        head.push_str("Connection: close\r\n");
    }
    for (name, value) in request_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// One `read()` charged against the exchange's total deadline (the
/// client-side mirror of the server's `read_some` budget).
fn deadline_read(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
) -> std::io::Result<usize> {
    let timed_out =
        || std::io::Error::new(std::io::ErrorKind::TimedOut, "response deadline exceeded");
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(timed_out());
    }
    stream.set_read_timeout(Some(remaining))?;
    match stream.read(chunk) {
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err(timed_out())
        }
        other => other,
    }
}

/// Read exactly one response off the stream — framed by `Content-Length`
/// so a kept-alive connection stays positioned at the next response, or
/// by EOF when the header is absent (foreign close-framed servers).
fn read_one_response(
    stream: &mut TcpStream,
    deadline: Instant,
    method: &str,
) -> std::io::Result<HttpBytesResponse> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        match deadline_read(stream, &mut chunk, deadline)? {
            0 => return Err(bad("connection closed before response head")),
            n => raw.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let content_length: Option<usize> = head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            value.trim().parse().ok()
        } else {
            None
        }
    });
    if method.eq_ignore_ascii_case("HEAD") {
        // A HEAD answer is headers-only regardless of Content-Length.
    } else {
        match content_length {
            Some(n) => {
                while raw.len() < head_end + 4 + n {
                    match deadline_read(stream, &mut chunk, deadline)? {
                        // Truncation is flagged by `parse_response`.
                        0 => break,
                        m => raw.extend_from_slice(&chunk[..m]),
                    }
                }
            }
            None => loop {
                match deadline_read(stream, &mut chunk, deadline)? {
                    0 => break,
                    m => raw.extend_from_slice(&chunk[..m]),
                }
            },
        }
    }
    parse_response(&raw, method)
}

/// A keep-alive HTTP client: one TCP connection reused across sequential
/// calls, against the server's persistent-connection loop — the load
/// driver measures the connection-churn win through this. When the server
/// closed the connection between calls (request budget, idle deadline),
/// the next call reconnects and retries once, transparently.
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl HttpClient {
    /// A client for `addr`; connects lazily on the first call. `timeout`
    /// is the total per-exchange deadline, same meaning as in
    /// [`http_call`].
    pub fn new(addr: SocketAddr, timeout: Duration) -> HttpClient {
        HttpClient { addr, timeout, stream: None }
    }

    /// Whether the client currently holds a reusable connection.
    pub fn connected(&self) -> bool {
        self.stream.is_some()
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Send one request on the kept-alive connection and read its
    /// response.
    pub fn call(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        let r = self.call_bytes_with_headers(method, path, body.as_bytes(), &[])?;
        Ok(HttpResponse {
            status: r.status,
            headers: r.headers,
            body: String::from_utf8_lossy(&r.bytes).into_owned(),
        })
    }

    /// [`HttpClient::call`] with extra request headers (e.g.
    /// `X-Db2Graph-Session`) and a raw-bytes response.
    pub fn call_bytes_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        request_headers: &[(&str, &str)],
    ) -> std::io::Result<HttpBytesResponse> {
        let mut on_reused = self.stream.is_some();
        loop {
            let mut stream = match self.stream.take() {
                Some(s) => s,
                None => self.connect()?,
            };
            let deadline = Instant::now() + self.timeout;
            let result =
                write_request(&mut stream, self.addr, method, path, body, request_headers, false)
                    .and_then(|()| read_one_response(&mut stream, deadline, method));
            match result {
                Ok(resp) => {
                    // Keep the connection unless the server said close or
                    // left the response EOF-framed (no Content-Length).
                    let closing = resp
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                        || (resp.header("content-length").is_none()
                            && !method.eq_ignore_ascii_case("HEAD"));
                    if !closing {
                        self.stream = Some(stream);
                    }
                    return Ok(resp);
                }
                // A reused connection may have died under us (the
                // server's idle deadline or request budget); one retry on
                // a fresh connection. Errors on a fresh one are real.
                Err(e) => {
                    if !on_reused {
                        return Err(e);
                    }
                    on_reused = false;
                }
            }
        }
    }
}

fn parse_response(raw: &[u8], method: &str) -> std::io::Result<HttpBytesResponse> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator".into()))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line '{status_line}'")))?;
    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad content-length '{}'", value.trim())))?,
                );
            }
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }
    let bytes = raw[head_end + 4..].to_vec();
    // A HEAD response carries the Content-Length of the GET it mirrors but
    // no body bytes — the header describes the hypothetical body, not the
    // wire.
    if method.eq_ignore_ascii_case("HEAD") {
        if !bytes.is_empty() {
            return Err(bad(format!("HEAD response carried {} body bytes", bytes.len())));
        }
        return Ok(HttpBytesResponse { status, headers, bytes });
    }
    match content_length {
        // The connection closed before the declared body arrived (or a
        // confused server sent more): the response is *corrupt*, not short.
        Some(n) if bytes.len() != n => Err(bad(format!(
            "truncated response body: got {} of {} declared bytes",
            bytes.len(),
            n
        ))),
        // No Content-Length: fall back to read-to-EOF framing (foreign
        // servers; ours always declares it).
        _ => Ok(HttpBytesResponse { status, headers, bytes }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_body_is_an_error_not_a_short_success() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n0123456789";
        let r = parse_response(full, "GET").unwrap();
        assert_eq!((r.status, r.bytes.as_slice()), (200, &b"0123456789"[..]));
        // Every proper prefix of the body must fail loudly.
        for cut in 0..10 {
            let err = parse_response(&full[..full.len() - 10 + cut], "GET").unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn missing_content_length_falls_back_to_eof() {
        let raw = b"HTTP/1.1 200 OK\r\nX: y\r\n\r\npartial";
        let r = parse_response(raw, "GET").unwrap();
        assert_eq!(r.bytes, b"partial");
    }

    #[test]
    fn head_response_has_length_but_no_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 42\r\n\r\n";
        let r = parse_response(raw, "HEAD").unwrap();
        assert_eq!((r.status, r.bytes.len()), (200, 0));
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nxx", "HEAD").is_err());
    }
}
