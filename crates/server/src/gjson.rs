//! Wire serialization of Gremlin results using the repo's own JSON type.

use db2graph_core::json::Json;
use gremlin::structure::{Edge, ElementId, GValue, Vertex};

fn id_json(id: &ElementId) -> Json {
    match id {
        // i64 ids ride through f64 like every other number in the JSON
        // layer; ids beyond 2^53 would lose precision, so they are sent
        // as strings instead.
        ElementId::Long(v) if v.unsigned_abs() <= (1u64 << 53) => Json::num(*v as f64),
        ElementId::Long(v) => Json::str(v.to_string()),
        ElementId::Str(s) => Json::str(s.clone()),
    }
}

fn vertex_json(v: &Vertex) -> Json {
    Json::obj(vec![
        ("type", Json::str("vertex")),
        ("id", id_json(&v.id)),
        ("label", Json::str(&v.label)),
        (
            "properties",
            Json::Obj(v.properties.iter().map(|(k, gv)| (k.clone(), gvalue_to_json(gv))).collect()),
        ),
    ])
}

fn edge_json(e: &Edge) -> Json {
    Json::obj(vec![
        ("type", Json::str("edge")),
        ("id", id_json(&e.id)),
        ("label", Json::str(&e.label)),
        ("src", id_json(&e.src)),
        ("dst", id_json(&e.dst)),
        (
            "properties",
            Json::Obj(e.properties.iter().map(|(k, gv)| (k.clone(), gvalue_to_json(gv))).collect()),
        ),
    ])
}

/// Convert one traversal result value to JSON. Longs past 2^53 degrade to
/// strings (same rationale as ids); everything else maps structurally.
pub fn gvalue_to_json(v: &GValue) -> Json {
    match v {
        GValue::Null => Json::Null,
        GValue::Long(x) if x.unsigned_abs() <= (1u64 << 53) => Json::num(*x as f64),
        GValue::Long(x) => Json::str(x.to_string()),
        GValue::Double(x) => Json::num(*x),
        GValue::Str(s) => Json::str(s.clone()),
        GValue::Bool(b) => Json::Bool(*b),
        GValue::List(items) => Json::arr(items.iter().map(gvalue_to_json).collect()),
        GValue::Map(m) => {
            Json::Obj(m.iter().map(|(k, gv)| (k.clone(), gvalue_to_json(gv))).collect())
        }
        GValue::Vertex(vx) => vertex_json(vx),
        GValue::Edge(e) => edge_json(e),
        GValue::Path(objs) => Json::obj(vec![(
            "path",
            Json::arr(objs.iter().map(gvalue_to_json).collect()),
        )]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_structures_round_trip_shape() {
        let v = GValue::List(vec![
            GValue::Long(42),
            GValue::Str("x".into()),
            GValue::Bool(true),
            GValue::Null,
        ]);
        assert_eq!(gvalue_to_json(&v).to_compact(), r#"[42,"x",true,null]"#);
    }

    #[test]
    fn big_longs_become_strings() {
        let big = 1i64 << 60;
        assert_eq!(gvalue_to_json(&GValue::Long(big)).as_str(), Some(big.to_string().as_str()));
        assert_eq!(gvalue_to_json(&GValue::Long(7)).as_u64(), Some(7));
    }

    #[test]
    fn vertex_shape() {
        let vx = Vertex::new(1i64, "patient").with_property("name", GValue::Str("Alice".into()));
        let j = gvalue_to_json(&GValue::Vertex(vx));
        assert_eq!(j.get("type").and_then(Json::as_str), Some("vertex"));
        assert_eq!(j.get("label").and_then(Json::as_str), Some("patient"));
        assert_eq!(
            j.get("properties").and_then(|p| p.get("name")).and_then(Json::as_str),
            Some("Alice")
        );
    }
}
