//! HTTP transaction sessions: the network mapping of reldb's session
//! transactions (`Database::begin_session_txn` and friends).
//!
//! `POST /session` begins a transaction bound to a server-minted session
//! id; subsequent `/query`/`/profile`/`/sql` requests carrying the id in
//! `X-Db2Graph-Session` execute *inside* it — on whatever worker thread
//! they land, which is the whole point: keep-alive gives a client a
//! persistent connection, sessions give it a persistent transaction, and
//! neither is pinned to the other. `POST /session/commit` /
//! `/session/rollback` end it. A session a client abandons (crashed,
//! wandered off) would pin its undo log and uncommitted markers forever,
//! so the [`SessionReaper`] — a daemon peer of
//! [`crate::vacuum::VacuumDaemon`] — rolls back sessions idle past the
//! configured deadline and emits a typed `session_reaped` event.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use db2graph_core::json::Json;
use reldb::Database;

use crate::Shared;

/// Why a session operation could not run; the router maps these to
/// status codes (`Unknown` → 404, `Busy` → 409).
#[derive(Debug)]
pub enum SessionError {
    /// No such session id: never begun, or already ended by commit,
    /// rollback, or the reaper.
    Unknown,
    /// The session is mid-request on another connection; sessions
    /// serialize their own requests rather than interleaving them.
    Busy,
}

struct SessionEntry {
    /// The reldb session-transaction token this id is bound to.
    token: u64,
    /// Last moment a request begun, touched, or ended this session; the
    /// reaper's idle clock.
    last_used: Instant,
    /// A request is currently executing inside the session. The registry
    /// guards this above reldb's own checkout so touch/reap/commit make
    /// their decision and mutation under one lock.
    busy: bool,
}

/// The id → transaction registry, owned by [`crate::Shared`].
pub struct SessionManager {
    sessions: Mutex<HashMap<String, SessionEntry>>,
    idle: Duration,
    /// Suffix for minted session ids.
    seq: AtomicU64,
    /// Id prefix (server start time in unix millis, hex), making ids
    /// unique across restarts like request ids.
    epoch: u64,
}

impl SessionManager {
    pub fn new(idle: Duration, epoch: u64) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            idle,
            seq: AtomicU64::new(0),
            epoch,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, SessionEntry>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Begin a session: open a reldb session transaction and bind a fresh
    /// id to it.
    pub fn begin(&self, db: &Database) -> String {
        let token = db.begin_session_txn();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let id = format!("s-{:x}-{seq}", self.epoch);
        self.lock().insert(id.clone(), SessionEntry { token, last_used: Instant::now(), busy: true });
        // `busy: true` above reserves the entry against a reaper tick
        // firing between insert and the touch below on a loaded box;
        // release it immediately.
        self.finish(&id);
        id
    }

    /// Mark the session busy and return its token for request execution.
    /// The caller must pair this with [`SessionManager::finish`].
    fn checkout(&self, id: &str) -> Result<u64, SessionError> {
        let mut map = self.lock();
        let entry = map.get_mut(id).ok_or(SessionError::Unknown)?;
        if entry.busy {
            return Err(SessionError::Busy);
        }
        entry.busy = true;
        entry.last_used = Instant::now();
        Ok(entry.token)
    }

    /// Release a checked-out session and refresh its idle clock.
    fn finish(&self, id: &str) {
        if let Some(entry) = self.lock().get_mut(id) {
            entry.busy = false;
            entry.last_used = Instant::now();
        }
    }

    /// Run `f` inside session `id`'s transaction: its statements read the
    /// session's uncommitted writes and write into its undo log.
    pub fn with<T>(
        &self,
        id: &str,
        db: &Database,
        f: impl FnOnce() -> T,
    ) -> Result<T, SessionError> {
        let token = self.checkout(id)?;
        // A panic inside `f` unwinds through `with_session_txn`'s own
        // guard (the reldb state survives); this guard releases the
        // registry entry the same way so the session stays endable.
        struct Finish<'a> {
            mgr: &'a SessionManager,
            id: &'a str,
        }
        impl Drop for Finish<'_> {
            fn drop(&mut self) {
                self.mgr.finish(self.id);
            }
        }
        let _finish = Finish { mgr: self, id };
        match db.with_session_txn(token, |_| f()) {
            Ok(v) => Ok(v),
            // The registry said the token exists and is not busy, so a
            // reldb-level refusal means the token raced away (it cannot
            // through this registry); surface it as unknown.
            Err(_) => Err(SessionError::Unknown),
        }
    }

    /// End session `id` by committing (`commit == true`) or rolling back
    /// its transaction. The entry is removed first — under the registry
    /// lock, refusing busy sessions — so two racing enders cannot both
    /// settle one transaction.
    pub fn end(&self, id: &str, db: &Database, commit: bool) -> Result<reldb::DbResult<()>, SessionError> {
        let token = {
            let mut map = self.lock();
            let entry = map.get(id).ok_or(SessionError::Unknown)?;
            if entry.busy {
                return Err(SessionError::Busy);
            }
            map.remove(id).expect("present above").token
        };
        Ok(if commit { db.commit_session_txn(token) } else { db.rollback_session_txn(token) })
    }

    /// Sessions currently registered (busy or idle).
    pub fn open(&self) -> usize {
        self.lock().len()
    }

    /// Roll back every non-busy session idle past the deadline — or, on
    /// the final shutdown pass (`everything`), all of them — returning the
    /// reaped ids. Busy sessions are skipped, not waited for: the request
    /// inside refreshes `last_used` when it finishes.
    pub fn reap(&self, db: &Database, everything: bool) -> Vec<String> {
        let victims: Vec<(String, u64)> = {
            let mut map = self.lock();
            let ids: Vec<String> = map
                .iter()
                .filter(|(_, e)| !e.busy && (everything || e.last_used.elapsed() >= self.idle))
                .map(|(id, _)| id.clone())
                .collect();
            ids.into_iter()
                .map(|id| {
                    let token = map.remove(&id).expect("collected above").token;
                    (id, token)
                })
                .collect()
        };
        victims
            .into_iter()
            .map(|(id, token)| {
                // A rollback failure still reaps the registry entry; the
                // error is best-effort logged by the caller's event.
                let _ = db.rollback_session_txn(token);
                id
            })
            .collect()
    }
}

/// Background reaper for abandoned sessions: same lifecycle discipline as
/// the vacuum daemon — condvar stop signal, prompt shutdown, a final pass
/// (which rolls back *every* remaining session, so a drained server
/// leaves no uncommitted markers behind), joined handle.
pub struct SessionReaper {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl SessionReaper {
    pub(crate) fn start(shared: Arc<Shared>, interval: Duration) -> SessionReaper {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("session-reaper".into())
                .spawn(move || {
                    let (lock, cv) = &*stop;
                    let run_pass = |everything: bool| {
                        let db = shared.graph.database();
                        for id in shared.sessions.reap(db, everything) {
                            shared.metrics.record_session_reaped();
                            shared
                                .events
                                .emit("session_reaped", vec![("session", Json::str(id))]);
                        }
                    };
                    let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if *stopped {
                            run_pass(true);
                            return;
                        }
                        let (guard, _) = cv
                            .wait_timeout(stopped, interval)
                            .unwrap_or_else(|e| e.into_inner());
                        stopped = guard;
                        if !*stopped {
                            run_pass(false);
                        }
                    }
                })
                .expect("spawn session reaper")
        };
        SessionReaper { stop, handle: Some(handle) }
    }

    /// Signal the thread, wait for its final reap-everything pass, and
    /// join it.
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        let _ = handle.join();
    }
}

impl Drop for SessionReaper {
    fn drop(&mut self) {
        self.stop_impl();
    }
}
