//! Hand-rolled Prometheus text exposition (format version 0.0.4) for
//! `GET /metrics` with `Accept: text/plain` or `?format=prometheus`.
//!
//! The JSON form of `/metrics` stays the source of truth and its schema
//! is untouched; this module *re-renders* the same numbers so a stock
//! Prometheus scraper can consume them without a sidecar exporter — the
//! paper's retrofit argument applied to operations: the graph layer must
//! plug into the host fleet's standard monitoring, not ship its own.
//!
//! Mapping rules:
//! * every numeric leaf of a JSON section becomes
//!   `db2graph_<section>_<key>` (so a metric added to the JSON later is
//!   automatically exposed here — coverage can't silently drift);
//! * the log2 latency histograms become native Prometheus histograms in
//!   seconds: cumulative `le` buckets (bucket upper bounds are the
//!   `2^i - 1` nanosecond boundaries), terminated by `+Inf`, plus `_sum`
//!   and `_count`;
//! * keyed histogram sets (`sql_templates`, `step_kinds`, per-endpoint
//!   latency) become one labeled histogram series each.

use db2graph_core::json::Json;
use db2graph_core::{EventLog, Histogram, HistogramSet, MetricsRegistry};

use crate::metrics::ServerMetrics;

/// Gauge-typed metric names (per section); everything else numeric is
/// exposed as a counter. Misclassifying a name costs only the `# TYPE`
/// annotation, never the value.
fn is_gauge(key: &str) -> bool {
    matches!(
        key,
        "in_flight"
            | "queued"
            | "commit_epoch"
            | "snapshot_horizon"
            | "active_snapshots"
            | "trace_spans"
            | "replica_applied_epoch"
            | "replication_lag_records"
            | "uptime_seconds"
            | "sessions_open"
            | "adj_cache_bytes"
    ) || key.ends_with("_nanos")
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn push_metric(out: &mut String, name: &str, kind: &str, value: f64) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(name);
    out.push(' ');
    out.push_str(&fmt_f64(value));
    out.push('\n');
}

/// Render every numeric leaf of a `/metrics` JSON section as
/// `db2graph_<section>_<key>`. Nested objects are skipped — those are the
/// keyed histograms, exposed natively by the callers below.
fn push_section(out: &mut String, section: &str, json: &Json) {
    let Some(fields) = json.as_object() else { return };
    for (key, value) in fields {
        if let Json::Num(n) = value {
            let name = format!("db2graph_{section}_{key}");
            push_metric(out, &name, if is_gauge(key) { "gauge" } else { "counter" }, *n);
        }
    }
}

/// One histogram exposed in seconds from cumulative nanosecond buckets.
fn push_histogram_buckets(
    out: &mut String,
    name: &str,
    labels: &str,
    buckets: &[(u64, u64)],
    count: u64,
    sum_nanos: u64,
) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (upper, cum) in buckets {
        // The top bucket's upper bound is u64::MAX nanos — effectively
        // unbounded; folding it into +Inf keeps `le` values meaningful.
        if *upper == u64::MAX {
            continue;
        }
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}\n",
            fmt_f64(*upper as f64 / 1e9)
        ));
    }
    out.push_str(&format!("{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {count}\n"));
    if labels.is_empty() {
        out.push_str(&format!("{name}_sum {}\n", fmt_f64(sum_nanos as f64 / 1e9)));
        out.push_str(&format!("{name}_count {count}\n"));
    } else {
        out.push_str(&format!("{name}_sum{{{labels}}} {}\n", fmt_f64(sum_nanos as f64 / 1e9)));
        out.push_str(&format!("{name}_count{{{labels}}} {count}\n"));
    }
}

fn push_histogram(out: &mut String, name: &str, hist: &Histogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    push_histogram_buckets(out, name, "", &hist.cumulative_buckets(), hist.count(), hist.sum());
}

fn push_histogram_set(out: &mut String, name: &str, label: &str, set: &HistogramSet) {
    let entries = set.entries();
    if entries.is_empty() {
        return;
    }
    out.push_str(&format!("# TYPE {name} histogram\n"));
    for (key, hist) in entries {
        let labels = format!("{label}=\"{}\"", escape_label(&key));
        push_histogram_buckets(
            out,
            name,
            &labels,
            &hist.cumulative_buckets(),
            hist.count(),
            hist.sum(),
        );
    }
}

/// Everything `/metrics` knows, in Prometheus text format. `graph_json`,
/// `server_json`, and `replication_json` are the exact JSON sections the
/// JSON form serves, so the two formats can never disagree on a value's
/// name or meaning.
#[allow(clippy::too_many_arguments)]
pub fn render(
    graph_json: &Json,
    server_json: &Json,
    replication_json: Option<(&str, &Json)>,
    registry: &MetricsRegistry,
    server: &ServerMetrics,
    db: &reldb::Database,
    events: &EventLog,
    uptime_seconds: u64,
) -> String {
    let mut out = String::with_capacity(8 * 1024);
    push_section(&mut out, "graph", graph_json);
    push_section(&mut out, "server", server_json);
    if let Some((primary, json)) = replication_json {
        push_section(&mut out, "replication", json);
        out.push_str("# TYPE db2graph_replication_info gauge\n");
        out.push_str(&format!(
            "db2graph_replication_info{{primary=\"{}\"}} 1\n",
            escape_label(primary)
        ));
    }
    push_metric(&mut out, "db2graph_server_uptime_seconds", "gauge", uptime_seconds as f64);
    push_metric(&mut out, "db2graph_events_emitted_total", "counter", events.emitted() as f64);
    push_metric(
        &mut out,
        "db2graph_events_dropped_writes_total",
        "counter",
        events.dropped_writes() as f64,
    );
    push_metric(&mut out, "db2graph_txn_conflicts_total", "counter", db.txn_conflicts() as f64);

    push_histogram(&mut out, "db2graph_query_latency_seconds", registry.query_latency());
    push_histogram(&mut out, "db2graph_sql_latency_seconds", registry.sql_latency());
    push_histogram_set(
        &mut out,
        "db2graph_sql_template_latency_seconds",
        "template",
        registry.sql_templates(),
    );
    push_histogram_set(&mut out, "db2graph_step_latency_seconds", "step", registry.step_kinds());
    push_histogram_set(
        &mut out,
        "db2graph_http_request_latency_seconds",
        "endpoint",
        server.endpoint_histograms(),
    );
    // WAL fsync latency straight from the durability layer (empty — just
    // the +Inf bucket — on in-memory databases).
    out.push_str("# TYPE db2graph_wal_fsync_latency_seconds histogram\n");
    push_histogram_buckets(
        &mut out,
        "db2graph_wal_fsync_latency_seconds",
        "",
        &db.wal_fsync_buckets(),
        db.wal_fsync_count(),
        db.wal_fsync_sum_nanos(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_render_numeric_leaves_and_skip_nested() {
        let json = Json::obj(vec![
            ("traversals", Json::u64(7)),
            ("in_flight", Json::u64(2)),
            ("nested", Json::obj(vec![("x", Json::u64(1))])),
            ("name", Json::str("not a number")),
        ]);
        let mut out = String::new();
        push_section(&mut out, "graph", &json);
        assert!(out.contains("# TYPE db2graph_graph_traversals counter\n"), "{out}");
        assert!(out.contains("db2graph_graph_traversals 7\n"), "{out}");
        assert!(out.contains("# TYPE db2graph_graph_in_flight gauge\n"), "{out}");
        assert!(!out.contains("nested"), "{out}");
        assert!(!out.contains("not a number"), "{out}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 700, 9_000_000] {
            h.record(v);
        }
        let mut out = String::new();
        push_histogram(&mut out, "test_seconds", &h);
        let bucket_counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("test_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]), "{out}");
        assert!(out.contains("le=\"+Inf\"} 5\n"), "{out}");
        assert!(out.contains("test_seconds_count 5\n"), "{out}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
