//! Background MVCC maintenance: a daemon thread that periodically
//! reclaims row versions dead to every registered snapshot, and — when
//! the database is durable and a cadence is configured — writes
//! checkpoints so the WAL stays short and recovery stays fast.
//!
//! PR 4 added `Database::vacuum()` but nothing scheduled it — under a
//! steady write load the version chains only ever grew between the
//! opportunistic per-table threshold sweeps. The serving layer owns the
//! process lifecycle, so it owns the schedule too; each pass's reclaimed
//! count lands in the graph's metrics registry as `vacuumed_versions`,
//! and checkpoint counts surface through the database's own durability
//! counters (`checkpoints` in `/metrics`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use db2graph_core::json::Json;
use db2graph_core::{EventLog, MetricsRegistry};
use reldb::Database;

/// Periodically calls [`Database::vacuum`] (and, on its own slower
/// cadence, [`Database::checkpoint`]) until stopped. Stopping is prompt
/// (condvar wakeup, no interval-long sleep to drain) and runs one final
/// pass — including a final checkpoint when configured — so a clean
/// shutdown leaves no reclaimable garbage and a short WAL behind.
pub struct VacuumDaemon {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
    reclaimed: Arc<AtomicU64>,
}

impl VacuumDaemon {
    pub fn start(
        db: Arc<Database>,
        registry: Arc<MetricsRegistry>,
        events: Arc<EventLog>,
        interval: Duration,
        checkpoint_interval: Option<Duration>,
    ) -> VacuumDaemon {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let reclaimed = Arc::new(AtomicU64::new(0));
        // Checkpoints only make sense against a durable database; a
        // cadence on an in-memory one is ignored rather than erroring
        // every tick.
        let checkpoint_interval = checkpoint_interval.filter(|_| db.is_durable());
        let handle = {
            let stop = stop.clone();
            let reclaimed = reclaimed.clone();
            std::thread::Builder::new()
                .name("vacuum-daemon".into())
                .spawn(move || {
                    let (lock, cv) = &*stop;
                    let mut last_checkpoint = Instant::now();
                    let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        let mut run_pass = |reclaimed: &AtomicU64, final_pass: bool| {
                            let n = db.vacuum() as u64;
                            registry.record_vacuum(n);
                            reclaimed.fetch_add(n, Ordering::Relaxed);
                            // Idle ticks reclaim nothing; logging them
                            // would only drown real events.
                            if n > 0 {
                                events.emit(
                                    "vacuum_run",
                                    vec![("reclaimed_versions", Json::u64(n))],
                                );
                            }
                            if let Some(every) = checkpoint_interval {
                                if final_pass || last_checkpoint.elapsed() >= every {
                                    // A checkpoint failure (disk full, or a
                                    // test-injected crash) must not kill the
                                    // vacuum schedule; recovery still has the
                                    // previous checkpoint plus the full WAL.
                                    if db.checkpoint().is_ok() {
                                        last_checkpoint = Instant::now();
                                    }
                                }
                            }
                        };
                        if *stopped {
                            run_pass(&reclaimed, true);
                            return;
                        }
                        let (guard, _) = cv
                            .wait_timeout(stopped, interval)
                            .unwrap_or_else(|e| e.into_inner());
                        stopped = guard;
                        if !*stopped {
                            run_pass(&reclaimed, false);
                        }
                    }
                })
                .expect("spawn vacuum daemon")
        };
        VacuumDaemon { stop, handle: Some(handle), reclaimed }
    }

    /// Total versions this daemon has reclaimed.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// Signal the thread, wait for its final pass, and join it.
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        let _ = handle.join();
    }
}

impl Drop for VacuumDaemon {
    fn drop(&mut self) {
        self.stop_impl();
    }
}
