//! Background MVCC garbage collection: a daemon thread that periodically
//! reclaims row versions dead to every registered snapshot.
//!
//! PR 4 added `Database::vacuum()` but nothing scheduled it — under a
//! steady write load the version chains only ever grew between the
//! opportunistic per-table threshold sweeps. The serving layer owns the
//! process lifecycle, so it owns the schedule too; each pass's reclaimed
//! count lands in the graph's metrics registry as `vacuumed_versions`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use db2graph_core::MetricsRegistry;
use reldb::Database;

/// Periodically calls [`Database::vacuum`] until stopped. Stopping is
/// prompt (condvar wakeup, no interval-long sleep to drain) and runs one
/// final pass so a clean shutdown leaves no reclaimable garbage behind.
pub struct VacuumDaemon {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
    reclaimed: Arc<AtomicU64>,
}

impl VacuumDaemon {
    pub fn start(
        db: Arc<Database>,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
    ) -> VacuumDaemon {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let reclaimed = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = stop.clone();
            let reclaimed = reclaimed.clone();
            std::thread::Builder::new()
                .name("vacuum-daemon".into())
                .spawn(move || {
                    let (lock, cv) = &*stop;
                    let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        let run_pass = |reclaimed: &AtomicU64| {
                            let n = db.vacuum() as u64;
                            registry.record_vacuum(n);
                            reclaimed.fetch_add(n, Ordering::Relaxed);
                        };
                        if *stopped {
                            run_pass(&reclaimed);
                            return;
                        }
                        let (guard, _) = cv
                            .wait_timeout(stopped, interval)
                            .unwrap_or_else(|e| e.into_inner());
                        stopped = guard;
                        if !*stopped {
                            run_pass(&reclaimed);
                        }
                    }
                })
                .expect("spawn vacuum daemon")
        };
        VacuumDaemon { stop, handle: Some(handle), reclaimed }
    }

    /// Total versions this daemon has reclaimed.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// Signal the thread, wait for its final pass, and join it.
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        let _ = handle.join();
    }
}

impl Drop for VacuumDaemon {
    fn drop(&mut self) {
        self.stop_impl();
    }
}
