//! # db2graph-server — the network surface of the graph
//!
//! A dependency-free HTTP/1.1 query service over `std::net`, fronting a
//! [`Db2Graph`] the way a Gremlin server fronts the paper's TinkerPop
//! stack. Design points, all load-bearing:
//!
//! * **Fixed acceptor + worker pool.** One thread accepts; `workers`
//!   threads execute. Max in-flight requests is exactly the worker
//!   count — queries never oversubscribe the process.
//! * **Admission control.** Accepted connections enter a bounded queue;
//!   when it is full the acceptor sheds the connection with `429`
//!   immediately instead of queuing unboundedly.
//! * **Per-request snapshot.** Every `/query` pins one committed MVCC
//!   snapshot for its whole script (via `Db2Graph::run`'s existing
//!   pinning), so a response can never observe half of a concurrent
//!   writer's transaction.
//! * **Per-request deadline.** `query_timeout` converts to a deadline the
//!   backend checks before every SQL statement; an expired query aborts
//!   with `503` and counts in `query_timeouts`.
//! * **Hostile-input limits.** Read timeout, header budget, body budget;
//!   malformed HTTP, JSON, or Gremlin is a structured `400`, never a
//!   panic.
//! * **Graceful shutdown.** Stop accepting, drain everything already
//!   admitted, join every thread. After shutdown,
//!   `completed == admitted`: zero dropped in-flight queries.
//! * **Vacuum daemon.** MVCC garbage collection runs on the server's
//!   clock (see [`vacuum::VacuumDaemon`]) and reports through `/metrics`.
//!
//! See `docs/SERVER.md` for the endpoint reference and curl examples.

pub mod client;
pub mod gjson;
pub mod http;
pub mod metrics;
pub mod monitor;
pub mod promtext;
pub mod replica;
pub mod session;
pub mod vacuum;

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use db2graph_core::json::Json;
use db2graph_core::{Db2Graph, EventLog, GraphError};

use crate::gjson::gvalue_to_json;
use crate::http::{HttpError, Request};
use crate::metrics::ServerMetrics;
use crate::monitor::{Health, MonitorDaemon, SloTargets};
use crate::replica::{ReplicaDaemon, ReplicaMetrics};
use crate::session::{SessionError, SessionManager, SessionReaper};
use crate::vacuum::VacuumDaemon;

pub use crate::client::{
    http_call, http_call_bytes, http_call_bytes_with_headers, http_call_with_headers, post_query,
    HttpBytesResponse, HttpClient, HttpResponse,
};

/// Serving knobs. `Default` is production-shaped; [`ServerConfig::from_env`]
/// layers the `DB2GRAPH_*` environment on top.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `:0` picks an ephemeral port (see
    /// [`ServerHandle::addr`]). Env: `DB2GRAPH_HTTP_ADDR`.
    pub addr: String,
    /// Worker threads — the hard cap on in-flight requests.
    /// Env: `DB2GRAPH_MAX_INFLIGHT`.
    pub workers: usize,
    /// Accepted connections waiting for a worker beyond the in-flight
    /// cap; when full, new arrivals are shed with 429 (clamped ≥ 1).
    pub queue_depth: usize,
    /// Per-query execution budget; `None` disables deadlines.
    /// Env: `DB2GRAPH_QUERY_TIMEOUT_MS` (0 disables).
    pub query_timeout: Option<Duration>,
    /// Total budget for reading one request — head and body together —
    /// against slow or stalled clients (408). A per-request deadline, not
    /// a per-read idle timeout: dripping bytes does not renew it.
    pub read_timeout: Duration,
    /// Request head budget (431 beyond it).
    pub max_header_bytes: usize,
    /// Request body budget (413 beyond it).
    pub max_body_bytes: usize,
    /// Requests one keep-alive connection may serve before the server
    /// closes it (clamped ≥ 1; 1 restores one-request-per-connection).
    /// The budget — together with `keepalive_idle` — keeps a persistent
    /// connection from squatting a worker forever.
    /// Env: `DB2GRAPH_KEEPALIVE_REQUESTS`.
    pub keepalive_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it. Env: `DB2GRAPH_KEEPALIVE_IDLE_MS`.
    pub keepalive_idle: Duration,
    /// How long an HTTP session (an open cross-request transaction) may
    /// sit idle before the reaper rolls it back.
    /// Env: `DB2GRAPH_SESSION_IDLE_MS`.
    pub session_idle: Duration,
    /// Vacuum daemon period; `None` disables the daemon.
    pub vacuum_interval: Option<Duration>,
    /// Checkpoint cadence, driven by the vacuum daemon; `None` disables
    /// periodic checkpoints. Ignored for an in-memory database.
    /// Env: `DB2GRAPH_CHECKPOINT_MS` (0 disables).
    pub checkpoint_interval: Option<Duration>,
    /// Directory the database persists to (WAL + checkpoints). `None`
    /// serves a purely in-memory database. Env: `DB2GRAPH_DATA_DIR`.
    pub data_dir: Option<String>,
    /// Durability mode for `data_dir`. Env: `DB2GRAPH_DURABILITY`
    /// (`always`/`batch`/`off`).
    pub durability: reldb::Durability,
    /// Enable `POST /sql`, the raw-SQL administration channel. It can
    /// mutate or drop any table and carries no authentication, so it is
    /// opt-in and off by default — the graph endpoints stay read-only.
    /// When disabled the endpoint answers 403.
    /// Env: `DB2GRAPH_SQL_ENDPOINT` (`1`/`true` to enable).
    pub sql_endpoint: bool,
    /// Follow a primary at `host:port` instead of serving standalone: the
    /// server becomes a log-shipping read replica — it bootstraps from the
    /// primary's checkpoint, tails its WAL, serves every read endpoint at
    /// the applied epoch, and answers writes 403 pointing at the primary.
    /// Replicas serve from memory; `data_dir`/`durability` are ignored (a
    /// restarted replica re-bootstraps). Env: `DB2GRAPH_REPLICA_OF`.
    pub replica_of: Option<String>,
    /// How often a caught-up replica polls the primary for new WAL
    /// records (while behind it streams without pausing).
    /// Env: `DB2GRAPH_REPLICA_POLL_MS`.
    pub replica_poll: Duration,
    /// Mirror every operational event to this JSONL file (size-rotated);
    /// `None` keeps events in the in-memory ring only.
    /// Env: `DB2GRAPH_EVENT_LOG`.
    pub event_log_path: Option<String>,
    /// Rotate the event log file once it reaches this many bytes.
    /// Env: `DB2GRAPH_EVENT_LOG_ROTATE_BYTES`.
    pub event_log_rotate_bytes: u64,
    /// SLO targets for the health monitor; the monitor daemon runs only
    /// when at least one is set. Envs: `DB2GRAPH_SLO_P99_MS`,
    /// `DB2GRAPH_SLO_ERROR_PCT`, `DB2GRAPH_MAX_REPLICA_LAG`,
    /// `DB2GRAPH_SLO_FSYNC_P99_MS`.
    pub slo: SloTargets,
    /// Monitor evaluation period. Env: `DB2GRAPH_MONITOR_MS`.
    pub monitor_interval: Duration,
    /// Rolling window the SLOs are evaluated over.
    /// Env: `DB2GRAPH_MONITOR_WINDOW_MS`.
    pub monitor_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8182".into(),
            workers: 8,
            queue_depth: 64,
            query_timeout: Some(Duration::from_secs(30)),
            read_timeout: Duration::from_secs(10),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            keepalive_requests: 1000,
            keepalive_idle: Duration::from_secs(5),
            session_idle: Duration::from_secs(30),
            vacuum_interval: Some(Duration::from_secs(1)),
            checkpoint_interval: Some(Duration::from_secs(60)),
            data_dir: None,
            durability: reldb::Durability::Always,
            sql_endpoint: false,
            replica_of: None,
            replica_poll: Duration::from_millis(100),
            event_log_path: None,
            event_log_rotate_bytes: db2graph_core::DEFAULT_ROTATE_BYTES,
            slo: SloTargets::default(),
            monitor_interval: Duration::from_millis(500),
            monitor_window: Duration::from_secs(60),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by `DB2GRAPH_HTTP_ADDR`, `DB2GRAPH_MAX_INFLIGHT`,
    /// `DB2GRAPH_QUERY_TIMEOUT_MS`, `DB2GRAPH_DATA_DIR`,
    /// `DB2GRAPH_DURABILITY`, `DB2GRAPH_CHECKPOINT_MS`,
    /// `DB2GRAPH_SQL_ENDPOINT`, `DB2GRAPH_REPLICA_OF`,
    /// `DB2GRAPH_REPLICA_POLL_MS`, `DB2GRAPH_EVENT_LOG`,
    /// `DB2GRAPH_EVENT_LOG_ROTATE_BYTES`, the SLO targets
    /// (`DB2GRAPH_SLO_P99_MS`, `DB2GRAPH_SLO_ERROR_PCT`,
    /// `DB2GRAPH_MAX_REPLICA_LAG`, `DB2GRAPH_SLO_FSYNC_P99_MS`), and the
    /// monitor cadence (`DB2GRAPH_MONITOR_MS`,
    /// `DB2GRAPH_MONITOR_WINDOW_MS`).
    pub fn from_env() -> ServerConfig {
        let mut c = ServerConfig::default();
        if let Ok(addr) = std::env::var("DB2GRAPH_HTTP_ADDR") {
            if !addr.is_empty() {
                c.addr = addr;
            }
        }
        if let Some(n) = env_parse::<usize>("DB2GRAPH_MAX_INFLIGHT") {
            c.workers = n.max(1);
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_QUERY_TIMEOUT_MS") {
            c.query_timeout = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Ok(dir) = std::env::var("DB2GRAPH_DATA_DIR") {
            if !dir.is_empty() {
                c.data_dir = Some(dir);
            }
        }
        if let Ok(mode) = std::env::var("DB2GRAPH_DURABILITY") {
            match reldb::Durability::parse(&mode) {
                Some(m) => c.durability = m,
                None => db2graph_core::record_config_warning(
                    "DB2GRAPH_DURABILITY",
                    &mode,
                    "default durability (always)",
                ),
            }
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_CHECKPOINT_MS") {
            c.checkpoint_interval = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(n) = env_parse::<usize>("DB2GRAPH_KEEPALIVE_REQUESTS") {
            c.keepalive_requests = n.max(1);
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_KEEPALIVE_IDLE_MS") {
            c.keepalive_idle = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_SESSION_IDLE_MS") {
            c.session_idle = Duration::from_millis(ms.max(1));
        }
        if let Ok(v) = std::env::var("DB2GRAPH_SQL_ENDPOINT") {
            c.sql_endpoint = matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes");
        }
        if let Ok(primary) = std::env::var("DB2GRAPH_REPLICA_OF") {
            if !primary.is_empty() {
                c.replica_of = Some(primary);
            }
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_REPLICA_POLL_MS") {
            c.replica_poll = Duration::from_millis(ms.max(1));
        }
        if let Ok(path) = std::env::var("DB2GRAPH_EVENT_LOG") {
            if !path.is_empty() {
                c.event_log_path = Some(path);
            }
        }
        if let Some(n) = env_parse::<u64>("DB2GRAPH_EVENT_LOG_ROTATE_BYTES") {
            c.event_log_rotate_bytes = n.max(1024);
        }
        c.slo.p99_ms = env_parse::<f64>("DB2GRAPH_SLO_P99_MS");
        c.slo.error_pct = env_parse::<f64>("DB2GRAPH_SLO_ERROR_PCT");
        c.slo.max_replica_lag = env_parse::<u64>("DB2GRAPH_MAX_REPLICA_LAG");
        c.slo.fsync_p99_ms = env_parse::<f64>("DB2GRAPH_SLO_FSYNC_P99_MS");
        c.slo.max_sessions = env_parse::<u64>("DB2GRAPH_SLO_MAX_SESSIONS");
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_MONITOR_MS") {
            c.monitor_interval = Duration::from_millis(ms.max(10));
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_MONITOR_WINDOW_MS") {
            c.monitor_window = Duration::from_millis(ms.max(100));
        }
        c
    }

    /// Open the database this configuration describes: durable (running
    /// crash recovery) when `data_dir` is set, in-memory otherwise. A
    /// replica (`replica_of`) always serves from memory — its durability
    /// story is re-bootstrapping from the primary, so `data_dir` is
    /// ignored — and is synchronized with the primary before returning,
    /// so the graph overlay constructed over it reads a populated
    /// catalog.
    pub fn open_database(&self) -> reldb::DbResult<Arc<reldb::Database>> {
        if let Some(primary) = &self.replica_of {
            let db = Arc::new(reldb::Database::new());
            replica::sync_once(&db, primary, self.read_timeout, Duration::from_secs(30))
                .map_err(reldb::DbError::Io)?;
            return Ok(db);
        }
        match &self.data_dir {
            Some(dir) => Ok(Arc::new(reldb::Database::open_with(dir, self.durability)?)),
            None => Ok(Arc::new(reldb::Database::new())),
        }
    }
}

/// Parse an environment knob, recording a typed `config_warning` (instead
/// of silently falling back) when the value is set but unparseable.
fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            db2graph_core::record_config_warning(name, &raw, "built-in default");
            None
        }
    }
}

/// Follower identity, present only when serving as a read replica: who
/// the primary is (for 403 redirects and metrics labels) and the apply
/// loop's counters.
pub(crate) struct ReplicaInfo {
    pub(crate) primary: String,
    pub(crate) metrics: Arc<ReplicaMetrics>,
}

/// State shared by the acceptor, the workers, the daemons, and the
/// handle.
pub(crate) struct Shared {
    pub(crate) graph: Arc<Db2Graph>,
    pub(crate) config: ServerConfig,
    pub(crate) metrics: ServerMetrics,
    /// `Some` when this server is a log-shipping follower.
    pub(crate) replica: Option<ReplicaInfo>,
    /// The structured operational event log (ring + optional JSONL file),
    /// served by `GET /events`.
    pub(crate) events: Arc<EventLog>,
    /// The SLO monitor's current verdict, served by `GET /readyz`.
    /// Default (never evaluated) is "ready".
    pub(crate) health: Mutex<Health>,
    /// Process start, for `uptime_seconds`.
    pub(crate) started: Instant,
    /// Request-id prefix: server start time in unix millis, hex. Makes
    /// generated ids unique across restarts, not just within a process.
    pub(crate) request_epoch: u64,
    /// Monotonic suffix for generated request ids.
    pub(crate) request_seq: AtomicU64,
    /// Admitted connections waiting for a worker.
    pub(crate) queue: Mutex<VecDeque<TcpStream>>,
    pub(crate) queue_cv: Condvar,
    /// Once true: the acceptor exits, workers drain the queue and exit.
    pub(crate) shutdown: AtomicBool,
    /// Open HTTP transaction sessions (id → reldb session transaction).
    pub(crate) sessions: SessionManager,
    /// Live `http-shed` courtesy threads (bounded; see [`shed`]).
    pub(crate) shedding: AtomicUsize,
    /// Join handles for shed threads, pruned as they finish; shutdown
    /// joins the stragglers so in-flight 429s complete before the
    /// [`DrainReport`] is final.
    pub(crate) shed_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// The request's correlation id: the client's `X-Request-Id` when it
    /// sent a usable one, else a generated `{epoch_hex}-{seq}`. Client
    /// ids are sanitized (header-safe charset, bounded length) because
    /// they are echoed into a response header and logs.
    pub(crate) fn request_id(&self, req: Option<&Request>) -> String {
        if let Some(claimed) = req.and_then(|r| r.header("x-request-id")) {
            let cleaned: String = claimed
                .chars()
                .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
                .take(64)
                .collect();
            if !cleaned.is_empty() {
                return cleaned;
            }
        }
        let seq = self.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{:x}-{seq}", self.request_epoch)
    }
}

/// The graph query service. [`GraphServer::start`] binds, spawns the
/// thread pool and the vacuum daemon, and returns a [`ServerHandle`].
pub struct GraphServer;

impl GraphServer {
    pub fn start(graph: Arc<Db2Graph>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // The event log first: the daemons and the database hook all
        // write into it. An unopenable sink file degrades to ring-only
        // (with a stderr note) rather than refusing to serve.
        let events = match &config.event_log_path {
            Some(path) => {
                match EventLog::new().with_file_sink(path, config.event_log_rotate_bytes) {
                    Ok(log) => Arc::new(log),
                    Err(e) => {
                        eprintln!(
                            "db2graph-server: cannot open event log '{path}': {e}; \
                             keeping events in memory only"
                        );
                        Arc::new(EventLog::new())
                    }
                }
            }
            None => Arc::new(EventLog::new()),
        };
        // Storage-level happenings (checkpoints, WAL rotation, write
        // conflicts) surface through the database's event hook; this
        // adapter translates them into the server's event stream.
        {
            let sink = events.clone();
            graph.database().set_event_hook(Some(Arc::new(move |e: &reldb::DbEvent| {
                let _ = match e {
                    reldb::DbEvent::CheckpointBegin { epoch } => {
                        sink.emit("checkpoint_begin", vec![("epoch", Json::u64(*epoch))])
                    }
                    reldb::DbEvent::CheckpointEnd { epoch, wall_nanos } => sink.emit(
                        "checkpoint_end",
                        vec![
                            ("epoch", Json::u64(*epoch)),
                            ("wall_nanos", Json::u64(*wall_nanos)),
                        ],
                    ),
                    reldb::DbEvent::WalRotation { cut_seq } => {
                        sink.emit("wal_rotation", vec![("cut_seq", Json::u64(*cut_seq))])
                    }
                    reldb::DbEvent::TxnConflict { detail } => {
                        sink.emit("txn_conflict", vec![("detail", Json::str(detail.clone()))])
                    }
                };
            })));
        }
        let vacuum = config.vacuum_interval.map(|interval| {
            VacuumDaemon::start(
                graph.database().clone(),
                graph.dialect().registry().clone(),
                events.clone(),
                interval,
                config.checkpoint_interval,
            )
        });
        // A follower keeps itself current on its own clock: the daemon
        // tails the primary's WAL and applies commits while the workers
        // serve reads at whatever epoch has been applied so far.
        let replica_daemon = config.replica_of.clone().map(|primary| {
            ReplicaDaemon::start(
                graph.database().clone(),
                primary,
                config.replica_poll,
                config.read_timeout,
                events.clone(),
            )
        });
        let replica = replica_daemon.as_ref().map(|d| ReplicaInfo {
            primary: d.primary().to_string(),
            metrics: d.metrics().clone(),
        });
        let request_epoch = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let shared = Arc::new(Shared {
            graph,
            config: config.clone(),
            metrics: ServerMetrics::default(),
            replica,
            events,
            health: Mutex::new(Health::default()),
            started: Instant::now(),
            request_epoch,
            request_seq: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            sessions: SessionManager::new(config.session_idle, request_epoch),
            shutdown: AtomicBool::new(false),
            shedding: AtomicUsize::new(0),
            shed_threads: Mutex::new(Vec::new()),
        });
        let monitor = config.slo.any().then(|| {
            MonitorDaemon::start(
                shared.clone(),
                config.slo.clone(),
                config.monitor_interval,
                config.monitor_window,
            )
        });
        // The session reaper ticks a few times per idle window so an
        // abandoned transaction outlives its deadline only briefly.
        let session_reaper = SessionReaper::start(
            shared.clone(),
            (config.session_idle / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)),
        );
        // Surface config-parse fallbacks (typed, queryable) before the
        // first request: anything the core or server env parsing rejected
        // since process start lands in the event stream here.
        shared.events.emit_config_warnings();
        shared.events.emit(
            "server_started",
            vec![
                ("addr", Json::str(addr.to_string())),
                (
                    "role",
                    Json::str(if shared.replica.is_some() { "replica" } else { "primary" }),
                ),
            ],
        );
        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("http-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            vacuum,
            replica_daemon,
            monitor,
            session_reaper: Some(session_reaper),
            drained: false,
        })
    }
}

/// Owner of the serving threads. Dropping the handle performs a graceful
/// shutdown (prefer calling [`ServerHandle::shutdown`] explicitly).
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    vacuum: Option<VacuumDaemon>,
    replica_daemon: Option<ReplicaDaemon>,
    monitor: Option<MonitorDaemon>,
    session_reaper: Option<SessionReaper>,
    /// Whether `shutdown_impl` has already run (it is called from both
    /// the explicit shutdown and `Drop`).
    drained: bool,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving-layer counters (admission, shedding, bytes).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// The structured operational event log (also served by `/events`).
    pub fn events(&self) -> &Arc<EventLog> {
        &self.shared.events
    }

    /// Block until the acceptor thread exits (it never does on its own —
    /// this is for serve-forever binaries that end via process signal).
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor is gone; drop-time shutdown joins the rest.
    }

    /// Graceful shutdown: stop accepting, drain every admitted
    /// connection, join all threads, run a final vacuum pass. Returns
    /// once everything is down, with the final counters — a drained
    /// server always reports `completed == admitted`.
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_impl();
        let m = &self.shared.metrics;
        DrainReport {
            admitted: m.admitted(),
            completed: m.completed(),
            rejected: m.rejected(),
            query_timeouts: m.query_timeouts(),
        }
    }

    fn shutdown_impl(&mut self) {
        if self.drained {
            return;
        }
        self.drained = true;
        // Store the flag while holding the queue mutex. A worker decides
        // to wait only after checking the flag under this same lock, so
        // once the store below completes, any worker that read `false` has
        // already released the lock by entering `wait()` (where the later
        // notify_all reaches it), and any worker checking afterwards sees
        // `true`. Storing without the lock loses the wakeup when the
        // store+notify lands between a worker's flag check and its wait,
        // hanging shutdown forever.
        {
            let _q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        // Unblock the acceptor's blocking `accept()` by dialing it, and
        // join it *before* waking the workers: anything it admitted in the
        // meantime must still find live workers to drain it.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Wake every idle worker; busy ones re-check the flag after
        // finishing their request and after the queue runs dry.
        self.shared.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Let in-flight 429 courtesy threads finish writing (each is
        // bounded by the read/write timeouts) so the drain report's
        // rejected/bytes counters are final when shutdown returns.
        let stragglers: Vec<JoinHandle<()>> = {
            let mut v = self.shared.shed_threads.lock().unwrap_or_else(|e| e.into_inner());
            v.drain(..).collect()
        };
        for h in stragglers {
            let _ = h.join();
        }
        if let Some(m) = self.monitor.take() {
            m.stop();
        }
        // The reaper's final pass rolls back every remaining session —
        // before the vacuum daemon's final pass, so the freed versions
        // are reclaimable and a final checkpoint sees no uncommitted
        // markers.
        if let Some(s) = self.session_reaper.take() {
            s.stop();
        }
        if let Some(v) = self.vacuum.take() {
            v.stop();
        }
        if let Some(r) = self.replica_daemon.take() {
            r.stop();
        }
        // Everything is down; the counters are final. Log the drain
        // outcome, then detach the database hook so a db that outlives
        // this server stops writing into a dead server's event log.
        let m = &self.shared.metrics;
        self.shared.events.emit(
            "drain_report",
            vec![
                ("admitted", Json::u64(m.admitted())),
                ("completed", Json::u64(m.completed())),
                ("rejected", Json::u64(m.rejected())),
                ("query_timeouts", Json::u64(m.query_timeouts())),
            ],
        );
        self.shared.graph.database().set_event_hook(None);
    }
}

/// Final counter values from [`ServerHandle::shutdown`]. The drain
/// guarantee is `completed == admitted`: no connection that made it past
/// admission was abandoned without a response.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    pub admitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub query_timeouts: u64,
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent accept error (e.g. EMFILE under an fd
                // flood) would otherwise spin this loop at 100% CPU;
                // count it, then pause briefly before retrying.
                shared.metrics.record_accept_error();
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The shutdown wake-up call (or a late client): drop without
            // admitting. Admitted work is still drained by the workers.
            return;
        }
        shared.metrics.record_accepted();
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= shared.config.queue_depth.max(1) {
            drop(q);
            shed(shared, stream);
            continue;
        }
        q.push_back(stream);
        drop(q);
        shared.metrics.record_admitted();
        shared.queue_cv.notify_one();
    }
}

/// Upper bound on concurrent courtesy-429 threads. Past this the server
/// is under a flood, not mere saturation, and connections are dropped
/// outright — shedding must never become its own resource sink.
const MAX_SHED_THREADS: usize = 32;

/// Saturated: answer 429 without occupying a worker or the acceptor.
///
/// The reject happens on a short-lived side thread because it must
/// *read the request before closing* — closing a socket with unread
/// input makes the kernel send RST, which discards the in-flight 429 —
/// and the acceptor cannot afford to block on a client's upload.
fn shed(shared: &Arc<Shared>, stream: TcpStream) {
    shared.metrics.record_rejected();
    if shared.shedding.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        shared.shedding.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    let cloned = shared.clone();
    let spawned = std::thread::Builder::new().name("http-shed".into()).spawn(move || {
        answer_429(&cloned, stream);
        cloned.shedding.fetch_sub(1, Ordering::SeqCst);
    });
    match spawned {
        Ok(handle) => {
            // Keep the handle so shutdown can join stragglers; prune
            // finished ones here so the vec stays bounded by
            // MAX_SHED_THREADS plus a few already-exited entries.
            let mut v = shared.shed_threads.lock().unwrap_or_else(|e| e.into_inner());
            v.retain(|h| !h.is_finished());
            v.push(handle);
        }
        Err(_) => {
            shared.shedding.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn answer_429(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    // Consume the request (bounded by the same limits and total read
    // deadline as real requests) so the close below is clean; keep only
    // what correlation needs (the path and any client request id).
    let mut shed_req = None;
    if let Ok(req) = http::read_request(
        &mut stream,
        shared.config.max_header_bytes,
        shared.config.max_body_bytes,
        shared.config.read_timeout,
        &mut Vec::new(),
    ) {
        shared.metrics.record_bytes_in(req.wire_bytes);
        shed_req = Some(req);
    }
    let request_id = shared.request_id(shed_req.as_ref());
    // The honest part of the shed: when to come back, from the queue's
    // observed drain rate, as both a header and a JSON field.
    let queued = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let retry_after = shared.metrics.retry_after_secs(queued as u64);
    let body = Json::obj(vec![
        ("error", Json::str("server saturated, retry later")),
        ("rejected", Json::Bool(true)),
        ("retry_after_seconds", Json::u64(retry_after)),
        ("request_id", Json::str(request_id.clone())),
    ])
    .to_compact();
    let retry_after = retry_after.to_string();
    if let Ok(n) = http::write_response_with(
        &mut stream,
        429,
        "application/json",
        body.as_bytes(),
        false,
        true,
        &[("X-Request-Id", &request_id), ("Retry-After", &retry_after)],
    ) {
        shared.metrics.record_bytes_out(n);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    shared.events.emit(
        "request_shed",
        vec![
            ("request_id", Json::str(request_id)),
            (
                "path",
                match &shed_req {
                    Some(r) => Json::str(r.path.clone()),
                    None => Json::Null,
                },
            ),
        ],
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match stream {
            Some(s) => handle_connection(shared, s),
            // Queue drained after shutdown: the worker may exit.
            None => return,
        }
    }
}

/// A routed response body: JSON everywhere except the replication
/// endpoints, which ship binary WAL frames and checkpoint images.
enum Payload {
    Json(Json),
    Bytes { content_type: &'static str, data: Vec<u8> },
}

/// Normalize a request path to a bounded endpoint label for the
/// per-endpoint latency histograms and events. Unknown paths are
/// client-controlled strings, so they fold into one bucket rather than
/// growing the label set.
fn endpoint_label(path: &str) -> &str {
    match path {
        "/query" | "/explain" | "/profile" | "/sql" | "/metrics" | "/slow-queries"
        | "/workload" | "/healthz" | "/readyz" | "/events" | "/wal" | "/checkpoint"
        | "/session" | "/session/commit" | "/session/rollback" => path,
        _ => "<other>",
    }
}

/// The `Allow` header value for a known path, for 405 responses. `None`
/// for unknown paths (those 404 instead).
fn allowed_methods(path: &str) -> Option<&'static str> {
    match path {
        "/query" | "/explain" | "/profile" | "/sql" | "/session" | "/session/commit"
        | "/session/rollback" => Some("POST"),
        "/metrics" | "/slow-queries" | "/workload" | "/healthz" | "/readyz" | "/events"
        | "/wal" | "/checkpoint" => Some("GET, HEAD"),
        _ => None,
    }
}

/// Why the keep-alive idle wait ended.
enum IdleWait {
    /// Bytes are waiting: serve the next request.
    Ready,
    /// The connection must close: idle deadline, peer hangup, or server
    /// shutdown.
    Close,
}

/// Wait for the first byte of the next request on a kept-alive
/// connection, bounded by `keepalive_idle`. The wait `peek`s in ≤100 ms
/// slices so a shutdown is noticed promptly even while a connection
/// squats idle — a worker parked here must not stall the drain.
fn wait_for_next_request(shared: &Shared, stream: &mut TcpStream) -> IdleWait {
    let deadline = Instant::now() + shared.config.keepalive_idle;
    let mut byte = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return IdleWait::Close;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return IdleWait::Close;
        }
        let _ = stream.set_read_timeout(Some(remaining.min(Duration::from_millis(100))));
        match stream.peek(&mut byte) {
            Ok(0) => return IdleWait::Close,
            Ok(_) => return IdleWait::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return IdleWait::Close,
        }
    }
}

/// The persistent-connection request loop: serve requests off one
/// connection until the client asks to close, the per-connection budget
/// runs out, the idle window lapses, or an error makes the stream's
/// framing untrustworthy.
///
/// Admission accounting is per *request*: the queue admission that got
/// this connection here pays for its first request; every further
/// request on the same connection increments `admitted` (and
/// `keepalive_reuses`) as it arrives, so the drain invariant
/// `completed == admitted` holds at request grain.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _gauge = shared.metrics.enter();
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let budget = shared.config.keepalive_requests.max(1);
    let mut carry: Vec<u8> = Vec::new();
    let mut served: usize = 0;
    loop {
        // Between requests (not before the first: it was admitted because
        // bytes were on the way), wait for the next one — unless the
        // client already pipelined it into the carry buffer.
        if served > 0 && carry.is_empty() {
            match wait_for_next_request(shared, &mut stream) {
                IdleWait::Ready => {}
                IdleWait::Close => break,
            }
        }
        if !serve_one(shared, &mut stream, &mut carry, served, budget) {
            break;
        }
        served += 1;
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Read, route, and answer one request on the connection. Returns whether
/// the connection should serve another.
fn serve_one(
    shared: &Shared,
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    served: usize,
    budget: usize,
) -> bool {
    let started = Instant::now();
    let mut head_only = false;
    let mut request_id = None;
    let mut method = String::new();
    // Requests that die before parsing still get a latency sample and an
    // event, under a reserved label.
    let mut endpoint = "<unparsed>".to_string();
    // Close after this response when the budget is spent or the server is
    // draining; the request itself (Connection: close, framing errors)
    // can also force it below.
    let mut close = served + 1 >= budget || shared.shutdown.load(Ordering::SeqCst);
    let mut allow: Option<&'static str> = None;
    let (status, payload) = match http::read_request(
        stream,
        shared.config.max_header_bytes,
        shared.config.max_body_bytes,
        shared.config.read_timeout,
        carry,
    ) {
        Ok(req) => {
            if served > 0 {
                shared.metrics.record_admitted();
                shared.metrics.record_keepalive_reuse();
            }
            shared.metrics.record_bytes_in(req.wire_bytes);
            head_only = req.method == "HEAD";
            method = req.method.clone();
            endpoint = endpoint_label(&req.path).to_string();
            close |= req.close;
            let rid = shared.request_id(Some(&req));
            let out = route(shared, &req, &rid);
            if out.0 == 405 {
                allow = allowed_methods(&req.path);
            }
            request_id = Some(rid);
            out
        }
        Err(HttpError::Closed) => {
            // Nothing arrived. The first request was pre-paid by the
            // queue admission, so balance it; a reused connection going
            // quiet costs nothing.
            if served == 0 {
                shared.metrics.record_completed();
            }
            return false;
        }
        Err(e) => {
            // A read-layer failure leaves the stream's framing unknown;
            // the connection cannot be reused.
            close = true;
            if served > 0 {
                shared.metrics.record_admitted();
                shared.metrics.record_keepalive_reuse();
            }
            let (status, msg) = match e {
                HttpError::Timeout => (408, "request read timed out".to_string()),
                HttpError::HeadersTooLarge => (431, "request head too large".to_string()),
                HttpError::BodyTooLarge => (413, "request body too large".to_string()),
                HttpError::Malformed(m) => (400, m),
                HttpError::Unsupported(m) => (501, m),
                HttpError::Io(e) => (400, format!("transport error: {e}")),
                HttpError::Closed => unreachable!("handled above"),
            };
            if status == 400 || status == 413 || status == 431 {
                shared.metrics.record_bad_request();
            }
            (status, Payload::Json(Json::obj(vec![("error", Json::str(msg))])))
        }
    };
    let request_id = request_id.unwrap_or_else(|| shared.request_id(None));
    // A graph-deadline 503 carries `"timeout": true`; surface it (and the
    // read-timeout 408) as a distinct event kind.
    let timed_out = status == 408
        || matches!(&payload, Payload::Json(j) if status == 503 && j.get("timeout").is_some());
    // Every error response carries the correlation id in its JSON body as
    // well as the header, so a copy-pasted error alone is traceable.
    let payload = if status >= 400 {
        shared.metrics.record_error_response();
        match payload {
            Payload::Json(Json::Obj(mut fields)) => {
                if !fields.iter().any(|(k, _)| k == "request_id") {
                    fields.push(("request_id".into(), Json::str(request_id.clone())));
                }
                Payload::Json(Json::Obj(fields))
            }
            other => other,
        }
    } else {
        payload
    };
    let (content_type, body) = match payload {
        Payload::Json(j) => ("application/json", j.to_compact().into_bytes()),
        Payload::Bytes { content_type, data } => (content_type, data),
    };
    let mut extra: Vec<(&str, &str)> = vec![("X-Request-Id", &request_id)];
    if let Some(methods) = allow {
        extra.push(("Allow", methods));
    }
    // Overload answers are honest about when to come back: every 429/503
    // carries a Retry-After computed from the queue's observed drain
    // rate. (429s from this path are rare — most sheds happen in
    // `answer_429` — but a loaded `/readyz` 503 takes the same hint.)
    let retry_after;
    if status == 429 || status == 503 {
        let queued = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
        retry_after = shared.metrics.retry_after_secs(queued as u64).to_string();
        extra.push(("Retry-After", &retry_after));
    }
    let mut keep = !close;
    match http::write_response_with(stream, status, content_type, &body, head_only, close, &extra)
    {
        Ok(n) => shared.metrics.record_bytes_out(n),
        // A client that vanished mid-response cannot be served further.
        Err(_) => keep = false,
    }
    shared.metrics.record_completed();
    let latency_nanos = started.elapsed().as_nanos() as u64;
    shared.metrics.record_endpoint_latency(&endpoint, latency_nanos);
    shared.events.emit(
        if timed_out { "request_timed_out" } else { "request_completed" },
        vec![
            ("request_id", Json::str(request_id)),
            ("method", Json::str(method)),
            ("endpoint", Json::str(endpoint)),
            ("status", Json::u64(status as u64)),
            ("latency_nanos", Json::u64(latency_nanos)),
        ],
    );
    keep
}

/// Pull the Gremlin script out of a request body: either a JSON object
/// `{"gremlin": "..."}` / JSON string, or the raw body verbatim. Raw
/// Gremlin can't start with `{` or `"`, so the sniff is unambiguous.
fn extract_gremlin(body: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let trimmed = text.trim_start();
    if trimmed.starts_with('{') || trimmed.starts_with('"') {
        let json = Json::parse(text).map_err(|e| format!("bad JSON body: {e}"))?;
        match &json {
            Json::Str(s) => Ok(s.clone()),
            Json::Obj(_) => json
                .get("gremlin")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| "JSON body must have a string 'gremlin' field".to_string()),
            _ => Err("JSON body must be an object or a string".to_string()),
        }
    } else if text.trim().is_empty() {
        Err("empty query body".to_string())
    } else {
        Ok(text.to_string())
    }
}

/// Classify a graph error into a response. Parse/config/runtime-usage
/// errors are the client's fault (400); deadline expiry is 503 so retry
/// policies treat it as load, not as a bad query; storage errors are 500.
fn graph_error_response(shared: &Shared, e: GraphError) -> (u16, Json) {
    let status = match &e {
        GraphError::Timeout => {
            shared.metrics.record_query_timeout();
            503
        }
        GraphError::Gremlin(_) | GraphError::Config(_) => {
            shared.metrics.record_bad_request();
            400
        }
        GraphError::Db(_) => 500,
    };
    let mut fields = vec![("error", Json::str(e.to_string()))];
    if status == 503 {
        fields.push(("timeout", Json::Bool(true)));
    }
    (status, Json::obj(fields))
}

fn route(shared: &Shared, req: &Request, request_id: &str) -> (u16, Payload) {
    // HEAD is answered as a headers-only GET: same status and
    // Content-Length as the GET would carry, no body bytes
    // (`handle_connection` suppresses them).
    let method = if req.method == "HEAD" { "GET" } else { req.method.as_str() };
    match (method, req.path.as_str()) {
        ("GET", "/wal") => route_wal(shared, req),
        ("GET", "/checkpoint") => route_checkpoint(shared),
        ("GET", "/metrics") if wants_prometheus(req) => (
            200,
            Payload::Bytes {
                content_type: "text/plain; version=0.0.4",
                data: render_prometheus(shared).into_bytes(),
            },
        ),
        _ => {
            let (status, json) = route_json(shared, req, method, request_id);
            (status, Payload::Json(json))
        }
    }
}

/// Content negotiation for `/metrics`: Prometheus scrapers send
/// `Accept: text/plain`; `?format=prometheus` forces it for curl.
fn wants_prometheus(req: &Request) -> bool {
    if req.query_param("format") == Some("prometheus") {
        return true;
    }
    req.header("accept").is_some_and(|a| a.contains("text/plain"))
}

/// The Prometheus rendering of `/metrics`, built from the *same* JSON
/// sections the JSON form serves (see [`promtext::render`]).
fn render_prometheus(shared: &Shared) -> String {
    let queued = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let graph_json = shared.graph.metrics().to_json();
    let server_json = shared.metrics.to_json(queued);
    let replication_json =
        shared.replica.as_ref().map(|rep| (rep.primary.as_str(), rep.metrics.to_json(&rep.primary)));
    promtext::render(
        &graph_json,
        &server_json,
        replication_json.as_ref().map(|(p, j)| (*p, j)),
        shared.graph.dialect().registry().as_ref(),
        &shared.metrics,
        shared.graph.database().as_ref(),
        shared.events.as_ref(),
        shared.started.elapsed().as_secs(),
    )
}

/// Primary side of log shipping: ship committed WAL frames from
/// `from_seq` as a binary batch (see [`replica::encode_ship`]). `410`
/// tells the follower its position has rotated out of the log — it must
/// re-bootstrap from `/checkpoint`; `403` means this server has no WAL
/// to ship (in-memory, or itself a replica).
fn route_wal(shared: &Shared, req: &Request) -> (u16, Payload) {
    let Some(from_seq) = req.query_param("from_seq").and_then(|s| s.parse::<u64>().ok()) else {
        let (status, json) =
            bad_request(shared, "GET /wal requires an integer from_seq query parameter".into());
        return (status, Payload::Json(json));
    };
    match shared.graph.database().wal_tail(from_seq, replica::MAX_SHIP_BYTES) {
        Ok(reldb::WalTailResult::Tail(tail)) => (
            200,
            Payload::Bytes {
                content_type: "application/octet-stream",
                data: replica::encode_ship(&tail),
            },
        ),
        Ok(reldb::WalTailResult::Gap { base_seq }) => (
            410,
            Payload::Json(Json::obj(vec![
                (
                    "error",
                    Json::str("requested wal position is gone; bootstrap from /checkpoint"),
                ),
                ("base_seq", Json::u64(base_seq)),
            ])),
        ),
        Err(e) => {
            let status = match e {
                reldb::DbError::Unsupported(_) => 403,
                _ => 500,
            };
            (status, Payload::Json(Json::obj(vec![("error", Json::str(e.to_string()))])))
        }
    }
}

/// Serve the installed checkpoint image verbatim for follower bootstrap,
/// writing one first if the primary has never checkpointed.
fn route_checkpoint(shared: &Shared) -> (u16, Payload) {
    let db = shared.graph.database();
    let fetch = || -> reldb::DbResult<Option<Vec<u8>>> {
        if let Some(bytes) = db.checkpoint_bytes()? {
            return Ok(Some(bytes));
        }
        // Fresh primary with no image on disk yet: take a checkpoint now
        // so a follower can always bootstrap.
        db.checkpoint()?;
        db.checkpoint_bytes()
    };
    match fetch() {
        Ok(Some(data)) => {
            (200, Payload::Bytes { content_type: "application/octet-stream", data })
        }
        Ok(None) => (
            500,
            Payload::Json(Json::obj(vec![(
                "error",
                Json::str("checkpoint produced no image"),
            )])),
        ),
        Err(e) => {
            let status = match e {
                reldb::DbError::Unsupported(_) => 403,
                _ => 500,
            };
            (status, Payload::Json(Json::obj(vec![("error", Json::str(e.to_string()))])))
        }
    }
}

/// Every JSON endpoint. `method` is the request method with HEAD already
/// normalized to GET; `request_id` is the correlation id the query
/// observability chain (trace root span, slow-query log) records.
fn route_json(shared: &Shared, req: &Request, method: &str, request_id: &str) -> (u16, Json) {
    let deadline = shared.config.query_timeout.map(|t| Instant::now() + t);
    match (method, req.path.as_str()) {
        ("POST", "/query") => match extract_gremlin(&req.body) {
            Ok(g) => in_session(shared, req, || {
                match shared.graph.run_for_request(&g, deadline, Some(request_id)) {
                    Ok(values) => {
                        let results: Vec<Json> = values.iter().map(gvalue_to_json).collect();
                        (
                            200,
                            Json::obj(vec![
                                ("count", Json::u64(results.len() as u64)),
                                ("result", Json::arr(results)),
                            ]),
                        )
                    }
                    Err(e) => graph_error_response(shared, e),
                }
            }),
            Err(m) => bad_request(shared, m),
        },
        ("POST", "/explain") => match extract_gremlin(&req.body) {
            Ok(g) => match shared.graph.explain_report(&g) {
                Ok(report) => (200, report.to_json()),
                Err(e) => graph_error_response(shared, e),
            },
            Err(m) => bad_request(shared, m),
        },
        ("POST", "/profile") => match extract_gremlin(&req.body) {
            Ok(g) => in_session(shared, req, || {
                match shared.graph.profile_for_request(&g, deadline, Some(request_id)) {
                    Ok((values, report)) => {
                        let results: Vec<Json> = values.iter().map(gvalue_to_json).collect();
                        (
                            200,
                            Json::obj(vec![
                                ("count", Json::u64(results.len() as u64)),
                                ("result", Json::arr(results)),
                                ("profile", report.to_json()),
                            ]),
                        )
                    }
                    Err(e) => graph_error_response(shared, e),
                }
            }),
            Err(m) => bad_request(shared, m),
        },
        ("POST", "/sql") => {
            // Raw SQL against the underlying database — the seeding and
            // administration channel (the graph endpoints stay read-only
            // Gremlin). Returns the last statement's result set. Because
            // it can mutate or drop anything, it must be opted into.
            if let Some(rep) = &shared.replica {
                // A follower's state is a function of the primary's log;
                // local writes would silently diverge it.
                return (
                    403,
                    Json::obj(vec![
                        (
                            "error",
                            Json::str(format!(
                                "read-only replica: writes must go to the primary at {}",
                                rep.primary
                            )),
                        ),
                        ("primary", Json::str(rep.primary.clone())),
                    ]),
                );
            }
            if !shared.config.sql_endpoint {
                return (
                    403,
                    Json::obj(vec![(
                        "error",
                        Json::str(
                            "SQL endpoint disabled; opt in with \
                             ServerConfig::sql_endpoint or DB2GRAPH_SQL_ENDPOINT=1",
                        ),
                    )]),
                );
            }
            let Ok(sql) = std::str::from_utf8(&req.body) else {
                return bad_request(shared, "SQL body is not valid UTF-8".into());
            };
            if sql.trim().is_empty() {
                return bad_request(shared, "empty SQL body".into());
            }
            in_session(shared, req, || match shared.graph.database().execute_script(sql) {
                Ok(rs) => {
                    let columns: Vec<Json> =
                        rs.columns.iter().map(|c| Json::str(c.clone())).collect();
                    let rows: Vec<Json> = rs
                        .rows
                        .iter()
                        .map(|row| Json::arr(row.iter().map(sql_value_to_json).collect()))
                        .collect();
                    (
                        200,
                        Json::obj(vec![
                            ("count", Json::u64(rows.len() as u64)),
                            ("columns", Json::arr(columns)),
                            ("rows", Json::arr(rows)),
                        ]),
                    )
                }
                Err(e) => bad_request(shared, e.to_string()),
            })
        }
        ("POST", "/session") => {
            if let Some(rep) = &shared.replica {
                // A session is a write transaction waiting to happen; a
                // follower cannot host one.
                return (
                    403,
                    Json::obj(vec![
                        (
                            "error",
                            Json::str(format!(
                                "read-only replica: open sessions on the primary at {}",
                                rep.primary
                            )),
                        ),
                        ("primary", Json::str(rep.primary.clone())),
                    ]),
                );
            }
            let sid = shared.sessions.begin(shared.graph.database());
            shared.metrics.record_session_began();
            shared.events.emit("session_began", vec![("session", Json::str(sid.clone()))]);
            (200, Json::obj(vec![("session", Json::str(sid))]))
        }
        ("POST", "/session/commit" | "/session/rollback") => {
            let commit = req.path.ends_with("/commit");
            let Some(sid) = req.header("x-db2graph-session") else {
                return bad_request(
                    shared,
                    "session endpoints require the X-Db2Graph-Session header".into(),
                );
            };
            match shared.sessions.end(sid, shared.graph.database(), commit) {
                Err(e) => session_error_response(e),
                Ok(Ok(())) => {
                    let (kind, field) = if commit {
                        shared.metrics.record_session_committed();
                        ("session_committed", "committed")
                    } else {
                        shared.metrics.record_session_rolled_back();
                        ("session_rolled_back", "rolled_back")
                    };
                    shared.events.emit(kind, vec![("session", Json::str(sid.to_string()))]);
                    (200, Json::obj(vec![(field, Json::Bool(true))]))
                }
                Ok(Err(e)) => {
                    // The transaction is over either way: a failed commit
                    // rolled its writes back.
                    shared.metrics.record_session_rolled_back();
                    shared
                        .events
                        .emit("session_rolled_back", vec![("session", Json::str(sid.to_string()))]);
                    (500, Json::obj(vec![("error", Json::str(e.to_string()))]))
                }
            }
        }
        ("GET", "/metrics") => {
            let queued = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
            let mut sections = vec![
                ("graph", shared.graph.metrics().to_json()),
                ("server", shared.metrics.to_json(queued)),
            ];
            if let Some(rep) = &shared.replica {
                sections.push(("replication", rep.metrics.to_json(&rep.primary)));
            }
            (200, Json::obj(sections))
        }
        ("GET", "/slow-queries") => {
            (200, Json::obj(vec![("slow_queries", shared.graph.slow_queries_json())]))
        }
        ("GET", "/workload") => (200, shared.graph.workload_report().to_json()),
        ("GET", "/events") => {
            let since = req.query_param("since").and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
            (200, shared.events.since_json(since))
        }
        ("GET", "/healthz") => (
            200,
            Json::obj(vec![
                ("status", Json::str("ok")),
                (
                    "role",
                    Json::str(if shared.replica.is_some() { "replica" } else { "primary" }),
                ),
                ("commit_epoch", Json::u64(shared.graph.database().commit_epoch())),
                ("in_flight", Json::u64(shared.metrics.in_flight())),
                ("uptime_seconds", Json::u64(shared.started.elapsed().as_secs())),
            ]),
        ),
        ("GET", "/readyz") => {
            // Liveness (`/healthz`) says "the process answers"; readiness
            // consults the SLO monitor's verdict so load balancers stop
            // sending traffic to a degraded node — and resume when the
            // rolling window recovers, no restart needed.
            let health = shared.health.lock().unwrap_or_else(|e| e.into_inner());
            let status = if health.degraded { 503 } else { 200 };
            (status, health.to_json())
        }
        (_, "/query" | "/sql" | "/explain" | "/profile" | "/metrics" | "/slow-queries"
        | "/workload" | "/healthz" | "/readyz" | "/events" | "/wal" | "/checkpoint"
        | "/session" | "/session/commit" | "/session/rollback") => (
            405,
            Json::obj(vec![("error", Json::str(format!("method {} not allowed", req.method)))]),
        ),
        (_, path) => {
            (404, Json::obj(vec![("error", Json::str(format!("no such endpoint '{path}'")))]))
        }
    }
}

fn bad_request(shared: &Shared, msg: String) -> (u16, Json) {
    shared.metrics.record_bad_request();
    (400, Json::obj(vec![("error", Json::str(msg))]))
}

/// Execute `f` inside the transaction named by the request's
/// `X-Db2Graph-Session` header — its reads see the session's uncommitted
/// writes, its writes join the session's undo log — or plainly when the
/// header is absent.
fn in_session(shared: &Shared, req: &Request, f: impl FnOnce() -> (u16, Json)) -> (u16, Json) {
    match req.header("x-db2graph-session") {
        None => f(),
        Some(sid) => match shared.sessions.with(sid, shared.graph.database(), f) {
            Ok(out) => out,
            Err(e) => session_error_response(e),
        },
    }
}

/// Map a session registry refusal to a response: an id that doesn't
/// resolve is 404 (ended, reaped, or never begun); a session already
/// executing a request is 409 — sessions serialize their own requests.
fn session_error_response(e: SessionError) -> (u16, Json) {
    match e {
        SessionError::Unknown => (
            404,
            Json::obj(vec![(
                "error",
                Json::str("no such session: never begun, already ended, or reaped as idle"),
            )]),
        ),
        SessionError::Busy => (
            409,
            Json::obj(vec![(
                "error",
                Json::str("session is busy serving another request"),
            )]),
        ),
    }
}

fn sql_value_to_json(v: &reldb::Value) -> Json {
    match v {
        reldb::Value::Null => Json::Null,
        // Numbers ride through f64 in the JSON layer; a BIGINT beyond
        // 2^53 would silently lose precision there, so it degrades to a
        // string instead — the same convention as element ids and Longs
        // in `gjson`.
        reldb::Value::Bigint(i) if i.unsigned_abs() <= (1u64 << 53) => Json::num(*i as f64),
        reldb::Value::Bigint(i) => Json::str(i.to_string()),
        reldb::Value::Double(d) => Json::num(*d),
        reldb::Value::Varchar(s) => Json::str(s.clone()),
        reldb::Value::Boolean(b) => Json::Bool(*b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_bigints_past_2_53_degrade_to_strings() {
        let exact = 1i64 << 53;
        assert_eq!(sql_value_to_json(&reldb::Value::Bigint(exact)).to_compact(), "9007199254740992");
        for i in [exact + 1, -(exact + 1), i64::MAX, i64::MIN] {
            let json = sql_value_to_json(&reldb::Value::Bigint(i));
            assert_eq!(json, Json::Str(i.to_string()), "{i} must not round through f64");
        }
    }
}
